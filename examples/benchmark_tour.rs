//! Mini-benchmark: run one Table 1 workload under all five detector
//! configurations and print the per-detector work — a single-benchmark
//! slice of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example benchmark_tour [crypt|moldyn|h2|...]
//! ```

use bigfoot_bench::measure;
use bigfoot_workloads::{benchmark, Scale, NAMES};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crypt".to_owned());
    let Some(b) = benchmark(&name, Scale::Full) else {
        eprintln!("unknown benchmark `{name}`; choose one of: {NAMES:?}");
        std::process::exit(1);
    };
    println!("benchmark: {}\n", b.name);
    let r = measure(b.name, &b.program, 3);
    println!(
        "static analysis: {} methods, {:.3} ms/method, {} checks inserted",
        r.static_stats.methods,
        r.static_stats.time_per_method().as_secs_f64() * 1e3,
        r.static_stats.checks_inserted,
    );
    println!(
        "base run: {:.2} ms, {} heap cells\n",
        r.base_time.as_secs_f64() * 1e3,
        r.heap_cells
    );
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>11} {:>10} {:>10}",
        "detector", "time(ms)", "overhead", "checks", "shadow ops", "footprint", "space"
    );
    for run in &r.runs {
        println!(
            "{:<10} {:>9.2} {:>8.2}x {:>11} {:>11} {:>10} {:>10}",
            run.name,
            run.time.as_secs_f64() * 1e3,
            run.overhead(r.base_time),
            run.stats.checks,
            run.stats.shadow_ops,
            run.stats.footprint_ops,
            run.stats.shadow_space_peak,
        );
    }
    let ft = r.run("FT");
    let bf = r.run("BF");
    println!(
        "\nBigFoot check ratio {:.3} (FastTrack 1.0); {:.0}x fewer shadow ops.",
        bf.stats.check_ratio(),
        ft.stats.shadow_ops as f64 / bf.stats.shadow_ops.max(1) as f64,
    );
}
