//! A tour of the adaptive array shadow compression (§4, after SlimState):
//! watch one array's shadow representation adapt to the access patterns a
//! program actually exhibits — and what each pattern costs.
//!
//! ```text
//! cargo run --example compression_tour
//! ```

use bigfoot_bfj::ConcreteRange;
use bigfoot_shadow::{ArrayShadow, ReprKind};
use bigfoot_vc::{AccessKind, Tid, VectorClock};

fn show(step: &str, shadow: &ArrayShadow, ops: u64) {
    println!(
        "{step:<46} repr={:<8?} locations={:<5} ops={ops}",
        shadow.repr_kind(),
        shadow.locations()
    );
}

fn main() {
    let n = 1024;
    let t0 = Tid(0);
    let mut clock = VectorClock::new();
    clock.tick(t0);

    println!("array of {n} elements\n");

    // 1. Whole-array traversals keep the coarse representation: one
    //    shadow location, one operation per coalesced check.
    let mut shadow = ArrayShadow::new(n);
    let mut total = 0;
    for _ in 0..5 {
        let out = shadow.apply(
            ConcreteRange::contiguous(0, n as i64),
            AccessKind::Write,
            t0,
            &clock,
        );
        total += out.shadow_ops;
    }
    show("5 whole-array writes", &shadow, total);

    // 2. A half-array check refines the representation into two blocks —
    //    the paper's movePts(a, 0, a.length/2) scenario.
    let out = shadow.apply(
        ConcreteRange::contiguous(0, n as i64 / 2),
        AccessKind::Read,
        t0,
        &clock,
    );
    show("then one half-array read", &shadow, out.shadow_ops);

    // 3. Strided access from a fresh array: residue-class compression.
    let mut shadow = ArrayShadow::new(n);
    let evens = ConcreteRange {
        lo: 0,
        hi: n as i64,
        step: 2,
    };
    let odds = ConcreteRange {
        lo: 1,
        hi: n as i64,
        step: 2,
    };
    let mut total = 0;
    total += shadow
        .apply(evens, AccessKind::Write, t0, &clock)
        .shadow_ops;
    total += shadow.apply(odds, AccessKind::Write, t0, &clock).shadow_ops;
    show("even + odd strided writes (fresh array)", &shadow, total);

    // 4. A triangular pattern (lufact's) defeats compression: every
    //    commit starts at a different offset, so the representation
    //    degrades to fine-grained and each check costs per-element ops.
    let mut shadow = ArrayShadow::new(n);
    let mut total = 0;
    for k in 0..8i64 {
        let out = shadow.apply(
            ConcreteRange::contiguous(k * 13, n as i64),
            AccessKind::Write,
            t0,
            &clock,
        );
        total += out.shadow_ops;
    }
    show("8 triangular-row writes", &shadow, total);

    // 5. The same traversal done with per-element checks (what FastTrack
    //    pays on every single pass).
    let mut shadow = ArrayShadow::new(n);
    let mut total = 0;
    for i in 0..n as i64 {
        total += shadow
            .apply(ConcreteRange::singleton(i), AccessKind::Write, t0, &clock)
            .shadow_ops;
    }
    show("per-element writes (FastTrack's view)", &shadow, total);
    assert_eq!(shadow.repr_kind(), ReprKind::Fine);

    println!("\ncoalesced whole-array checks cost O(1) shadow ops; once a pattern");
    println!("stops matching, the representation degrades gracefully to fine-grained.");
}
