//! Quickstart: instrument the paper's Figure 1 program and watch BigFoot
//! coalesce six per-access checks into one.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bigfoot_bfj::{parse_program, pretty, Interp, SchedPolicy};
use bigfoot_detectors::Detector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        class Point {
            field x; field y; field z;
            meth move(dx, dy, dz) {
                tmp = this.x;
                this.x = tmp + dx;
                tmp = this.y;
                this.y = tmp + dy;
                tmp = this.z;
                this.z = tmp + dz;
                return 0;
            }
            meth movePts(a, lo, hi) {
                for (i = lo; i < hi; i = i + 1) {
                    p = a[i];
                    r = p.move(1, 1, 1);
                }
                return 0;
            }
        }
        main {
            n = 64;
            a = new_array(n);
            for (i = 0; i < n; i = i + 1) { a[i] = new Point; }
            pt = a[0];
            r = pt.movePts(a, 0, n);
        }
    "#;

    let program = parse_program(source)?;
    println!("=== BigFoot static check placement (paper Fig. 1) ===\n");
    let inst = bigfoot::instrument(&program);
    println!("{}", pretty(&inst.program));
    println!(
        "static analysis: {} methods in {:.2} ms ({:.3} ms/method)\n",
        inst.stats.methods,
        inst.stats.total_time.as_secs_f64() * 1e3,
        inst.stats.time_per_method().as_secs_f64() * 1e3,
    );

    // Run the instrumented program under DynamicBF and the original under
    // FastTrack, and compare the work each detector did.
    let mut bf = Detector::bigfoot(inst.proxies.clone());
    Interp::new(&inst.program, SchedPolicy::default()).run(&mut bf)?;
    let bf = bf.finish();

    let mut ft = Detector::fasttrack();
    Interp::new(&program, SchedPolicy::default()).run(&mut ft)?;
    let ft = ft.finish();

    println!("=== dynamic race detection ===");
    println!("{:<22} {:>12} {:>12}", "", "FastTrack", "BigFoot");
    println!(
        "{:<22} {:>12} {:>12}",
        "heap accesses",
        ft.accesses(),
        bf.accesses()
    );
    println!("{:<22} {:>12} {:>12}", "checks", ft.checks, bf.checks);
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "check ratio",
        ft.check_ratio(),
        bf.check_ratio()
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "shadow operations", ft.shadow_ops, bf.shadow_ops
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "shadow space (units)", ft.shadow_space_end, bf.shadow_space_end
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "races",
        ft.races.len(),
        bf.races.len()
    );
    assert!(!ft.has_races() && !bf.has_races());
    println!("\nBoth detectors agree the program is race-free — BigFoot just did");
    println!(
        "{}x fewer shadow operations to prove it.",
        ft.shadow_ops / bf.shadow_ops.max(1)
    );
    Ok(())
}
