//! Find a data race: run a buggy work-queue program under several seeds
//! and watch FastTrack and BigFoot report the same race — BigFoot just
//! checks far less often.
//!
//! ```text
//! cargo run --example find_race
//! ```

use bigfoot_bfj::{parse_program, EventSink, Interp, RecordingSink, SchedPolicy};
use bigfoot_detectors::Detector;

/// A classic bug: the "done" flag is published without holding the lock
/// that protects the results buffer, so the consumer can read the buffer
/// while the producer is still filling it.
const SOURCE: &str = r#"
    class Queue {
        field done;
        meth produce(buf, lock) {
            acq(lock);
            for (i = 0; i < buf.length; i = i + 1) {
                buf[i] = i * i;
            }
            rel(lock);
            this.done = 1;
            return 0;
        }
        meth consume(buf, lock) {
            spin = 0;
            d = this.done;
            while (d == 0 && spin < 10000) {
                spin = spin + 1;
                d = this.done;
            }
            sum = 0;
            for (i = 0; i < buf.length; i = i + 1) {
                sum = sum + buf[i];
            }
            return sum;
        }
    }
    class Lk { }
    main {
        q = new Queue;
        lock = new Lk;
        buf = new_array(64);
        fork producer = q.produce(buf, lock);
        fork consumer = q.consume(buf, lock);
        join(producer);
        join(consumer);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    let inst = bigfoot::instrument(&program);
    println!("instrumented with {} checks\n", inst.stats.checks_inserted);

    let mut found = 0;
    for seed in 1..=10u64 {
        // One deterministic execution, observed by both detectors.
        let mut trace = RecordingSink::default();
        Interp::new(
            &inst.program,
            SchedPolicy::Random {
                seed,
                switch_inv: 2,
            },
        )
        .run(&mut trace)?;

        let mut ft = Detector::fasttrack();
        let mut bf = Detector::bigfoot(inst.proxies.clone());
        for ev in &trace.events {
            ft.event(ev);
            bf.event(ev);
        }
        let ft = ft.finish();
        let bf = bf.finish();
        assert_eq!(
            ft.has_races(),
            bf.has_races(),
            "detectors must agree on the same trace"
        );
        assert_eq!(ft.racy_locations(), bf.racy_locations());
        if bf.has_races() {
            found += 1;
            println!("seed {seed:>2}: RACE");
            for race in bf.races.iter().take(3) {
                println!("    {} — {}", race.target, race.info);
            }
            println!(
                "    FastTrack needed {} checks, BigFoot {} ({}x fewer)",
                ft.accesses(),
                bf.checks,
                ft.accesses() / bf.checks.max(1),
            );
        } else {
            println!("seed {seed:>2}: this schedule happened to be race-free");
        }
    }
    println!("\nthe unsynchronized done-flag race manifested in {found}/10 schedules;");
    println!("both detectors agreed on every one of them.");
    Ok(())
}
