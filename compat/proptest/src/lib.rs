//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this repository has no network access, so the
//! real proptest cannot be vendored. This crate reimplements the small API
//! surface the workspace's property tests use — strategies built from
//! ranges, tuples, `Just`, `prop_oneof!`, `prop_map`, `prop_recursive`,
//! `prop::collection::vec`, `prop::bool::ANY`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros — as a deterministic seeded
//! random-input test runner.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   each test's own assertion message, but is not minimized;
//! * **deterministic seeding** — every run generates the same cases, so
//!   test outcomes are stable across machines and invocations;
//! * the default case count is 64 (raise with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`).

/// The deterministic RNG driving every strategy (xorshift64*).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit non-zero seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)` (n must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as i64
    }
}

pub mod strategy {
    //! The strategy trait and combinators.

    use super::TestRng;
    use std::rc::Rc;

    /// A generator of values for property tests.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the test RNG.
    pub trait Strategy: 'static {
        /// The type of generated values.
        type Value: 'static;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| s.gen_value(rng)))
        }

        /// Maps generated values through `f`.
        fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| f(s.gen_value(rng))))
        }

        /// Builds a recursive strategy: `self` is the leaf, and `f` maps a
        /// strategy for depth-`d` values to one for depth-`d+1` values.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let rec = f(cur).boxed();
                cur = BoxedStrategy(Rc::new(move |rng| {
                    // Bias toward leaves so expression sizes stay bounded.
                    if rng.below(3) == 0 {
                        rec.gen_value(rng)
                    } else {
                        leaf.gen_value(rng)
                    }
                }));
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted strategies (the engine behind
    /// `prop_oneof!`).
    pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].gen_value(rng)
        }))
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as i64, self.end as i64) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn gen_value(&self, rng: &mut TestRng) -> u64 {
            if self.end <= self.start {
                return self.start;
            }
            self.start + rng.below(self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;
    use std::rc::Rc;

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy(Rc::new(move |rng| {
            let lo = size.start as i64;
            let hi = (size.end as i64).max(lo + 1);
            let n = rng.in_range(lo, hi) as usize;
            (0..n).map(|_| element.gen_value(rng)).collect()
        }))
    }
}

pub mod test_runner {
    //! The case runner used by the `proptest!` macro expansion.

    use super::TestRng;

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Result type every `proptest!` body is wrapped into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // fast while still exploring a useful input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property: generates inputs until `config.cases` accepted
    /// cases ran (or the rejection budget is exhausted) and panics on the
    /// first failing case.
    pub fn run_cases<F: FnMut(&mut TestRng) -> TestCaseResult>(
        test_name: &str,
        config: &ProptestConfig,
        mut case: F,
    ) {
        // Stable per-test seed: same inputs on every run.
        let mut seed = 0xB16_F007u64 ^ 0x9E37_79B9_7F4A_7C15;
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
        }
        let mut rng = TestRng::new(seed);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = config.cases as u64 * 64;
        while accepted < config.cases && attempts < max_attempts {
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {} of `{test_name}` failed: {msg}",
                        accepted + 1
                    )
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-importable surface (`use proptest::prelude::*`).

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Defines property tests over strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), rng);)+
                    // `mut` is needed when `$body` mutates its captures;
                    // some expansions don't, so silence unused_mut there.
                    #[allow(unused_mut)]
                    let mut body = || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5i64..7, y in 0usize..3) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0i32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn oneof_and_recursion_generate(t in tree(), b in prop::bool::ANY) {
            let _ = b;
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
                }
            }
            prop_assert!(depth(&t) <= 4);
        }

        #[test]
        fn assume_filters(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run_cases("determinism", &ProptestConfig::with_cases(10), |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
