//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real criterion
//! cannot be vendored. This crate reimplements the API surface the
//! workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — as a simple wall-clock
//! runner: each benchmark warms up, then collects `sample_size` samples
//! within the measurement budget and reports the median, mean, and
//! fastest per-iteration time.
//!
//! Passing `--bench` (as `cargo bench` does) runs everything; a single
//! positional argument filters benchmarks by substring, as with real
//! criterion.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One benchmark's collected measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Per-sample mean iteration times, in nanoseconds.
    pub ns_per_iter: Vec<f64>,
}

impl Sample {
    /// Median nanoseconds per iteration across samples.
    pub fn median_ns(&self) -> f64 {
        let mut v = self.ns_per_iter.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        if v.is_empty() {
            return 0.0;
        }
        v[v.len() / 2]
    }

    /// Mean nanoseconds per iteration across samples.
    pub fn mean_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64
    }
}

/// Runs timed iterations for one benchmark.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    out: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing per-iteration nanoseconds into the
    /// enclosing benchmark's sample set.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost so each sample
        // can batch enough iterations to be measurable.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters_done as f64;
        let budget_ns = self.measurement.as_nanos() as f64 / self.samples.max(1) as f64;
        let batch = ((budget_ns / per_iter.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.out.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// The benchmark runner and configuration builder.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    filter: Option<String>,
    /// Results of every benchmark run so far, in execution order.
    pub samples: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks; the `--bench`
        // flag cargo itself appends is ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Criterion {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            filter,
            samples: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_owned(), |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            warm_up: self.warm_up,
            parent: self,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut ns = Vec::with_capacity(self.sample_size);
        {
            let mut b = Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                samples: self.sample_size,
                out: &mut ns,
            };
            f(&mut b);
        }
        let sample = Sample {
            id,
            ns_per_iter: ns,
        };
        println!(
            "{:<44} time: [median {:>12} mean {:>12}] ({} samples)",
            sample.id,
            fmt_ns(sample.median_ns()),
            fmt_ns(sample.mean_ns()),
            sample.ns_per_iter.len()
        );
        self.samples.push(sample);
    }
}

/// Formats nanoseconds with an adaptive unit, criterion-style.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of benchmarks sharing configuration, named like
/// `group/function/parameter`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let (sample_size, measurement, warm_up) =
            (self.sample_size, self.measurement, self.warm_up);
        let saved = (
            self.parent.sample_size,
            self.parent.measurement,
            self.parent.warm_up,
        );
        self.parent.sample_size = sample_size;
        self.parent.measurement = measurement;
        self.parent.warm_up = warm_up;
        self.parent.run_one(full, |b| f(b, input));
        (
            self.parent.sample_size,
            self.parent.measurement,
            self.parent.warm_up,
        ) = saved;
        self
    }

    /// Runs one benchmark function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter display form.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.filter = None;
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.samples.len(), 1);
        assert_eq!(c.samples[0].ns_per_iter.len(), 4);
        assert!(c.samples[0].median_ns() > 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", "p"), &3u64, |b, n| b.iter(|| n * 2));
        g.finish();
        assert_eq!(c.samples[0].id, "g/f/p");
    }
}
