//! The flight recorder: lock-free, bounded, per-thread rings of
//! timestamped trace events with Chrome trace-event JSON export.
//!
//! Where the metric registry answers *how much* (counters, histograms),
//! the flight recorder answers *when*: each thread records span
//! begin/end pairs, instant markers, and sampled counter values into its
//! own fixed-size ring on a process-wide monotonic clock. Recording is a
//! handful of relaxed/release stores into thread-owned slots — no locks,
//! no allocation after the ring exists — so it is safe on the pipeline's
//! backpressure paths. When a ring fills, the oldest events are
//! overwritten (**drop-oldest**): a recorder that has been running for
//! minutes still holds the most recent window, and the number of
//! overwritten events is tracked exactly (surfaced as the
//! `trace.dropped` obs counter by [`publish_counters`]).
//!
//! Tracing is compiled in but **off by default**, gated by its own flag
//! independent of the metric registry's: every recording site first
//! performs one relaxed atomic load ([`enabled`]) and touches nothing
//! else while disabled. The `obs_overhead` bench holds the <5% bound
//! with tracing compiled in but disabled.
//!
//! Export ([`chrome_trace_json`] / [`write_chrome_trace`]) produces the
//! Chrome trace-event JSON format (`{"traceEvents": [...]}`) loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`: one named
//! track per thread plus counter tracks. Export validates each slot's
//! sequence number before and after reading it (seqlock discipline), so
//! a mid-run flush — e.g. the panic-unwind path of [`TraceOutGuard`] —
//! yields a consistent partial trace; begin/end balance is restored at
//! export time (truncated begins are closed, orphaned ends dropped).

use crate::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events (a power of two).
pub const DEFAULT_RING_EVENTS: usize = 1 << 16;

/// Sentinel sequence value marking a slot mid-write.
const WRITING: u64 = u64::MAX;

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;
const KIND_INSTANT: u64 = 2;
const KIND_COUNTER: u64 = 3;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_EVENTS);

/// Turns trace recording on or off globally. Independent of the metric
/// registry's flag: `bfc check --trace-out` records a timeline without
/// paying for counter collection.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the clock epoch before the first event so timestamps start
        // near zero even if recording is toggled repeatedly.
        let _ = clock_anchor();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// True if trace recording is on. One relaxed load — the whole
/// disabled-path cost of every recording site.
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Sets the per-thread ring capacity (events; rounded up to a power of
/// two, minimum 16). Affects rings created *after* the call — set it
/// before the traced workload spawns its threads.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.next_power_of_two().max(16), Ordering::Relaxed);
}

fn clock_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds on the process-wide monotonic trace clock.
#[inline]
fn now_ns() -> u64 {
    clock_anchor().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------

fn name_table() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns a static name, returning its dense id. Slots store the id, so
/// recording never touches the string or the table lock after the first
/// event from a call site.
pub fn intern(name: &'static str) -> u32 {
    let mut table = name_table().lock().unwrap();
    if let Some(i) = table.iter().position(|n| *n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// A per-call-site trace-name handle, resolved to an interned id on
/// first use (the `trace_span!`/`trace_instant!`/`trace_counter!` macros
/// and the traced `span!` expansion each hold one in a `static`).
pub struct LazyTraceName {
    name: &'static str,
    id: OnceLock<u32>,
}

impl LazyTraceName {
    /// A handle for the named trace event.
    pub const fn new(name: &'static str) -> LazyTraceName {
        LazyTraceName {
            name,
            id: OnceLock::new(),
        }
    }

    /// The interned id (resolved once).
    #[inline]
    pub fn id(&self) -> u32 {
        *self.id.get_or_init(|| intern(self.name))
    }
}

// ---------------------------------------------------------------------
// Per-thread rings
// ---------------------------------------------------------------------

/// One ring slot. All fields are atomics so a concurrent exporter never
/// performs a non-atomic racy read; `seq` is the seqlock word: the owner
/// stores [`WRITING`], fills the payload, then stores `index + 1` with
/// `Release`. A reader accepts the slot only if `seq == index + 1` both
/// before and after reading the payload.
struct Slot {
    seq: AtomicU64,
    /// `kind << 32 | name_id`.
    meta: AtomicU64,
    ts: AtomicU64,
    value: AtomicU64,
}

struct ThreadRing {
    tid: u64,
    name: Mutex<String>,
    slots: Box<[Slot]>,
    mask: u64,
    /// Events ever written by the owner; `head & mask` is the next slot.
    head: AtomicU64,
}

impl ThreadRing {
    fn new(tid: u64, name: String, capacity: usize) -> ThreadRing {
        ThreadRing {
            tid,
            name: Mutex::new(name),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Owner-thread only: records one event, overwriting the oldest slot
    /// when the ring is full.
    fn push(&self, kind: u64, name_id: u32, value: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        slot.seq.store(WRITING, Ordering::Release);
        slot.meta
            .store(kind << 32 | u64::from(name_id), Ordering::Relaxed);
        slot.ts.store(now_ns(), Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(head + 1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    fn events_written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events overwritten before they could be exported.
    fn dropped(&self) -> u64 {
        self.events_written()
            .saturating_sub(self.slots.len() as u64)
    }

    /// Reads the retained window in record order, skipping any slot the
    /// owner is concurrently rewriting (seqlock validation).
    fn read_events(&self) -> Vec<RawEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let ts = slot.ts.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != i + 1 {
                continue;
            }
            out.push(RawEvent {
                kind: meta >> 32,
                name_id: (meta & u64::from(u32::MAX)) as u32,
                ts,
                value,
            });
        }
        out
    }
}

struct RawEvent {
    kind: u64,
    name_id: u32,
    ts: u64,
    value: u64,
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<ThreadRing>> =
        const { std::cell::OnceCell::new() };
}

fn with_ring<R>(f: impl FnOnce(&ThreadRing) -> R) -> R {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let ring = Arc::new(ThreadRing::new(tid, name, CAPACITY.load(Ordering::Relaxed)));
            rings().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

// ---------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------
//
// The four primitives are deliberately *not* gated on `enabled()`:
// callers gate (one relaxed load) and remember the decision, so a span
// whose begin was recorded always gets its end even if tracing is
// switched off mid-span — pairing survives toggles. The macros and
// guards below do the gating.

/// Records a span-begin on the calling thread's ring.
#[inline]
pub fn begin(name: &LazyTraceName) {
    let id = name.id();
    with_ring(|r| r.push(KIND_BEGIN, id, 0));
}

/// Records a span-end on the calling thread's ring.
#[inline]
pub fn end(name: &LazyTraceName) {
    let id = name.id();
    with_ring(|r| r.push(KIND_END, id, 0));
}

/// Records an instant marker on the calling thread's ring.
#[inline]
pub fn instant(name: &LazyTraceName) {
    let id = name.id();
    with_ring(|r| r.push(KIND_INSTANT, id, 0));
}

/// Records one sample of a counter track on the calling thread's ring.
#[inline]
pub fn counter(name: &LazyTraceName, value: u64) {
    let id = name.id();
    with_ring(|r| r.push(KIND_COUNTER, id, value));
}

/// Names the calling thread's track in the exported trace (defaults to
/// the OS thread name, or `thread-N`). Safe to call whether or not
/// tracing is enabled.
pub fn set_thread_name(name: &str) {
    with_ring(|r| *r.name.lock().unwrap() = name.to_owned());
}

/// RAII guard pairing a trace begin with its end (the `trace_span!`
/// macro expands to one of these). Records nothing while tracing is
/// disabled at entry.
pub struct TraceSpanGuard {
    name: Option<&'static LazyTraceName>,
}

impl TraceSpanGuard {
    /// Opens a trace span if tracing is enabled.
    #[inline]
    pub fn enter(name: &'static LazyTraceName) -> TraceSpanGuard {
        let name = enabled().then(|| {
            begin(name);
            name
        });
        TraceSpanGuard { name }
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            end(name);
        }
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Aggregate recorder state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Threads that have recorded at least one event (or were named).
    pub threads: usize,
    /// Events ever recorded, including overwritten ones.
    pub events: u64,
    /// Events lost to drop-oldest overwrite.
    pub dropped: u64,
}

/// Aggregate event/drop totals across every thread ring.
pub fn stats() -> TraceStats {
    let rings = rings().lock().unwrap();
    let mut s = TraceStats {
        threads: rings.len(),
        ..TraceStats::default()
    };
    for ring in rings.iter() {
        s.events += ring.events_written();
        s.dropped += ring.dropped();
    }
    s
}

/// Per-thread `(track name, events recorded, events dropped)` — exact
/// accounting for tests and diagnostics.
pub fn thread_stats() -> Vec<(String, u64, u64)> {
    rings()
        .lock()
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.name.lock().unwrap().clone(),
                r.events_written(),
                r.dropped(),
            )
        })
        .collect()
}

/// Publishes recorder totals into the metric registry as `trace.events`
/// / `trace.dropped` counters (delta since the previous publish, so
/// repeated calls do not double-count). No-op while metric collection is
/// disabled.
pub fn publish_counters() {
    if !crate::enabled() {
        return;
    }
    static LAST: Mutex<(u64, u64)> = Mutex::new((0, 0));
    let s = stats();
    let mut last = LAST.lock().unwrap();
    crate::count_named("trace.events", s.events.saturating_sub(last.0));
    crate::count_named("trace.dropped", s.dropped.saturating_sub(last.1));
    *last = (s.events, s.dropped);
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Serializes every thread ring as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`, timestamps in microseconds), loadable in
/// Perfetto or `chrome://tracing`.
///
/// Each thread contributes a `thread_name` metadata record and its
/// retained event window. Begin/end balance is restored per track:
/// an `E` whose `B` was overwritten by drop-oldest is discarded, and a
/// `B` still open at export time (mid-run flush) is closed at the
/// track's last timestamp — every emitted `B` has a matching `E`.
pub fn chrome_trace_json() -> Json {
    let rings: Vec<Arc<ThreadRing>> = {
        let mut v = rings().lock().unwrap().clone();
        v.sort_by_key(|r| r.tid);
        v
    };
    let names: Vec<String> = name_table()
        .lock()
        .unwrap()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let name_of = |id: u32| -> &str {
        names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    };
    let mut events = Json::array();
    for ring in &rings {
        let mut meta = Json::object();
        meta.set("ph", "M");
        meta.set("name", "thread_name");
        meta.set("pid", 1u64);
        meta.set("tid", ring.tid);
        let mut args = Json::object();
        args.set("name", ring.name.lock().unwrap().as_str());
        meta.set("args", args);
        events.push(meta);

        let raw = ring.read_events();
        let mut open: Vec<u32> = Vec::new();
        let mut last_us = 0.0f64;
        for ev in &raw {
            let ts_us = ev.ts as f64 / 1000.0;
            last_us = last_us.max(ts_us);
            let mut rec = Json::object();
            match ev.kind {
                KIND_BEGIN => {
                    open.push(ev.name_id);
                    rec.set("ph", "B");
                }
                KIND_END => {
                    // The matching B fell off the ring: emitting this E
                    // would unbalance the track.
                    if open.pop().is_none() {
                        continue;
                    }
                    rec.set("ph", "E");
                }
                KIND_INSTANT => {
                    rec.set("ph", "i");
                    rec.set("s", "t");
                }
                _ => {
                    rec.set("ph", "C");
                }
            }
            rec.set("name", name_of(ev.name_id));
            rec.set("pid", 1u64);
            rec.set("tid", ring.tid);
            rec.set("ts", ts_us);
            if ev.kind == KIND_COUNTER {
                let mut args = Json::object();
                args.set("value", ev.value);
                rec.set("args", args);
            }
            events.push(rec);
        }
        // Close spans still open at export time (mid-run/panic flush).
        while let Some(name_id) = open.pop() {
            let mut rec = Json::object();
            rec.set("ph", "E");
            rec.set("name", name_of(name_id));
            rec.set("pid", 1u64);
            rec.set("tid", ring.tid);
            rec.set("ts", last_us);
            events.push(rec);
        }
    }
    let mut out = Json::object();
    out.set("traceEvents", events);
    out.set("displayTimeUnit", "ms");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json().to_string_compact())
}

/// RAII handle behind `--trace-out`: enables tracing on creation and
/// writes the Chrome trace on [`finish`](TraceOutGuard::finish) — or on
/// drop, which covers early returns and **panic unwinds**, so a crashed
/// run still leaves a usable partial trace on disk.
pub struct TraceOutGuard {
    path: PathBuf,
    armed: bool,
}

impl TraceOutGuard {
    /// Enables tracing and arms a write of `path` on drop.
    pub fn new(path: impl Into<PathBuf>) -> TraceOutGuard {
        set_enabled(true);
        TraceOutGuard {
            path: path.into(),
            armed: true,
        }
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables tracing, publishes `trace.*` counters, and writes the
    /// trace file, surfacing any I/O error (the drop path can only log).
    pub fn finish(mut self) -> std::io::Result<()> {
        self.armed = false;
        set_enabled(false);
        publish_counters();
        write_chrome_trace(&self.path)
    }
}

impl Drop for TraceOutGuard {
    fn drop(&mut self) {
        if self.armed {
            set_enabled(false);
            publish_counters();
            if let Err(e) = write_chrome_trace(&self.path) {
                eprintln!(
                    "bigfoot-obs: failed to write trace to {}: {e}",
                    self.path.display()
                );
            }
        }
    }
}
