//! Prometheus text-exposition rendering of the metric registry —
//! groundwork for the `bfc serve` daemon's `/metrics` endpoint, and
//! written to a file today by `repro perf --metrics-out`.
//!
//! Counters render as `counter` metrics with the conventional `_total`
//! suffix, gauges as `gauge`, and timers as `summary` metrics carrying
//! the p50/p90/p99 quantiles interpolated from the log2 histograms plus
//! `_sum`/`_count`. Metric names are prefixed `bigfoot_` and sanitized
//! to `[a-zA-Z0-9_]` (dots become underscores), so `pipeline.depth_max`
//! exports as `bigfoot_pipeline_depth_max`. Sanitization collisions
//! (`a.b` and `a_b` both land on `bigfoot_a_b`) are disambiguated with
//! a numeric suffix so no family is ever declared twice.

use crate::registry::Snapshot;
use std::collections::HashSet;
use std::fmt::Write;

/// Sanitizes a registry metric name into a Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("bigfoot_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
    }
    out
}

/// Claims a unique family name for one metric. Sanitization is lossy —
/// `a.b` and `a_b` both map to `bigfoot_a_b` — and the 0.0.4 text
/// format forbids two `# TYPE` headers for one family, so a second
/// registry name landing on a taken family gets a `_2`/`_3`/… suffix
/// (before the counter `_total`, which must stay terminal). Snapshots
/// are sorted by name within each kind, so suffix assignment is
/// deterministic across renders.
fn family_name(taken: &mut HashSet<String>, name: &str, counter: bool) -> String {
    let base = metric_name(name);
    let full = |b: &str| {
        if counter {
            format!("{b}_total")
        } else {
            b.to_owned()
        }
    };
    let mut candidate = base.clone();
    let mut n = 2;
    while !taken.insert(full(&candidate)) {
        candidate = format!("{base}_{n}");
        n += 1;
    }
    full(&candidate)
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers followed by sample
/// lines, one family per registry metric, sorted by name within each
/// kind.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut taken = HashSet::new();
    for c in &snap.counters {
        let name = family_name(&mut taken, &c.name, true);
        let _ = writeln!(out, "# HELP {name} BigFoot counter `{}`.", c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = family_name(&mut taken, &g.name, false);
        let _ = writeln!(out, "# HELP {name} BigFoot gauge `{}`.", g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for t in &snap.timers {
        let name = family_name(&mut taken, &t.name, false);
        let _ = writeln!(
            out,
            "# HELP {name} BigFoot timer `{}` (ns for spans).",
            t.name
        );
        let _ = writeln!(out, "# TYPE {name} summary");
        for (label, q) in [("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)] {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", t.percentile(q));
        }
        let _ = writeln!(out, "{name}_sum {}", t.total);
        let _ = writeln!(out, "{name}_count {}", t.count);
    }
    out
}

/// Renders the current global snapshot ([`crate::snapshot`]) as
/// Prometheus text exposition.
pub fn prometheus_text() -> String {
    render(&crate::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnap, GaugeSnap, TimerSnap};

    // Built from hand-rolled snapshots so this test never touches the
    // global registry (other tests reset it concurrently).
    #[test]
    fn renders_counters_gauges_and_summaries() {
        let snap = Snapshot {
            counters: vec![CounterSnap {
                name: "interp.steps".into(),
                value: 42,
            }],
            gauges: vec![GaugeSnap {
                name: "pipeline.depth_max".into(),
                value: 7,
            }],
            timers: vec![TimerSnap {
                name: "entail.query".into(),
                count: 4,
                total: 40,
                buckets: vec![(3, 4)],
            }],
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE bigfoot_interp_steps_total counter\n"));
        assert!(text.contains("bigfoot_interp_steps_total 42\n"));
        assert!(text.contains("# TYPE bigfoot_pipeline_depth_max gauge\n"));
        assert!(text.contains("bigfoot_pipeline_depth_max 7\n"));
        assert!(text.contains("# TYPE bigfoot_entail_query summary\n"));
        assert!(text.contains("bigfoot_entail_query{quantile=\"0.5\"}"));
        assert!(text.contains("bigfoot_entail_query{quantile=\"0.99\"}"));
        assert!(text.contains("bigfoot_entail_query_sum 40\n"));
        assert!(text.contains("bigfoot_entail_query_count 4\n"));

        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name: {bare}"
            );
        }
    }

    // Regression (PR 7): sanitization is lossy, so `a.b` and `a_b` both
    // rendered as `bigfoot_a_b` — two `# TYPE` headers for one family,
    // which the 0.0.4 text format forbids and real scrapers reject.
    #[test]
    fn colliding_names_get_distinct_families() {
        let snap = Snapshot {
            counters: vec![
                CounterSnap {
                    name: "pipeline.stall.ring_full".into(),
                    value: 1,
                },
                CounterSnap {
                    name: "pipeline.stall_ring.full".into(),
                    value: 2,
                },
            ],
            gauges: vec![GaugeSnap {
                name: "pipeline.stall.ring_full".into(),
                value: 3,
            }],
            timers: vec![],
        };
        let text = render(&snap);
        // First claimant keeps the clean name; later collisions are
        // suffixed (`_total` stays terminal on counters).
        assert!(text.contains("bigfoot_pipeline_stall_ring_full_total 1\n"));
        assert!(text.contains("bigfoot_pipeline_stall_ring_full_2_total 2\n"));
        // The gauge's `_total`-less family is its own namespace.
        assert!(text.contains("# TYPE bigfoot_pipeline_stall_ring_full gauge\n"));
        assert!(text.contains("bigfoot_pipeline_stall_ring_full 3\n"));

        // No family may be declared twice.
        let mut families = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split(' ').next().unwrap().to_owned();
                assert!(families.insert(family), "duplicate # TYPE: {line}");
            }
        }
    }
}
