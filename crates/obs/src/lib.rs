//! Dependency-free observability substrate for the BigFoot reproduction.
//!
//! Every layer of the pipeline — the StaticBF analysis, the entailment
//! engine, the shadow substrate, the detectors, and the BFJ interpreter —
//! reports into one global, thread-safe registry of named metrics:
//!
//! * [`count!`] — monotonic counters (atomics);
//! * [`span!`] — RAII wall-clock spans recording durations into a
//!   count/total/log2-histogram timer;
//! * [`snapshot`] / [`reset`] — consistent read and zeroing of every
//!   metric, feeding the machine-readable reports of `bfc --json`,
//!   `repro --json`, and `bfc profile`.
//!
//! Instrumentation is **near-zero-cost when disabled**: every macro first
//! checks a global flag with one relaxed atomic load and touches nothing
//! else. The flag starts *off*; binaries and harnesses that want metrics
//! call [`set_enabled`]`(true)`. The `obs_overhead` criterion bench in
//! `bigfoot-bench` holds the <5% detector-throughput overhead bound.
//!
//! The crate deliberately has no dependencies (the build environment is
//! offline), so it also hosts a few small pieces of shared plumbing its
//! consumers would otherwise duplicate: a minimal JSON tree with
//! serializer and parser ([`json`]), the CLI argument parser shared by
//! `bfc` and `repro` ([`cli`]), a fast non-cryptographic hasher for
//! integer-keyed hot-path maps ([`fx`]), and a seed-free versioned hasher
//! for fingerprints that persist across processes ([`stable`]).
//!
//! # Examples
//!
//! ```
//! bigfoot_obs::set_enabled(true);
//! bigfoot_obs::reset();
//! {
//!     let _g = bigfoot_obs::span!("demo.phase");
//!     bigfoot_obs::count!("demo.items", 3);
//! }
//! let snap = bigfoot_obs::snapshot();
//! assert_eq!(snap.counter("demo.items"), 3);
//! assert_eq!(snap.timer("demo.phase").unwrap().count, 1);
//! bigfoot_obs::set_enabled(false);
//! ```

pub mod cli;
pub mod fx;
pub mod json;
pub mod prometheus;
mod registry;
pub mod stable;
pub mod trace;

pub use prometheus::prometheus_text;
pub use registry::{
    count_named, gauge_max_named, reset, snapshot, CounterSnap, GaugeSnap, LazyCounter, LazyTimer,
    Snapshot, SpanGuard, TimerSnap,
};
pub use trace::TraceOutGuard;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True if metric collection is on. One relaxed load — this is the whole
/// disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables collection for the duration of a scope (used by binaries and
/// tests; restores the previous state on drop).
pub struct EnabledGuard {
    prev: bool,
}

impl EnabledGuard {
    /// Enables collection, remembering the previous state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> EnabledGuard {
        let prev = enabled();
        set_enabled(true);
        EnabledGuard { prev }
    }
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        set_enabled(self.prev);
    }
}

/// Bumps a named counter (by 1, or by an explicit amount).
///
/// The counter cell is resolved once per call site and cached in a
/// static, so the enabled path is one relaxed load, one pointer read, and
/// one relaxed `fetch_add`.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static CELL: $crate::LazyCounter = $crate::LazyCounter::new($name);
            CELL.add($n as u64);
        }
    };
}

/// Records one observation into a named timer's histogram without timing
/// anything (useful for size distributions, e.g. commit extents).
#[macro_export]
macro_rules! observe {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            static CELL: $crate::LazyTimer = $crate::LazyTimer::new($name);
            CELL.record($value as u64);
        }
    };
}

/// Opens a wall-clock span, closed when the returned guard drops.
///
/// When flight-recorder tracing is on ([`trace::set_enabled`]) the same
/// guard also brackets a begin/end pair on the calling thread's
/// timeline, so every `span!` site doubles as a trace span for free.
///
/// ```
/// # bigfoot_obs::set_enabled(true);
/// let _guard = bigfoot_obs::span!("phase.name");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static CELL: $crate::LazyTimer = $crate::LazyTimer::new($name);
        static TNAME: $crate::trace::LazyTraceName = $crate::trace::LazyTraceName::new($name);
        $crate::SpanGuard::enter_traced(&CELL, &TNAME)
    }};
}

/// Opens a flight-recorder-only span (no metric timer), closed when the
/// returned guard drops. Records nothing while tracing is disabled.
#[macro_export]
macro_rules! trace_span {
    ($name:literal) => {{
        static TNAME: $crate::trace::LazyTraceName = $crate::trace::LazyTraceName::new($name);
        $crate::trace::TraceSpanGuard::enter(&TNAME)
    }};
}

/// Records an instant marker on the calling thread's timeline (a single
/// tick in the exported trace). No-op while tracing is disabled.
#[macro_export]
macro_rules! trace_instant {
    ($name:literal) => {
        if $crate::trace::enabled() {
            static TNAME: $crate::trace::LazyTraceName = $crate::trace::LazyTraceName::new($name);
            $crate::trace::instant(&TNAME);
        }
    };
}

/// Records one sample of a counter track on the calling thread's
/// timeline (rendered as a stepped graph in Perfetto). No-op while
/// tracing is disabled.
#[macro_export]
macro_rules! trace_counter {
    ($name:literal, $value:expr) => {
        if $crate::trace::enabled() {
            static TNAME: $crate::trace::LazyTraceName = $crate::trace::LazyTraceName::new($name);
            $crate::trace::counter(&TNAME, $value as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric state is global; keep every assertion in one test so
    // parallel test threads cannot interleave resets.
    #[test]
    fn counters_spans_and_reset_roundtrip() {
        let _g = EnabledGuard::new();
        reset();

        count!("test.hits");
        count!("test.hits", 4);
        observe!("test.sizes", 9);
        // A max-gauge flushed twice reports the max, not the sum — the
        // `pipeline.depth_max` regression that motivated the primitive.
        gauge_max_named("test.depth_max", 7);
        gauge_max_named("test.depth_max", 7);
        gauge_max_named("test.depth_max", 3);
        {
            let _s = span!("test.span");
            std::hint::black_box(0);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.hits"), 5);
        assert_eq!(snap.counter("test.unknown"), 0);
        assert_eq!(
            snap.gauge("test.depth_max"),
            7,
            "gauge_max must keep the max across repeated flushes"
        );
        assert_eq!(snap.gauge("test.unknown"), 0);
        let t = snap.timer("test.span").expect("span recorded");
        assert_eq!(t.count, 1);
        let sizes = snap.timer("test.sizes").expect("observation recorded");
        assert_eq!(sizes.count, 1);
        assert_eq!(sizes.total, 9);
        // log2(9) bucket is 3.
        assert_eq!(sizes.buckets, vec![(3, 1)]);

        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("test.hits"), 0);
        assert_eq!(snap.gauge("test.depth_max"), 0);
        assert!(snap.timer("test.span").map(|t| t.count).unwrap_or(0) == 0);

        set_enabled(false);
        count!("test.hits", 100);
        {
            let _s = span!("test.span");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(
            snap.counter("test.hits"),
            0,
            "disabled sites must not record"
        );
        assert_eq!(snap.timer("test.span").map(|t| t.count).unwrap_or(0), 0);
    }
}
