//! The small argument parser shared by the `bfc` and `repro` binaries.
//!
//! Replaces the binaries' previous hand-rolled scanning (which, e.g.,
//! treated `repro --scale table1 small` as small scale because `small`
//! appeared *somewhere* on the command line). Rules:
//!
//! * declared value flags consume exactly the next token (or use
//!   `--flag=value`);
//! * declared switch flags take no value;
//! * anything else starting with `--` is an error;
//! * remaining tokens are positionals, in order.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// Non-flag tokens, in order.
    pub positionals: Vec<String>,
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

impl CliArgs {
    /// Parses `args` (without the program name) against the declared
    /// flags. `value_flags` consume the following token; `switch_flags`
    /// do not.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let (name, inline) = match flag.split_once('=') {
                    Some((n, v)) => (format!("--{n}"), Some(v.to_owned())),
                    None => (arg.clone(), None),
                };
                if value_flags.contains(&name.as_str()) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| format!("{name} requires a value"))?,
                    };
                    if out.values.insert(name.clone(), value).is_some() {
                        return Err(format!("{name} given twice"));
                    }
                } else if switch_flags.contains(&name.as_str()) {
                    if inline.is_some() {
                        return Err(format!("{name} takes no value"));
                    }
                    out.switches.insert(name);
                } else {
                    return Err(format!("unknown flag `{arg}`"));
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// The `i`th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// A value flag's argument.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A value flag parsed into `T`, with a clear error on bad input.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid {name} `{raw}`")),
        }
    }

    /// True if a switch flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Errors unless a value flag's argument is one of `allowed`
    /// (returning the default `allowed[0]` when absent).
    pub fn one_of<'a>(&'a self, name: &str, allowed: &[&'a str]) -> Result<&'a str, String> {
        match self.value(name) {
            None => Ok(allowed[0]),
            Some(v) => allowed
                .iter()
                .find(|a| **a == v)
                .copied()
                .ok_or_else(|| format!("{name} must be one of {}", allowed.join("|"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_values_switches_and_positionals() {
        let a = CliArgs::parse(
            strings(&["table1", "--scale", "small", "--json", "--reps=5"]),
            &["--scale", "--reps"],
            &["--json"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("table1"));
        assert_eq!(a.value("--scale"), Some("small"));
        assert_eq!(a.parsed::<usize>("--reps").unwrap(), Some(5));
        assert!(a.has("--json"));
        assert!(!a.has("--quiet"));
    }

    #[test]
    fn positional_small_does_not_leak_into_scale() {
        // The regression this parser fixes: `small` as a stray token must
        // not read as `--scale small`.
        let a = CliArgs::parse(strings(&["table1", "small"]), &["--scale"], &[]).unwrap();
        assert_eq!(a.value("--scale"), None);
        assert_eq!(a.positional(1), Some("small"));
        let b =
            CliArgs::parse(strings(&["--scale", "small", "table1"]), &["--scale"], &[]).unwrap();
        assert_eq!(b.value("--scale"), Some("small"));
        assert_eq!(b.positional(0), Some("table1"));
    }

    #[test]
    fn rejects_unknown_and_malformed_flags() {
        assert!(CliArgs::parse(strings(&["--wat"]), &[], &[]).is_err());
        assert!(CliArgs::parse(strings(&["--scale"]), &["--scale"], &[]).is_err());
        assert!(CliArgs::parse(strings(&["--json=1"]), &[], &["--json"]).is_err());
        assert!(
            CliArgs::parse(strings(&["--reps", "1", "--reps", "2"]), &["--reps"], &[]).is_err()
        );
    }

    #[test]
    fn one_of_validates_and_defaults() {
        let a = CliArgs::parse(strings(&["--scale", "small"]), &["--scale"], &[]).unwrap();
        assert_eq!(a.one_of("--scale", &["full", "small"]).unwrap(), "small");
        let b = CliArgs::parse(strings(&[]), &["--scale"], &[]).unwrap();
        assert_eq!(b.one_of("--scale", &["full", "small"]).unwrap(), "full");
        let c = CliArgs::parse(strings(&["--scale", "wat"]), &["--scale"], &[]).unwrap();
        assert!(c.one_of("--scale", &["full", "small"]).is_err());
    }
}
