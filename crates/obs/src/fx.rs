//! A fast, non-cryptographic hasher for integer-keyed maps on hot paths.
//!
//! The detector event loop and the entailment engine key maps by dense
//! integer ids (`ObjId`, `Tid`, `Sym`, …). The standard library's SipHash
//! is DoS-resistant but costs tens of nanoseconds per lookup, which
//! dominates those paths. This module provides the well-known
//! multiply-rotate "Fx" construction (one rotate, one xor, one multiply
//! per word), adequate for trusted in-process keys.
//!
//! The build environment is offline, so this lives here rather than as a
//! `rustc-hash` dependency; `bigfoot-obs` is the dependency-free crate
//! every other crate already links.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; not DoS-resistant, for trusted keys only.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_and_determinism() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for k in 0..1000u32 {
            m.insert(k, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"v"));
        assert_eq!(m.get(&1000), None);

        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));

        // Byte writes agree with the chunked path for whole words.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
