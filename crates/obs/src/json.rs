//! A minimal JSON tree with serializer and parser.
//!
//! The machine-readable reports (`repro --json`, `bfc check --json`) need
//! stable key order and no external dependencies, so objects are ordered
//! vectors of pairs rather than maps. The parser exists for the golden
//! tests that re-read emitted reports and assert schema invariants.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; counters in this codebase fit easily).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Sets a key on an object (replacing an existing entry). Panics if
    /// `self` is not an object — report-building code owns its shapes.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object");
        };
        let value = value.into();
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_owned(), value)),
        }
        self
    }

    /// Appends to an array. Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) -> &mut Json {
        let Json::Arr(items) = self else {
            panic!("Json::push on non-array");
        };
        items.push(value.into());
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array items (empty slice for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Object entries (empty slice for non-objects).
    pub fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(entries) => entries,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 (floor), if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization (the report format).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array_value(),
            Some(b'{') => self.object_value(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array_value(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's serializer; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid utf8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let mut obj = Json::object();
        obj.set("name", "crypt \"small\"");
        obj.set("checks", 42u64);
        obj.set("ratio", 0.25);
        obj.set("races", Json::array());
        obj.set("ok", true);
        let mut nested = Json::object();
        nested.set("newline", "a\nb");
        obj.set("nested", nested);
        for text in [obj.to_string_compact(), obj.to_string_pretty()] {
            let back = parse(&text).expect("parse");
            assert_eq!(back, obj, "through {text}");
        }
    }

    #[test]
    fn parses_hand_written_json() {
        let v = parse(r#" { "a": [1, -2.5, 1e3], "b": null, "c": "xA" } "#).unwrap();
        assert_eq!(v.get("a").unwrap().items()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "42 43", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_serialize_without_exponent() {
        assert_eq!(Json::from(1_000_000u64).to_string_compact(), "1000000");
        assert_eq!(Json::from(0.5).to_string_compact(), "0.5");
    }
}
