//! Seed-free, explicitly versioned hashing for persistent artifacts.
//!
//! Fingerprints that escape the process — placement-cache keys, method
//! body hashes, fact digests — must be identical across runs, machines,
//! and toolchain versions. The [`fx`](crate::fx) hasher (and `std`'s
//! `RandomState`) are unsuitable: their output is an in-process
//! implementation detail. [`StableHasher`] is a hand-rolled 64-bit
//! FNV-1a with length-prefixed framing for variable-size inputs, so a
//! digest means the same thing in every process that agrees on
//! [`STABLE_HASH_VERSION`].
//!
//! The version constant must be bumped whenever the byte mapping of any
//! `write_*` method changes; consumers fold it into their own format
//! versions so stale digests are rejected rather than misread.
//!
//! # Examples
//!
//! ```
//! use bigfoot_obs::stable::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("crypt.run");
//! h.write_u32(7);
//! let a = h.finish();
//!
//! let mut h2 = StableHasher::new();
//! h2.write_str("crypt.run");
//! h2.write_u32(7);
//! assert_eq!(a, h2.finish());
//! ```

/// Version of the stable hash byte mapping. Bump on any change to how
/// `write_*` methods fold input into the digest.
pub const STABLE_HASH_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a with explicit, versioned framing.
///
/// Unlike `std::hash::Hasher` implementations, this type is not seeded
/// and does not depend on platform endianness: multi-byte integers are
/// folded in little-endian order, and strings/byte-slices are length
/// prefixed so `("ab", "c")` and `("a", "bc")` produce different digests.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest (no length prefix; use
    /// [`write_bytes`](Self::write_bytes) for variable-length payloads).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a variable-length byte slice, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_raw(&[v]);
    }

    /// Folds a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Folds an `i64` via its two's-complement little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64` (digest is identical on 32- and
    /// 64-bit targets).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Folds a string, length-prefixed (UTF-8 bytes).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot stable digest of a string (convenience for simple keys).
pub fn stable_str_digest(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_vector_pinned() {
        // FNV-1a of b"a" (no framing): standard published vector.
        let mut h = StableHasher::new();
        h.write_raw(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn framed_strings_do_not_collide_on_concatenation() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integers_fold_little_endian_regardless_of_host() {
        let mut h = StableHasher::new();
        h.write_u32(0x0102_0304);
        let mut raw = StableHasher::new();
        raw.write_raw(&[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(h.finish(), raw.finish());
    }

    #[test]
    fn digest_is_deterministic_across_hashers() {
        let digest = |seed: &str| {
            let mut h = StableHasher::new();
            h.write_str(seed);
            h.write_i64(-42);
            h.write_bool(true);
            h.write_usize(19);
            h.finish()
        };
        assert_eq!(digest("moldyn.step"), digest("moldyn.step"));
        assert_ne!(digest("moldyn.step"), digest("moldyn.init"));
    }

    #[test]
    fn one_shot_matches_manual() {
        let mut h = StableHasher::new();
        h.write_str("crypt");
        assert_eq!(stable_str_digest("crypt"), h.finish());
    }
}
