//! The global metric registry: counter and timer cells, lazy per-site
//! handles, RAII span guards, and consistent snapshot/reset.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 histogram buckets (covers u64's full range).
const BUCKETS: usize = 64;

/// A monotonically increasing counter cell.
#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// A timer/histogram cell: observation count, summed value (nanoseconds
/// for spans, arbitrary units for `observe!`), and log2 buckets.
struct TimerCell {
    count: AtomicU64,
    total: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl TimerCell {
    fn new() -> TimerCell {
        TimerCell {
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        let bucket = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide registry. Cells are leaked on first registration so
/// call sites can hold `&'static` references; the set of metric names is
/// fixed by the instrumentation sites, so this is bounded.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static CounterCell>>,
    timers: Mutex<BTreeMap<&'static str, &'static TimerCell>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn counter_cell(name: &'static str) -> &'static CounterCell {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(CounterCell::default())))
}

fn timer_cell(name: &'static str) -> &'static TimerCell {
    let mut map = registry().timers.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(TimerCell::new())))
}

/// A per-call-site counter handle, resolved against the registry on first
/// use (`count!` expands to one of these in a `static`).
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static CounterCell>,
}

impl LazyCounter {
    /// A handle for the named counter.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell
            .get_or_init(|| counter_cell(self.name))
            .value
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// A per-call-site timer handle (`span!`/`observe!` expand to one of
/// these in a `static`).
pub struct LazyTimer {
    name: &'static str,
    cell: OnceLock<&'static TimerCell>,
}

impl LazyTimer {
    /// A handle for the named timer.
    pub const fn new(name: &'static str) -> LazyTimer {
        LazyTimer {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation of `value` (count + sum + histogram).
    #[inline]
    pub fn record(&self, value: u64) {
        self.cell
            .get_or_init(|| timer_cell(self.name))
            .record(value);
    }
}

/// Bumps a counter whose name is computed at run time (e.g. the replay
/// engine's per-shard `replay.shard07.races` metrics, where the shard
/// index is not a compile-time literal).
///
/// The name is interned into the registry on first use; later bumps of the
/// same name find the existing cell. Like the [`count!`](crate::count)
/// macro this is a no-op while collection is disabled, but the enabled
/// path takes the registry lock, so keep it off per-event hot paths —
/// batch into one call per shard/stage.
pub fn count_named(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut map = registry().counters.lock().unwrap();
    let cell = match map.get(name) {
        Some(cell) => *cell,
        None => {
            let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
            let cell: &'static CounterCell = Box::leak(Box::new(CounterCell::default()));
            map.insert(leaked, cell);
            cell
        }
    };
    cell.value.fetch_add(n, Ordering::Relaxed);
}

/// RAII guard timing one span; records elapsed nanoseconds on drop.
/// When collection is disabled at entry the guard holds no start time and
/// drop does nothing.
pub struct SpanGuard {
    start: Option<Instant>,
    timer: &'static LazyTimer,
}

impl SpanGuard {
    /// Opens a span against a timer handle (used via the `span!` macro).
    #[inline]
    pub fn enter(timer: &'static LazyTimer) -> SpanGuard {
        SpanGuard {
            start: crate::enabled().then(Instant::now),
            timer,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.timer.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One timer's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnap {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (ns for spans).
    pub total: u64,
    /// Non-empty log2 buckets as `(log2_floor, count)`.
    pub buckets: Vec<(u32, u64)>,
}

impl TimerSnap {
    /// Mean observed value (ns for spans), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// A consistent view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// All timers, sorted by name.
    pub timers: Vec<TimerSnap>,
}

impl Snapshot {
    /// The value of a counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// A timer's snapshot, if it was ever registered.
    pub fn timer(&self, name: &str) -> Option<&TimerSnap> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Sum of all counters whose name starts with `prefix` (e.g. every
    /// `entail.query.*` kind counter).
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// Sum of `total` over all timers whose name starts with `prefix`
    /// (e.g. every `entail.` query timer).
    pub fn timer_total(&self, prefix: &str) -> u64 {
        self.timers
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.total)
            .sum()
    }

    /// Sum of `count` over all timers whose name starts with `prefix`.
    pub fn timer_count(&self, prefix: &str) -> u64 {
        self.timers
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.count)
            .sum()
    }

    /// Serializes the snapshot as a JSON object with stable key order:
    /// `{"counters": {...}, "timers": {name: {count, total, mean, buckets}}}`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut counters = Json::object();
        for c in &self.counters {
            counters.set(&c.name, c.value);
        }
        let mut timers = Json::object();
        for t in &self.timers {
            let mut entry = Json::object();
            entry.set("count", t.count);
            entry.set("total", t.total);
            entry.set("mean", t.mean());
            let mut buckets = Json::object();
            for (b, n) in &t.buckets {
                buckets.set(&b.to_string(), *n);
            }
            entry.set("buckets", buckets);
            timers.set(&t.name, entry);
        }
        let mut out = Json::object();
        out.set("counters", counters);
        out.set("timers", timers);
        out
    }
}

/// Reads every metric. Values observed concurrently with updates are
/// per-cell consistent (relaxed reads), which is all the reports need.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for (name, cell) in registry().counters.lock().unwrap().iter() {
        snap.counters.push(CounterSnap {
            name: (*name).to_owned(),
            value: cell.value.load(Ordering::Relaxed),
        });
    }
    for (name, cell) in registry().timers.lock().unwrap().iter() {
        let buckets = cell
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v > 0).then_some((i as u32, v))
            })
            .collect();
        snap.timers.push(TimerSnap {
            name: (*name).to_owned(),
            count: cell.count.load(Ordering::Relaxed),
            total: cell.total.load(Ordering::Relaxed),
            buckets,
        });
    }
    snap
}

/// Zeroes every registered metric (cells stay registered; per-site handles
/// remain valid).
pub fn reset() {
    for cell in registry().counters.lock().unwrap().values() {
        cell.value.store(0, Ordering::Relaxed);
    }
    for cell in registry().timers.lock().unwrap().values() {
        cell.count.store(0, Ordering::Relaxed);
        cell.total.store(0, Ordering::Relaxed);
        for b in &cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}
