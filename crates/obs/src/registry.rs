//! The global metric registry: counter and timer cells, lazy per-site
//! handles, RAII span guards, and consistent snapshot/reset.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 histogram buckets (covers u64's full range).
const BUCKETS: usize = 64;

/// A monotonically increasing counter cell.
#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// A max-gauge cell: holds the largest value ever reported, so repeated
/// flushes of a high-water mark are idempotent (unlike a counter, which
/// would sum them).
#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
}

/// A timer/histogram cell: observation count, summed value (nanoseconds
/// for spans, arbitrary units for `observe!`), and log2 buckets.
struct TimerCell {
    count: AtomicU64,
    total: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl TimerCell {
    fn new() -> TimerCell {
        TimerCell {
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        let bucket = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide registry. Cells are leaked on first registration so
/// call sites can hold `&'static` references; the set of metric names is
/// fixed by the instrumentation sites, so this is bounded.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static CounterCell>>,
    gauges: Mutex<BTreeMap<&'static str, &'static GaugeCell>>,
    timers: Mutex<BTreeMap<&'static str, &'static TimerCell>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn counter_cell(name: &'static str) -> &'static CounterCell {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(CounterCell::default())))
}

fn timer_cell(name: &'static str) -> &'static TimerCell {
    let mut map = registry().timers.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(TimerCell::new())))
}

/// A per-call-site counter handle, resolved against the registry on first
/// use (`count!` expands to one of these in a `static`).
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static CounterCell>,
}

impl LazyCounter {
    /// A handle for the named counter.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell
            .get_or_init(|| counter_cell(self.name))
            .value
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// A per-call-site timer handle (`span!`/`observe!` expand to one of
/// these in a `static`).
pub struct LazyTimer {
    name: &'static str,
    cell: OnceLock<&'static TimerCell>,
}

impl LazyTimer {
    /// A handle for the named timer.
    pub const fn new(name: &'static str) -> LazyTimer {
        LazyTimer {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation of `value` (count + sum + histogram).
    #[inline]
    pub fn record(&self, value: u64) {
        self.cell
            .get_or_init(|| timer_cell(self.name))
            .record(value);
    }
}

/// Bumps a counter whose name is computed at run time (e.g. the replay
/// engine's per-shard `replay.shard07.races` metrics, where the shard
/// index is not a compile-time literal).
///
/// The name is interned into the registry on first use; later bumps of the
/// same name find the existing cell. Like the [`count!`](crate::count)
/// macro this is a no-op while collection is disabled, but the enabled
/// path takes the registry lock, so keep it off per-event hot paths —
/// batch into one call per shard/stage.
pub fn count_named(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut map = registry().counters.lock().unwrap();
    let cell = match map.get(name) {
        Some(cell) => *cell,
        None => {
            let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
            let cell: &'static CounterCell = Box::leak(Box::new(CounterCell::default()));
            map.insert(leaked, cell);
            cell
        }
    };
    cell.value.fetch_add(n, Ordering::Relaxed);
}

/// Raises a named max-gauge to at least `value` (`fetch_max`), interning
/// the name like [`count_named`]. Use for high-water marks that are
/// flushed per run — flushing twice reports the max, not the sum (the
/// `pipeline.depth_max` regression [`count_named`] could not express).
pub fn gauge_max_named(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let mut map = registry().gauges.lock().unwrap();
    let cell = match map.get(name) {
        Some(cell) => *cell,
        None => {
            let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
            let cell: &'static GaugeCell = Box::leak(Box::new(GaugeCell::default()));
            map.insert(leaked, cell);
            cell
        }
    };
    cell.value.fetch_max(value, Ordering::Relaxed);
}

/// RAII guard timing one span; records elapsed nanoseconds on drop.
/// When collection is disabled at entry the guard holds no start time and
/// drop does nothing. When trace recording is enabled at entry the guard
/// also brackets a flight-recorder span on the calling thread's timeline
/// (see [`crate::trace`]); the paired end fires on drop even if tracing
/// is disabled mid-span.
pub struct SpanGuard {
    start: Option<Instant>,
    timer: &'static LazyTimer,
    trace: Option<&'static crate::trace::LazyTraceName>,
}

impl SpanGuard {
    /// Opens a span against a timer handle.
    #[inline]
    pub fn enter(timer: &'static LazyTimer) -> SpanGuard {
        SpanGuard {
            start: crate::enabled().then(Instant::now),
            timer,
            trace: None,
        }
    }

    /// Opens a span that also records into the flight recorder when
    /// tracing is on (the `span!` macro expands to this).
    #[inline]
    pub fn enter_traced(
        timer: &'static LazyTimer,
        tname: &'static crate::trace::LazyTraceName,
    ) -> SpanGuard {
        let trace = crate::trace::enabled().then(|| {
            crate::trace::begin(tname);
            tname
        });
        SpanGuard {
            start: crate::enabled().then(Instant::now),
            timer,
            trace,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.timer.record(start.elapsed().as_nanos() as u64);
        }
        if let Some(tname) = self.trace {
            crate::trace::end(tname);
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One timer's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnap {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (ns for spans).
    pub total: u64,
    /// Non-empty log2 buckets as `(log2_floor, count)`.
    pub buckets: Vec<(u32, u64)>,
}

impl TimerSnap {
    /// Mean observed value (ns for spans), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) estimated from the log2
    /// histogram: walk the cumulative bucket counts to the target rank,
    /// then interpolate linearly within the bucket's `[2^b, 2^(b+1))`
    /// value range. Exact to within one octave, which is all a p50/p99
    /// over nanosecond spans needs.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            if seen + n >= target {
                let lo = 2f64.powi(b as i32);
                let frac = (target - seen) as f64 / n as f64;
                return lo + frac * lo;
            }
            seen += n;
        }
        // Histogram under-counts `total` only if buckets were reset
        // mid-snapshot; fall back to the top recorded bucket.
        2f64.powi(self.buckets.last().map(|&(b, _)| b as i32).unwrap_or(0))
    }
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: String,
    /// Gauge value (the max ever reported for max-gauges).
    pub value: u64,
}

/// A consistent view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnap>,
    /// All timers, sorted by name.
    pub timers: Vec<TimerSnap>,
}

impl Snapshot {
    /// The value of a counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The value of a gauge (0 if never registered).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
            .unwrap_or(0)
    }

    /// A timer's snapshot, if it was ever registered.
    pub fn timer(&self, name: &str) -> Option<&TimerSnap> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Sum of all counters whose name starts with `prefix` (e.g. every
    /// `entail.query.*` kind counter).
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// Sum of `total` over all timers whose name starts with `prefix`
    /// (e.g. every `entail.` query timer).
    pub fn timer_total(&self, prefix: &str) -> u64 {
        self.timers
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.total)
            .sum()
    }

    /// Sum of `count` over all timers whose name starts with `prefix`.
    pub fn timer_count(&self, prefix: &str) -> u64 {
        self.timers
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.count)
            .sum()
    }

    /// Serializes the snapshot as a JSON object with stable key order:
    /// `{"counters": {...}, "gauges": {...}, "timers": {name: {count,
    /// total, mean, p50, p90, p99, buckets}}}`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut counters = Json::object();
        for c in &self.counters {
            counters.set(&c.name, c.value);
        }
        let mut gauges = Json::object();
        for g in &self.gauges {
            gauges.set(&g.name, g.value);
        }
        let mut timers = Json::object();
        for t in &self.timers {
            let mut entry = Json::object();
            entry.set("count", t.count);
            entry.set("total", t.total);
            entry.set("mean", t.mean());
            entry.set("p50", t.percentile(0.50));
            entry.set("p90", t.percentile(0.90));
            entry.set("p99", t.percentile(0.99));
            let mut buckets = Json::object();
            for (b, n) in &t.buckets {
                buckets.set(&b.to_string(), *n);
            }
            entry.set("buckets", buckets);
            timers.set(&t.name, entry);
        }
        let mut out = Json::object();
        out.set("counters", counters);
        out.set("gauges", gauges);
        out.set("timers", timers);
        out
    }
}

/// Reads every metric. Values observed concurrently with updates are
/// per-cell consistent (relaxed reads), which is all the reports need.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for (name, cell) in registry().counters.lock().unwrap().iter() {
        snap.counters.push(CounterSnap {
            name: (*name).to_owned(),
            value: cell.value.load(Ordering::Relaxed),
        });
    }
    for (name, cell) in registry().gauges.lock().unwrap().iter() {
        snap.gauges.push(GaugeSnap {
            name: (*name).to_owned(),
            value: cell.value.load(Ordering::Relaxed),
        });
    }
    for (name, cell) in registry().timers.lock().unwrap().iter() {
        let buckets = cell
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v > 0).then_some((i as u32, v))
            })
            .collect();
        snap.timers.push(TimerSnap {
            name: (*name).to_owned(),
            count: cell.count.load(Ordering::Relaxed),
            total: cell.total.load(Ordering::Relaxed),
            buckets,
        });
    }
    snap
}

/// Zeroes every registered metric (cells stay registered; per-site handles
/// remain valid).
pub fn reset() {
    for cell in registry().counters.lock().unwrap().values() {
        cell.value.store(0, Ordering::Relaxed);
    }
    for cell in registry().gauges.lock().unwrap().values() {
        cell.value.store(0, Ordering::Relaxed);
    }
    for cell in registry().timers.lock().unwrap().values() {
        cell.count.store(0, Ordering::Relaxed);
        cell.total.store(0, Ordering::Relaxed);
        for b in &cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pure computation over hand-built snapshots — never touches the
    // global registry, so it is safe alongside the lib.rs reset test.
    #[test]
    fn percentiles_interpolate_within_log2_buckets() {
        let t = TimerSnap {
            name: "t".into(),
            count: 100,
            total: 0,
            buckets: vec![(4, 50), (6, 50)],
        };
        // Rank 50 lands at the top of the [16, 32) bucket.
        assert_eq!(t.percentile(0.50), 32.0);
        // Rank 90 is 40/50 of the way through the [64, 128) bucket.
        assert!((t.percentile(0.90) - 115.2).abs() < 1e-9);
        assert!((t.percentile(0.99) - 126.72).abs() < 1e-9);
        // Quantiles are monotone and inside the recorded value range.
        assert!(t.percentile(0.50) <= t.percentile(0.90));
        assert!(t.percentile(0.99) <= 128.0);

        let empty = TimerSnap {
            name: "e".into(),
            count: 0,
            total: 0,
            buckets: vec![],
        };
        assert_eq!(empty.percentile(0.99), 0.0);

        let single = TimerSnap {
            name: "s".into(),
            count: 1,
            total: 9,
            buckets: vec![(3, 1)],
        };
        for q in [0.5, 0.9, 0.99] {
            let p = single.percentile(q);
            assert!((8.0..=16.0).contains(&p), "p{q} = {p} outside its octave");
        }
    }
}
