//! Flight-recorder integration tests: concurrent recording from
//! producer + consumer threads, exact drop-oldest accounting, export
//! balance sanitization, and the panic-unwind trace flush.
//!
//! Trace state (rings, the enable flag, the name table) is global to the
//! process, so every test serializes on one mutex and asserts only on
//! thread tracks it created with unique names.

use bigfoot_obs::json::Json;
use bigfoot_obs::trace;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// `(tid, B-count, E-count, instants, counters)` for the named track in
/// a Chrome trace JSON tree, asserting stack-disciplined B/E pairing.
fn track_summary(json: &Json, track: &str) -> (u64, u64, u64, u64, u64) {
    let events = json.get("traceEvents").expect("traceEvents").items();
    let tid = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some(track)
        })
        .and_then(|e| e.get("tid"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no thread_name metadata for track {track}"));
    let (mut b, mut e, mut i, mut c) = (0u64, 0u64, 0u64, 0u64);
    let mut depth = 0i64;
    for ev in events {
        if ev.get("tid").and_then(Json::as_u64) != Some(tid) {
            continue;
        }
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => {
                b += 1;
                depth += 1;
            }
            Some("E") => {
                e += 1;
                depth -= 1;
                assert!(depth >= 0, "track {track}: E without a preceding B");
            }
            Some("i") => i += 1,
            Some("C") => c += 1,
            _ => {}
        }
    }
    assert_eq!(depth, 0, "track {track}: {b} begins vs {e} ends");
    (tid, b, e, i, c)
}

#[test]
fn concurrent_producer_consumer_recording_balances_and_accounts_drops() {
    let _l = lock();
    let _obs = bigfoot_obs::EnabledGuard::new();

    const CAP: u64 = 1024;
    const PROD_SPANS: u64 = 600; // 1200 events > CAP: forces overflow
    const CONS_SPANS: u64 = 500;
    const CONS_INSTANTS: u64 = 300; // 1300 events > CAP

    trace::set_capacity(CAP as usize);
    trace::set_enabled(true);
    // Sync the delta baseline, then measure this test's drops exactly.
    trace::publish_counters();
    let dropped_before = bigfoot_obs::snapshot().counter("trace.dropped");

    std::thread::scope(|scope| {
        scope.spawn(|| {
            trace::set_thread_name("fr-producer");
            for _ in 0..PROD_SPANS {
                let _s = bigfoot_obs::trace_span!("fr.produce");
                std::hint::black_box(0);
            }
        });
        scope.spawn(|| {
            trace::set_thread_name("fr-consumer");
            for k in 0..CONS_SPANS.max(CONS_INSTANTS) {
                if k < CONS_SPANS {
                    let _s = bigfoot_obs::trace_span!("fr.consume");
                    std::hint::black_box(0);
                }
                if k < CONS_INSTANTS {
                    bigfoot_obs::trace_instant!("fr.tick");
                }
            }
        });
    });
    trace::set_enabled(false);
    trace::publish_counters();

    // Exact per-ring accounting: every recorded event is counted and
    // drop-oldest lost exactly (written - capacity) of them.
    let stats = trace::thread_stats();
    let find = |name: &str| {
        stats
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("no ring named {name}"))
    };
    let (_, prod_events, prod_dropped) = find("fr-producer");
    let (_, cons_events, cons_dropped) = find("fr-consumer");
    assert_eq!(*prod_events, 2 * PROD_SPANS);
    assert_eq!(*prod_dropped, 2 * PROD_SPANS - CAP);
    assert_eq!(*cons_events, 2 * CONS_SPANS + CONS_INSTANTS);
    assert_eq!(*cons_dropped, 2 * CONS_SPANS + CONS_INSTANTS - CAP);

    // The published obs counter carries the same totals (delta-exact:
    // nothing else recorded between the two publishes).
    let dropped_after = bigfoot_obs::snapshot().counter("trace.dropped");
    assert_eq!(
        dropped_after - dropped_before,
        *prod_dropped + *cons_dropped,
        "trace.dropped must account exactly for ring overflow"
    );

    // No lost begin/end pairing in the export, even though both rings
    // overflowed mid-span: orphaned ends are dropped at export.
    let json = trace::chrome_trace_json();
    let (_, b, e, _, _) = track_summary(&json, "fr-producer");
    assert!(b > 0 && b == e);
    let (_, b, e, i, _) = track_summary(&json, "fr-consumer");
    assert!(b > 0 && b == e);
    assert!(i > 0, "instants survive in the retained window");
}

#[test]
fn mid_run_export_closes_open_spans_and_emits_counters() {
    let _l = lock();
    trace::set_capacity(trace::DEFAULT_RING_EVENTS);
    trace::set_enabled(true);

    let json = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                trace::set_thread_name("fr-midrun");
                let _open = bigfoot_obs::trace_span!("fr.open_span");
                bigfoot_obs::trace_counter!("fr.depth", 3);
                bigfoot_obs::trace_counter!("fr.depth", 5);
                // Export while the span is still open — the mid-run
                // (panic-path) shape of the trace.
                trace::chrome_trace_json()
            })
            .join()
            .expect("recorder thread")
    });
    trace::set_enabled(false);

    let (_, b, e, _, c) = track_summary(&json, "fr-midrun");
    assert_eq!(b, 1, "the open span's begin is present");
    assert_eq!(e, 1, "export closes the still-open span");
    assert_eq!(c, 2, "both counter samples exported");
    let events = json.get("traceEvents").expect("traceEvents").items();
    let sample = events
        .iter()
        .find(|ev| ev.get("ph").and_then(Json::as_str) == Some("C"))
        .expect("a counter event");
    assert_eq!(sample.get("name").and_then(Json::as_str), Some("fr.depth"));
    assert!(sample
        .get("args")
        .and_then(|a| a.get("value"))
        .and_then(Json::as_u64)
        .is_some());
}

#[test]
fn trace_out_guard_writes_a_parseable_trace_on_panic_unwind() {
    let _l = lock();
    trace::set_capacity(trace::DEFAULT_RING_EVENTS);
    let path = std::env::temp_dir().join(format!("bigfoot_fr_panic_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let result = std::panic::catch_unwind({
        let path = path.clone();
        move || {
            let _guard = bigfoot_obs::TraceOutGuard::new(&path);
            let _s = bigfoot_obs::trace_span!("fr.crashing_phase");
            panic!("simulated crash");
        }
    });
    assert!(result.is_err(), "the panic must propagate");
    assert!(!trace::enabled(), "guard drop disables tracing");

    let text = std::fs::read_to_string(&path).expect("partial trace written on unwind");
    let json = bigfoot_obs::json::parse(&text).expect("well-formed Chrome trace JSON");
    let events = json.get("traceEvents").expect("traceEvents").items();
    let crash_events: Vec<&str> = events
        .iter()
        .filter(|ev| ev.get("name").and_then(Json::as_str) == Some("fr.crashing_phase"))
        .filter_map(|ev| ev.get("ph").and_then(Json::as_str))
        .collect();
    assert!(
        crash_events.contains(&"B") && crash_events.contains(&"E"),
        "the interrupted span survives, closed at export: {crash_events:?}"
    );
    let _ = std::fs::remove_file(&path);
}
