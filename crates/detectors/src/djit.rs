//! The DJIT+ baseline detector (Pozniansky & Schuster, 2007).
//!
//! DJIT+ predates FastTrack's epoch optimization: every shadow location
//! keeps *two full vector clocks* — the time of each thread's last write
//! and last read. It is precise (same verdicts as FastTrack) but pays
//! O(threads) space and time per location, which is exactly the overhead
//! FastTrack's epochs remove. The paper cites it as the precise-detection
//! baseline (§1); this implementation doubles as a differential-testing
//! oracle for the FastTrack engine.

use crate::stats::{Race, RaceTarget, Stats};
use crate::sync::SyncClocks;
use bigfoot_bfj::{ArrId, ConcreteRange, Event, EventSink, Loc, ObjId};
use bigfoot_vc::{AccessKind, RaceInfo, Tid, VectorClock};
use std::collections::HashMap;

/// Per-location DJIT+ shadow state: last-write and last-read times per
/// thread.
#[derive(Debug, Clone, Default)]
pub struct DjitState {
    writes: VectorClock,
    reads: VectorClock,
}

impl DjitState {
    /// Applies an access; reports the first race found.
    ///
    /// # Errors
    ///
    /// Returns the race description on an unordered conflicting pair.
    pub fn apply(&mut self, kind: AccessKind, t: Tid, clock: &VectorClock) -> Result<(), RaceInfo> {
        // A write by another thread not ordered before us races with
        // anything; a read races only with our write.
        for (u, wu) in self.writes.iter() {
            if u != t && wu > clock.get(u) {
                return Err(RaceInfo {
                    prior: AccessKind::Write,
                    prior_tid: u,
                    current: kind,
                    current_tid: t,
                });
            }
        }
        if kind == AccessKind::Write {
            for (u, ru) in self.reads.iter() {
                if u != t && ru > clock.get(u) {
                    return Err(RaceInfo {
                        prior: AccessKind::Read,
                        prior_tid: u,
                        current: AccessKind::Write,
                        current_tid: t,
                    });
                }
            }
        }
        match kind {
            AccessKind::Read => self.reads.set(t, clock.get(t)),
            AccessKind::Write => self.writes.set(t, clock.get(t)),
        }
        Ok(())
    }

    /// Space in clock-entry units.
    pub fn space_units(&self) -> usize {
        self.writes.len().max(1) + self.reads.len().max(1)
    }
}

/// The DJIT+ detector: fine-grained vector-clock-pair shadow locations,
/// one check per access.
#[derive(Debug, Default)]
pub struct DjitDetector {
    clocks: SyncClocks,
    fields: HashMap<(ObjId, u32), DjitState>,
    elems: HashMap<(ArrId, i64), DjitState>,
    stats: Stats,
}

impl DjitDetector {
    /// A fresh detector.
    pub fn new() -> DjitDetector {
        DjitDetector {
            clocks: SyncClocks::new(),
            ..DjitDetector::default()
        }
    }

    /// Finalizes and returns the statistics.
    pub fn finish(mut self) -> Stats {
        let units: u64 = self
            .fields
            .values()
            .map(|s| s.space_units() as u64)
            .sum::<u64>()
            + self
                .elems
                .values()
                .map(|s| s.space_units() as u64)
                .sum::<u64>();
        self.stats.observe_space(units);
        self.stats.sync_ops = self.clocks.sync_ops();
        self.stats.publish();
        self.stats
    }
}

impl EventSink for DjitDetector {
    fn event(&mut self, ev: &Event) {
        match ev {
            Event::Access { t, kind, loc } => {
                match kind {
                    AccessKind::Read => self.stats.reads += 1,
                    AccessKind::Write => self.stats.writes += 1,
                }
                self.stats.checks += 1;
                self.stats.shadow_ops += 1;
                let clock = self.clocks.clock(*t).clone();
                let (state, target) = match loc {
                    Loc::Field(o, f) => (
                        self.fields.entry((*o, *f)).or_default(),
                        RaceTarget::Field(*o, *f),
                    ),
                    Loc::Elem(a, i) => (
                        self.elems.entry((*a, *i)).or_default(),
                        RaceTarget::Elems(*a, ConcreteRange::singleton(*i)),
                    ),
                };
                if let Err(info) = state.apply(*kind, *t, &clock) {
                    self.stats.report_race(Race { target, info });
                }
            }
            Event::Check { .. } | Event::AllocObj { .. } | Event::AllocArr { .. } => {}
            Event::Acquire { t, lock } => self.clocks.acquire(*t, *lock),
            Event::Release { t, lock } => self.clocks.release(*t, *lock),
            Event::VolatileWrite { t, obj, field } => self.clocks.volatile_write(*t, *obj, *field),
            Event::VolatileRead { t, obj, field } => self.clocks.volatile_read(*t, *obj, *field),
            Event::Fork { parent, child } => self.clocks.fork(*parent, *child),
            Event::Join { parent, child } => self.clocks.join(*parent, *child),
            Event::ThreadExit { t } => self.clocks.exit(*t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use bigfoot_bfj::{parse_program, Interp, SchedPolicy};

    fn run_both(src: &str, seed: u64) -> (Stats, Stats) {
        let p = parse_program(src).unwrap();
        let policy = SchedPolicy::Random {
            seed,
            switch_inv: 2,
        };
        let mut dj = DjitDetector::new();
        Interp::new(&p, policy).run(&mut dj).unwrap();
        let mut ft = Detector::fasttrack();
        Interp::new(&p, policy).run(&mut ft).unwrap();
        (dj.finish(), ft.finish())
    }

    #[test]
    fn djit_agrees_with_fasttrack() {
        let racy = "
            class C { field x; meth poke(v) { this.x = v; return 0; } }
            main {
                c = new C;
                fork t1 = c.poke(1);
                fork t2 = c.poke(2);
                join(t1); join(t2);
            }";
        let locked = "
            class C { field x; meth poke(l, v) { acq(l); this.x = v; rel(l); return 0; } }
            class L { }
            main {
                c = new C;
                l = new L;
                fork t1 = c.poke(l, 1);
                fork t2 = c.poke(l, 2);
                join(t1); join(t2);
            }";
        for seed in 1..10 {
            let (dj, ft) = run_both(racy, seed);
            assert_eq!(dj.has_races(), ft.has_races(), "racy seed {seed}");
            assert_eq!(dj.racy_locations(), ft.racy_locations());
            let (dj, ft) = run_both(locked, seed);
            assert!(!dj.has_races() && !ft.has_races(), "locked seed {seed}");
        }
    }

    #[test]
    fn djit_space_exceeds_fasttrack_when_read_shared() {
        // Many threads read the same array: DJIT+ keeps full read vectors,
        // FastTrack mostly epochs (until read-shared, then it inflates
        // too, but writes stay epochs).
        let src = "
            class W { meth scan(a) {
                s = 0;
                for (i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s; } }
            main {
                w = new W;
                a = new_array(64);
                fork t1 = w.scan(a);
                fork t2 = w.scan(a);
                fork t3 = w.scan(a);
                join(t1); join(t2); join(t3);
            }";
        let (dj, ft) = run_both(src, 3);
        assert!(!dj.has_races() && !ft.has_races());
        // DJIT+ checks every access with a full vector-clock comparison.
        assert_eq!(dj.checks, dj.accesses());
        // With a sparse clock representation the absolute space is close to
        // FastTrack's here (both end read-shared); it must at least be in
        // the same ballpark rather than compressed.
        assert!(dj.shadow_space_end * 2 >= ft.shadow_space_end);
    }
}
