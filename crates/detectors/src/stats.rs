//! Per-run statistics and race reports.
//!
//! These counters drive the paper's quantitative results: the check ratio
//! (Fig. 8) is `checks / accesses`, the operation-count cost model behind
//! Table 1 combines `shadow_ops`, `footprint_ops`, and `sync_ops`, and
//! `shadow_space` backs Table 2.

use bigfoot_bfj::{ArrId, ConcreteRange, ObjId};
use bigfoot_vc::RaceInfo;
use std::collections::HashSet;

/// The memory a detected race fell on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceTarget {
    /// A field group of an object (field index for uncompressed shadow,
    /// group index under proxy compression).
    Field(ObjId, u32),
    /// A range of array elements (a single element in fine-grained mode,
    /// a wider extent under compression).
    Elems(ArrId, ConcreteRange),
}

impl RaceTarget {
    /// The containing object/array, for cross-detector comparisons.
    pub fn coarse(&self) -> CoarseTarget {
        match self {
            RaceTarget::Field(o, _) => CoarseTarget::Obj(*o),
            RaceTarget::Elems(a, _) => CoarseTarget::Arr(*a),
        }
    }
}

impl std::fmt::Display for RaceTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceTarget::Field(o, g) => write!(f, "{o}.group{g}"),
            RaceTarget::Elems(a, r) => write!(f, "{a}[{r}]"),
        }
    }
}

/// Object/array-granularity race location (used to compare detectors,
/// since compressed detectors report ranges rather than single elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoarseTarget {
    /// An object.
    Obj(ObjId),
    /// An array.
    Arr(ArrId),
}

/// One detected race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Where.
    pub target: RaceTarget,
    /// Who and how.
    pub info: RaceInfo,
}

/// Counters accumulated over one monitored run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Heap read accesses observed.
    pub reads: u64,
    /// Heap write accesses observed.
    pub writes: u64,
    /// Check operations processed. A coalesced path (multi-field group or
    /// array range) counts once — this is the numerator of the paper's
    /// check ratio.
    pub checks: u64,
    /// Checks whose target was an array path.
    pub array_checks: u64,
    /// Checks whose target was a field path.
    pub field_checks: u64,
    /// Shadow-location check-and-update operations.
    pub shadow_ops: u64,
    /// Footprint insertions (deferred-check bookkeeping).
    pub footprint_ops: u64,
    /// Synchronization operations processed.
    pub sync_ops: u64,
    /// Deduplicated races.
    pub races: Vec<Race>,
    /// Peak shadow space observed, in clock-entry units.
    pub shadow_space_peak: u64,
    /// Shadow space at end of run, in clock-entry units.
    pub shadow_space_end: u64,
    /// Coarse race locations already reported (for deduplication).
    seen_races: HashSet<(CoarseTarget, u32)>,
}

impl Stats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// The paper's check ratio: checks per access (1.0 for FastTrack).
    pub fn check_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.checks as f64 / self.accesses() as f64
        }
    }

    /// Records a race, deduplicating per (coarse location, group/element
    /// bucket) as FastTrack reports at most one race per location.
    pub fn report_race(&mut self, race: Race) {
        let key = match &race.target {
            RaceTarget::Field(o, g) => (CoarseTarget::Obj(*o), *g),
            // Bucket array races by their starting element.
            RaceTarget::Elems(a, r) => (CoarseTarget::Arr(*a), r.lo.rem_euclid(i64::MAX) as u32),
        };
        if self.seen_races.insert(key) {
            self.races.push(race);
        }
    }

    /// The set of racy objects/arrays (for cross-detector comparison).
    pub fn racy_locations(&self) -> std::collections::BTreeSet<CoarseTarget> {
        self.races.iter().map(|r| r.target.coarse()).collect()
    }

    /// True if any race was reported.
    pub fn has_races(&self) -> bool {
        !self.races.is_empty()
    }

    /// Updates the space peak with a new observation.
    pub fn observe_space(&mut self, units: u64) {
        self.shadow_space_end = units;
        if units > self.shadow_space_peak {
            self.shadow_space_peak = units;
        }
    }

    /// Serializes the counters as a JSON object with stable key order
    /// (shared by `bfc --json` and the `repro` reports).
    pub fn to_json(&self) -> bigfoot_obs::json::Json {
        let mut out = bigfoot_obs::json::Json::object();
        out.set("reads", self.reads);
        out.set("writes", self.writes);
        out.set("accesses", self.accesses());
        out.set("checks", self.checks);
        out.set("array_checks", self.array_checks);
        out.set("field_checks", self.field_checks);
        out.set("check_ratio", self.check_ratio());
        out.set("shadow_ops", self.shadow_ops);
        out.set("footprint_ops", self.footprint_ops);
        out.set("sync_ops", self.sync_ops);
        out.set("races", self.races.len() as u64);
        out.set("shadow_space_peak", self.shadow_space_peak);
        out.set("shadow_space_end", self.shadow_space_end);
        out
    }

    /// Publishes the run's counters into the `bigfoot-obs` registry
    /// (under `detector.*`), so `bfc profile` and the `--json` reports see
    /// detector work alongside static-analysis spans. Called by detector
    /// `finalize`/`finish`; a no-op while collection is disabled.
    pub fn publish(&self) {
        if !bigfoot_obs::enabled() {
            return;
        }
        bigfoot_obs::count!("detector.runs");
        bigfoot_obs::count!("detector.reads", self.reads);
        bigfoot_obs::count!("detector.writes", self.writes);
        bigfoot_obs::count!("detector.checks", self.checks);
        bigfoot_obs::count!("detector.array_checks", self.array_checks);
        bigfoot_obs::count!("detector.field_checks", self.field_checks);
        bigfoot_obs::count!("detector.shadow_ops", self.shadow_ops);
        bigfoot_obs::count!("detector.footprint_ops", self.footprint_ops);
        bigfoot_obs::count!("detector.sync_ops", self.sync_ops);
        bigfoot_obs::count!("detector.races", self.races.len());
        bigfoot_obs::observe!("detector.shadow_space_peak", self.shadow_space_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_vc::{AccessKind, Tid};

    fn race_on(t: RaceTarget) -> Race {
        Race {
            target: t,
            info: RaceInfo {
                prior: AccessKind::Write,
                prior_tid: Tid(0),
                current: AccessKind::Write,
                current_tid: Tid(1),
            },
        }
    }

    #[test]
    fn races_deduplicate_per_location() {
        let mut s = Stats::default();
        s.report_race(race_on(RaceTarget::Field(ObjId(1), 0)));
        s.report_race(race_on(RaceTarget::Field(ObjId(1), 0)));
        s.report_race(race_on(RaceTarget::Field(ObjId(1), 1)));
        s.report_race(race_on(RaceTarget::Field(ObjId(2), 0)));
        assert_eq!(s.races.len(), 3);
        assert_eq!(s.racy_locations().len(), 2);
    }

    #[test]
    fn check_ratio_computation() {
        let s = Stats {
            reads: 75,
            writes: 25,
            checks: 43,
            ..Stats::default()
        };
        assert!((s.check_ratio() - 0.43).abs() < 1e-9);
    }

    #[test]
    fn space_peak_tracks_maximum() {
        let mut s = Stats::default();
        s.observe_space(10);
        s.observe_space(100);
        s.observe_space(50);
        assert_eq!(s.shadow_space_peak, 100);
        assert_eq!(s.shadow_space_end, 50);
    }
}
