//! Sharded multi-worker pipelined detection: online detection that
//! scales past one consumer core.
//!
//! PR 5's pipeline overlaps the interpreter with *one* detector thread;
//! this module fans the detection stage out to `N` workers while
//! keeping the race report **byte-identical to the serial detector at
//! any worker count**. The thread topology is
//!
//! ```text
//! interpreter ──batch ring──▶ router ──N item rings──▶ N detect workers
//!  (caller)                 (annotator)                      │
//!      ▲                                                     ▼
//!      └──────────────── seq-ordered merge ◀── per-shard outcomes
//! ```
//!
//! * The **router** is the single consumer of the event ring. For the
//!   replay configurations it *is* the stage-1 annotator from
//!   [`crate::replay`]: it runs sync events against [`SyncClocks`] in
//!   stream order and turns every check into a sequenced, self-contained
//!   [`Item`] routed to one of the [`SHARDS`] logical shards
//!   (`ObjId`/`ArrId % SHARDS`; space probes broadcast to every shard).
//! * Worker `w` owns the shards `s % N == w` and applies its items in
//!   arrival order. Because there is a single router and items route by
//!   *shard* — never by worker — each shard observes the same item
//!   stream in the same order for every worker count: the per-shard
//!   streams are worker-count-invariant.
//! * The **merge** sorts per-shard race candidates by their global
//!   `(seq, intra_item_index)` tag and replays them through
//!   [`Stats::report_race`], reproducing the serial detector's inline
//!   dedup — the same determinism contract PR 2 proved for offline
//!   replay, now without the intermediate trace file.
//!
//! Close/dead protocol for the fan-out: the router closes every item
//! ring after its final commit (workers drain and exit); a worker that
//! panics marks *its* ring dead, so the router drops that ring's
//! batches (tallied as `pipeline.route.batches_dropped`) while the
//! surviving workers drain normally, and the panic resurfaces after
//! every worker has been joined. A guard closes all rings if the
//! producer or router unwinds, so workers never spin on an abandoned
//! ring.

use crate::channel::{DeadOnUnwind, Ring};
use crate::djit::DjitState;
use crate::pipeline::{run_pipelined, BatchSink, PipelineConfig};
use crate::replay::{
    arr_shard, merge_outcomes, obj_shard, Annotator, Item, ItemSink, ReplayConfig, ShardOutcome,
    ShardState, SHARDS,
};
use crate::stats::{Race, RaceTarget, Stats};
use crate::sync::SyncClocks;
use bigfoot_bfj::{ArrId, ConcreteRange, Event, EventSink, Loc, ObjId};
use bigfoot_vc::{AccessKind, Tid, VectorClock};
use std::collections::HashMap;
use std::sync::Arc;

/// A batch of routed items: `(shard, item)` pairs in router order. The
/// shard tag rides along because one ring serves all of a worker's
/// shards (`s % N == w`), and the worker dispatches per item.
type RoutedBatch<I> = Vec<(u16, I)>;

/// Router-side tallies for one worker's item ring, mirroring
/// [`crate::pipeline`]'s accepted-vs-dropped accounting.
#[derive(Debug, Default, Clone, Copy)]
struct RouteTallies {
    batches: u64,
    items: u64,
    batches_dropped: u64,
    items_dropped: u64,
    full_stalls: u64,
    recycled: u64,
}

impl RouteTallies {
    fn add(&mut self, other: &RouteTallies) {
        self.batches += other.batches;
        self.items += other.items;
        self.batches_dropped += other.batches_dropped;
        self.items_dropped += other.items_dropped;
        self.full_stalls += other.full_stalls;
        self.recycled += other.recycled;
    }
}

/// The router's producer side of the fan-out: batches `(shard, item)`
/// pairs per owning worker and commits full batches to that worker's
/// SPSC ring, recycling drained batches through the paired free rings.
struct FanOut<'r, I> {
    rings: &'r [Ring<RoutedBatch<I>>],
    free: &'r [Ring<RoutedBatch<I>>],
    pending: Vec<RoutedBatch<I>>,
    batch_items: usize,
    tallies: Vec<RouteTallies>,
}

impl<'r, I> FanOut<'r, I> {
    fn new(
        rings: &'r [Ring<RoutedBatch<I>>],
        free: &'r [Ring<RoutedBatch<I>>],
        batch_items: usize,
    ) -> FanOut<'r, I> {
        let workers = rings.len();
        FanOut {
            rings,
            free,
            pending: (0..workers).map(|_| Vec::new()).collect(),
            batch_items: batch_items.max(1),
            tallies: vec![RouteTallies::default(); workers],
        }
    }

    #[inline]
    fn route(&mut self, shard: usize, item: I) {
        let w = shard % self.rings.len();
        self.pending[w].push((shard as u16, item));
        if self.pending[w].len() >= self.batch_items {
            self.commit(w);
        }
    }

    fn commit(&mut self, w: usize) {
        if self.pending[w].is_empty() {
            return;
        }
        let next = match self.free[w].try_pop() {
            Some(recycled) => {
                self.tallies[w].recycled += 1;
                recycled
            }
            None => Vec::with_capacity(self.batch_items),
        };
        let full = std::mem::replace(&mut self.pending[w], next);
        let occupancy = full.len() as u64;
        // Accepted handoffs and dead-ring drops are tallied apart, as in
        // `BatchSink::commit`: a worker that panicked marks its ring
        // dead, and the router must not claim those items were consumed.
        if self.rings[w].push(full, &mut self.tallies[w].full_stalls) {
            self.tallies[w].batches += 1;
            self.tallies[w].items += occupancy;
        } else {
            self.tallies[w].batches_dropped += 1;
            self.tallies[w].items_dropped += occupancy;
        }
    }

    /// Flushes every pending batch and closes every ring: end-of-stream
    /// for all workers.
    fn finish(&mut self) {
        for w in 0..self.rings.len() {
            self.commit(w);
            self.rings[w].close();
        }
    }

    fn tallies_total(&self) -> RouteTallies {
        let mut total = RouteTallies::default();
        for t in &self.tallies {
            total.add(t);
        }
        total
    }
}

impl ItemSink for FanOut<'_, Item> {
    #[inline]
    fn item(&mut self, shard: usize, item: Item) {
        self.route(shard, item);
    }
}

/// Closes every fan-out ring on drop. Armed before the router runs so
/// that a producer or router panic still delivers end-of-stream to the
/// workers (instead of leaving them spinning on an abandoned ring);
/// idempotent with the normal-path [`FanOut::finish`].
struct CloseOnDrop<'r, I>(&'r [Ring<RoutedBatch<I>>]);

impl<I> Drop for CloseOnDrop<'_, I> {
    fn drop(&mut self) {
        for ring in self.0 {
            ring.close();
        }
    }
}

/// Worker-side tallies, flushed to `pipeline.worker{NN}.*` counters.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerTallies {
    batches: u64,
    items: u64,
    empty_stalls: u64,
}

/// One worker's drain loop: pop routed batches, dispatch each item to
/// `apply(shard, item)`, recycle drained batches. Marks its ring dead if
/// `apply` unwinds and flushes this thread's vc path tallies on exit.
fn drain_worker<I>(
    w: usize,
    ring: &Ring<RoutedBatch<I>>,
    free: &Ring<RoutedBatch<I>>,
    mut apply: impl FnMut(usize, &I),
) -> WorkerTallies {
    let _dead_guard = DeadOnUnwind(ring);
    if bigfoot_obs::trace::enabled() {
        bigfoot_obs::trace::set_thread_name(&format!("detect worker {w}"));
    }
    let mut tallies = WorkerTallies::default();
    while let Some(batch) = ring.pop(&mut tallies.empty_stalls) {
        // One span per drained batch on this worker's own trace track —
        // the worker's duty cycle, interleaved with pop_wait idle.
        let _batch_span = bigfoot_obs::trace_span!("pipeline.worker.batch");
        tallies.batches += 1;
        tallies.items += batch.len() as u64;
        for (shard, item) in &batch {
            apply(*shard as usize, item);
        }
        let mut drained = batch;
        drained.clear();
        let _ = free.try_push(drained);
    }
    // FastTrack/vc path tallies are thread-local; drain them before this
    // worker thread dies or they never reach the `vc.*` counters.
    bigfoot_vc::path_stats::flush();
    tallies
}

/// Flushes the fan-out's per-worker and aggregate counters. Runs before
/// any worker panic is resumed, so accounting survives a dead worker.
fn flush_fanout_counters(route: &RouteTallies, workers: &[(usize, WorkerTallies)]) {
    if !bigfoot_obs::enabled() {
        return;
    }
    bigfoot_obs::count_named("pipeline.route.batches", route.batches);
    bigfoot_obs::count_named("pipeline.route.items", route.items);
    bigfoot_obs::count_named("pipeline.route.batches_dropped", route.batches_dropped);
    bigfoot_obs::count_named("pipeline.route.items_dropped", route.items_dropped);
    bigfoot_obs::count_named("pipeline.route.batches_recycled", route.recycled);
    bigfoot_obs::count_named("pipeline.route.stall.ring_full", route.full_stalls);
    for (w, t) in workers {
        bigfoot_obs::count_named(&format!("pipeline.worker{w:02}.batches"), t.batches);
        bigfoot_obs::count_named(&format!("pipeline.worker{w:02}.items"), t.items);
        bigfoot_obs::count_named(
            &format!("pipeline.worker{w:02}.stall.ring_empty"),
            t.empty_stalls,
        );
    }
}

/// What one replay worker hands back at join: its drain tallies and the
/// `(shard, outcome)` pairs for every shard it owned.
type ReplayWorkerDone = (WorkerTallies, Vec<(usize, ShardOutcome)>);

/// What one DJIT+ worker hands back at join: drain tallies, candidate
/// races tagged `(seq, idx)` for the deterministic merge, and the
/// worker's shadow-space sum.
type DjitWorkerDone = (WorkerTallies, Vec<(u64, u32, Race)>, u64);

/// Sharded pipelined detection for the replay detector configurations
/// (FastTrack/RedCard/SlimState/SlimCard/BigFoot): the interpreter runs
/// on the calling thread, the stage-1 annotator routes items on the
/// pipeline's consumer thread, and `config.workers` detection workers
/// (clamped to `1..=SHARDS`) apply them concurrently. Returns the
/// producer's result and [`Stats`] **byte-identical** (via
/// `Stats::to_json`) to the serial [`Detector`](crate::Detector) — and
/// hence to [`crate::replay_pipelined`] — at any worker count.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
/// use bigfoot_detectors::{replay_sharded, PipelineConfig, ReplayConfig};
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let (outcome, stats) = replay_sharded(
///     &PipelineConfig::default(),
///     &ReplayConfig::fasttrack(4),
///     |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
/// );
/// outcome?;
/// assert!(stats.has_races());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_sharded<T>(
    pipeline: &PipelineConfig,
    config: &ReplayConfig,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
) -> (T, Stats) {
    let workers = config.workers.clamp(1, SHARDS);
    let engine = config.engine;
    let rings: Vec<Ring<RoutedBatch<Item>>> = (0..workers)
        .map(|_| Ring::new(pipeline.ring_slots))
        .collect();
    let free: Vec<Ring<RoutedBatch<Item>>> = (0..workers)
        .map(|_| Ring::new(pipeline.ring_slots))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ring = &rings[w];
                let free = &free[w];
                scope.spawn(move || {
                    let mut states: Vec<Option<ShardState>> = (0..SHARDS)
                        .map(|s| (s % workers == w).then(|| ShardState::new(engine)))
                        .collect();
                    let tallies = drain_worker(w, ring, free, |shard, item| {
                        let st = states[shard]
                            .as_mut()
                            .expect("items route only to the owning worker");
                        st.out.items += 1;
                        st.apply(item);
                    });
                    let outcomes: Vec<(usize, ShardOutcome)> = states
                        .into_iter()
                        .enumerate()
                        .filter_map(|(s, st)| st.map(|st| (s, st.out)))
                        .collect();
                    (tallies, outcomes)
                })
            })
            .collect();
        let _close_guard = CloseOnDrop(&rings);

        let fanout = FanOut::new(&rings, &free, pipeline.batch_events);
        let annotator = Annotator::with_sink(config, fanout);
        let (result, mut annotator) = run_pipelined(pipeline, producer, annotator);
        // The stream has ended; the SPSC producer role for the item
        // rings moves from the (already joined) router thread here.
        annotator.finalize();
        let (_engine, mut fanout, probe_fp_space, stats) = annotator.into_parts();
        fanout.finish();
        let route = fanout.tallies_total();
        drop(fanout);

        // Join every worker before resuming any panic, so the surviving
        // workers drain their rings and exit cleanly first.
        let mut first_panic = None;
        let mut finished: Vec<(usize, ReplayWorkerDone)> = Vec::new();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(v) => finished.push((w, v)),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        let worker_tallies: Vec<(usize, WorkerTallies)> =
            finished.iter().map(|(w, (t, _))| (*w, *t)).collect();
        flush_fanout_counters(&route, &worker_tallies);
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }

        let mut outcomes: Vec<Option<ShardOutcome>> = (0..SHARDS).map(|_| None).collect();
        for (_w, (_t, per_shard)) in finished {
            for (s, out) in per_shard {
                outcomes[s] = Some(out);
            }
        }
        let outcomes: Vec<ShardOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every shard has exactly one owner"))
            .collect();
        let _span = bigfoot_obs::span!("replay.merge");
        (result, merge_outcomes(stats, &probe_fp_space, &outcomes))
    })
}

/// One routed DJIT+ check: everything a worker needs to apply the
/// access against its shard's shadow state, including an `Arc` snapshot
/// of the acting thread's clock at access time.
struct DjitCheck {
    seq: u64,
    loc: Loc,
    kind: AccessKind,
    t: Tid,
    clock: Arc<VectorClock>,
}

/// The router for sharded DJIT+: runs [`SyncClocks`] in stream order on
/// the pipeline's consumer thread and routes every access — tagged with
/// a global sequence number — to its owning shard. Clock snapshots are
/// cached between sync operations (clocks only change at syncs), which
/// replaces the serial `DjitDetector`'s full vector-clock clone per
/// access with an `Arc` bump.
struct DjitRouter<'r> {
    clocks: SyncClocks,
    snapshots: Vec<Option<Arc<VectorClock>>>,
    next_seq: u64,
    stats: Stats,
    fanout: FanOut<'r, DjitCheck>,
}

impl<'r> DjitRouter<'r> {
    fn new(fanout: FanOut<'r, DjitCheck>) -> DjitRouter<'r> {
        DjitRouter {
            clocks: SyncClocks::new(),
            snapshots: Vec::new(),
            next_seq: 0,
            stats: Stats::default(),
            fanout,
        }
    }

    fn snapshot(&mut self, t: Tid) -> Arc<VectorClock> {
        if let Some(Some(c)) = self.snapshots.get(t.index()) {
            return c.clone();
        }
        let c = Arc::new(self.clocks.clock(t).clone());
        if self.snapshots.len() <= t.index() {
            self.snapshots.resize(t.index() + 1, None);
        }
        self.snapshots[t.index()] = Some(c.clone());
        c
    }

    fn invalidate(&mut self, t: Tid) {
        if let Some(slot) = self.snapshots.get_mut(t.index()) {
            *slot = None;
        }
    }
}

impl EventSink for DjitRouter<'_> {
    fn event(&mut self, ev: &Event) {
        match ev {
            Event::Access { t, kind, loc } => {
                match kind {
                    AccessKind::Read => self.stats.reads += 1,
                    AccessKind::Write => self.stats.writes += 1,
                }
                self.stats.checks += 1;
                self.stats.shadow_ops += 1;
                let clock = self.snapshot(*t);
                let shard = match loc {
                    Loc::Field(obj, _) => obj_shard(*obj),
                    Loc::Elem(arr, _) => arr_shard(*arr),
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.fanout.route(
                    shard,
                    DjitCheck {
                        seq,
                        loc: *loc,
                        kind: *kind,
                        t: *t,
                        clock,
                    },
                );
            }
            Event::Check { .. } | Event::AllocObj { .. } | Event::AllocArr { .. } => {}
            Event::Acquire { t, lock } => {
                self.clocks.acquire(*t, *lock);
                self.invalidate(*t);
            }
            Event::Release { t, lock } => {
                self.clocks.release(*t, *lock);
                self.invalidate(*t);
            }
            Event::VolatileWrite { t, obj, field } => {
                self.clocks.volatile_write(*t, *obj, *field);
                self.invalidate(*t);
            }
            Event::VolatileRead { t, obj, field } => {
                self.clocks.volatile_read(*t, *obj, *field);
                self.invalidate(*t);
            }
            Event::Fork { parent, child } => {
                self.clocks.fork(*parent, *child);
                self.invalidate(*parent);
                self.invalidate(*child);
            }
            Event::Join { parent, child } => {
                self.clocks.join(*parent, *child);
                self.invalidate(*parent);
            }
            Event::ThreadExit { t } => {
                self.clocks.exit(*t);
                self.invalidate(*t);
            }
        }
    }
}

/// One shard's DJIT+ shadow state: the serial `DjitDetector`'s maps,
/// restricted to the locations that route here.
#[derive(Default)]
struct DjitShard {
    fields: HashMap<(ObjId, u32), DjitState>,
    elems: HashMap<(ArrId, i64), DjitState>,
    races: Vec<(u64, u32, Race)>,
}

impl DjitShard {
    fn apply(&mut self, check: &DjitCheck) {
        let (state, target) = match check.loc {
            Loc::Field(obj, f) => (
                self.fields.entry((obj, f)).or_default(),
                RaceTarget::Field(obj, f),
            ),
            Loc::Elem(arr, i) => (
                self.elems.entry((arr, i)).or_default(),
                RaceTarget::Elems(arr, ConcreteRange::singleton(i)),
            ),
        };
        if let Err(info) = state.apply(check.kind, check.t, &check.clock) {
            self.races.push((check.seq, 0, Race { target, info }));
        }
    }

    fn space_units(&self) -> u64 {
        self.fields
            .values()
            .map(|s| s.space_units() as u64)
            .sum::<u64>()
            + self
                .elems
                .values()
                .map(|s| s.space_units() as u64)
                .sum::<u64>()
    }
}

/// Sharded pipelined DJIT+ — the heavy-consumer configuration. Same
/// topology and determinism contract as [`replay_sharded`] (single
/// router, shard-routed checks, seq-ordered merge), producing [`Stats`]
/// byte-identical to `DjitDetector::finish` over the same stream.
///
/// DJIT+ is the case where fan-out pays: every serial check clones the
/// acting thread's full vector clock and walks two clocks per location,
/// so the detection stage — not the interpreter — is the wall.
pub fn djit_sharded<T>(
    pipeline: &PipelineConfig,
    num_workers: usize,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
) -> (T, Stats) {
    let workers = num_workers.clamp(1, SHARDS);
    let rings: Vec<Ring<RoutedBatch<DjitCheck>>> = (0..workers)
        .map(|_| Ring::new(pipeline.ring_slots))
        .collect();
    let free: Vec<Ring<RoutedBatch<DjitCheck>>> = (0..workers)
        .map(|_| Ring::new(pipeline.ring_slots))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ring = &rings[w];
                let free = &free[w];
                scope.spawn(move || {
                    let mut shards: Vec<DjitShard> =
                        (0..SHARDS).map(|_| DjitShard::default()).collect();
                    let tallies = drain_worker(w, ring, free, |shard, check| {
                        shards[shard].apply(check);
                    });
                    let mut races: Vec<(u64, u32, Race)> = Vec::new();
                    for shard in &mut shards {
                        races.append(&mut shard.races);
                    }
                    let space: u64 = shards.iter().map(DjitShard::space_units).sum();
                    (tallies, races, space)
                })
            })
            .collect();
        let _close_guard = CloseOnDrop(&rings);

        let fanout = FanOut::new(&rings, &free, pipeline.batch_events);
        let router = DjitRouter::new(fanout);
        let (result, mut router) = run_pipelined(pipeline, producer, router);
        router.fanout.finish();
        let route = router.fanout.tallies_total();
        let DjitRouter {
            clocks, mut stats, ..
        } = router;

        let mut first_panic = None;
        let mut finished: Vec<(usize, DjitWorkerDone)> = Vec::new();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(v) => finished.push((w, v)),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        let worker_tallies: Vec<(usize, WorkerTallies)> =
            finished.iter().map(|(w, (t, _, _))| (*w, *t)).collect();
        flush_fanout_counters(&route, &worker_tallies);
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }

        // Merge, reproducing `DjitDetector::finish` exactly: candidates
        // sorted back into access order feed the same inline dedup, the
        // final space sample sums every shard's shadow, then sync ops
        // and publication.
        let mut candidates: Vec<(u64, u32, Race)> = Vec::new();
        let mut space: u64 = 0;
        for (_w, (_t, races, shard_space)) in finished {
            candidates.extend(races);
            space += shard_space;
        }
        candidates.sort_by_key(|(seq, idx, _)| (*seq, *idx));
        for (_, _, race) in candidates {
            stats.report_race(race);
        }
        stats.observe_space(space);
        stats.sync_ops = clocks.sync_ops();
        stats.publish();
        (result, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ProxyTable;
    use crate::{Detector, DjitDetector};
    use bigfoot_bfj::{parse_program, Interp, SchedPolicy};

    const RACY: &str = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";

    const ARRAY_RACY: &str = "
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            check(w: a[0..a.length]);
            return 0; } }
        main {
            w = new W;
            a = new_array(32);
            fork t1 = w.fill(a, 1);
            fork t2 = w.fill(a, 2);
            join(t1); join(t2);
        }";

    const MIXED: &str = "
        class C { field x; field y;
            meth bump(l) { acq(l); this.x = this.x + 1; rel(l); return 0; }
            meth poke(v) { this.y = v; return 0; } }
        class L { }
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            return 0; } }
        main {
            c = new C;
            l = new L;
            w = new W;
            a = new_array(48);
            fork t1 = c.bump(l);
            fork t2 = c.poke(2);
            fork t3 = w.fill(a, 3);
            fork t4 = w.fill(a, 4);
            join(t1); join(t2); join(t3); join(t4);
        }";

    fn assert_identical(a: &Stats, b: &Stats) {
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "sharded stats must be byte-identical to serial"
        );
    }

    fn serial_stats(src: &str, mut det: Detector) -> Stats {
        let p = parse_program(src).expect("parse");
        Interp::new(&p, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        det.finish()
    }

    #[test]
    fn sharded_replay_matches_serial_at_any_worker_count() {
        for (src, make, config) in [
            (
                RACY,
                Detector::fasttrack as fn() -> Detector,
                ReplayConfig::fasttrack(0),
            ),
            (RACY, Detector::slimstate, ReplayConfig::slimstate(0)),
            (ARRAY_RACY, Detector::fasttrack, ReplayConfig::fasttrack(0)),
            (MIXED, Detector::slimstate, ReplayConfig::slimstate(0)),
        ] {
            let serial = serial_stats(src, make());
            let p = parse_program(src).expect("parse");
            for workers in [1, 2, 3, 4, 64] {
                let config = ReplayConfig {
                    workers,
                    ..config.clone()
                };
                let (outcome, stats) = replay_sharded(
                    &PipelineConfig {
                        batch_events: 7,
                        ring_slots: 2,
                    },
                    &config,
                    |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                );
                outcome.expect("run");
                assert_identical(&stats, &serial);
            }
        }
    }

    #[test]
    fn sharded_bigfoot_matches_serial() {
        let serial = serial_stats(ARRAY_RACY, Detector::bigfoot(ProxyTable::identity()));
        let p = parse_program(ARRAY_RACY).expect("parse");
        for workers in [1, 2, 4] {
            let (outcome, stats) = replay_sharded(
                &PipelineConfig::default(),
                &ReplayConfig::bigfoot(ProxyTable::identity(), workers),
                |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            );
            outcome.expect("run");
            assert_identical(&stats, &serial);
        }
    }

    #[test]
    fn sharded_djit_matches_serial_at_any_worker_count() {
        for src in [RACY, ARRAY_RACY, MIXED] {
            let p = parse_program(src).expect("parse");
            let mut serial = DjitDetector::new();
            Interp::new(&p, SchedPolicy::default())
                .run(&mut serial)
                .expect("run");
            let serial = serial.finish();
            for workers in [1, 2, 3, 4, 64] {
                let (outcome, stats) = djit_sharded(
                    &PipelineConfig {
                        batch_events: 3,
                        ring_slots: 2,
                    },
                    workers,
                    |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                );
                outcome.expect("run");
                assert_identical(&stats, &serial);
            }
        }
    }

    #[test]
    fn adversarial_configs_one_event_batches_two_slot_rings() {
        // 1-event batches × 2-slot rings maximize handoffs and
        // backpressure on every ring at once; worker counts 1 (all
        // shards on one worker), 3 (uneven 64/3 split), 4, and 64 (one
        // worker per shard residue class, the maximum) must all agree.
        let serial = serial_stats(MIXED, Detector::fasttrack());
        let p = parse_program(MIXED).expect("parse");
        for workers in [1, 3, 4, 64] {
            let (outcome, stats) = replay_sharded(
                &PipelineConfig {
                    batch_events: 1,
                    ring_slots: 2,
                },
                &ReplayConfig::fasttrack(workers),
                |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            );
            outcome.expect("run");
            assert_identical(&stats, &serial);
        }
    }

    #[test]
    fn worker_panic_propagates_while_others_drain() {
        // Fan-out close/dead stress, mirroring
        // `close_race_never_drops_the_final_batch`: one worker dies on
        // its first item while the others keep draining. The panic must
        // surface (after every surviving worker has been joined), never
        // hang, and the router must keep routing into the dead ring
        // without blocking.
        let p = parse_program(MIXED).expect("parse");
        for round in 0..50 {
            let workers = 2 + (round % 3);
            let rings: Vec<Ring<RoutedBatch<Item>>> = (0..workers).map(|_| Ring::new(2)).collect();
            let free: Vec<Ring<RoutedBatch<Item>>> = (0..workers).map(|_| Ring::new(2)).collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let ring = &rings[w];
                            let free = &free[w];
                            scope.spawn(move || {
                                drain_worker(w, ring, free, |_shard, _item: &Item| {
                                    if w == 0 {
                                        panic!("worker 0 exploded");
                                    }
                                });
                            })
                        })
                        .collect();
                    let _close_guard = CloseOnDrop(&rings);
                    let fanout = FanOut::new(&rings, &free, 1);
                    let mut annotator =
                        Annotator::with_sink(&ReplayConfig::fasttrack(workers), fanout);
                    Interp::new(&p, SchedPolicy::default())
                        .run(&mut annotator)
                        .expect("run");
                    annotator.finalize();
                    let (_e, mut fanout, _probe, _stats) = annotator.into_parts();
                    fanout.finish();
                    // Join every worker first (the survivors must drain
                    // and exit), then resurface the first panic — the
                    // production join protocol.
                    let mut first_panic = None;
                    for handle in handles {
                        if let Err(payload) = handle.join() {
                            first_panic.get_or_insert(payload);
                        }
                    }
                    if let Some(payload) = first_panic {
                        std::panic::resume_unwind(payload);
                    }
                })
            }));
            // The scope propagates the worker's panic only after joining
            // every thread; reaching here at all means the surviving
            // workers drained and exited.
            let payload = result.expect_err("worker panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "worker 0 exploded", "round {round}");
        }
    }

    #[test]
    fn router_tallies_drops_when_a_worker_dies() {
        // Deterministic core of the fan-out accounting: a dead worker
        // ring refuses batches and the router must tally them as drops,
        // not handoffs.
        let rings: Vec<Ring<RoutedBatch<Item>>> = (0..2).map(|_| Ring::new(2)).collect();
        let free: Vec<Ring<RoutedBatch<Item>>> = (0..2).map(|_| Ring::new(2)).collect();
        rings[0].mark_dead();
        let mut fanout = FanOut::new(&rings, &free, 1);
        for shard in 0..4usize {
            fanout.route(shard, Item::SpaceProbe);
        }
        fanout.finish();
        let t = fanout.tallies_total();
        assert_eq!(t.items, 2, "only the live worker's items count");
        assert_eq!(t.items_dropped, 2, "the dead worker's items are drops");
        assert_eq!(t.batches_dropped, 2);
    }
}
