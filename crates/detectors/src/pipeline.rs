//! Pipelined online detection: the interpreter produces the event stream
//! on one thread while the detector consumes it on another, with events
//! handed over in fixed-size **batches** through a bounded single-producer
//! / single-consumer ring.
//!
//! The serial path runs interpreter → detector in lockstep: every event
//! crosses the [`EventSink`] boundary one at a time, and neither side can
//! make progress while the other works. This module overlaps the two.
//! The producer appends events to a private batch (a plain `Vec<Event>`)
//! and only touches shared state once per batch commit, so the
//! per-event synchronization cost is amortized to (batch size)⁻¹ — a few
//! thousandths of an atomic operation per event at the default batch
//! size. Drained batches are recycled to the producer through a second
//! ring, so the steady state allocates nothing on either side.
//!
//! Determinism is free: the consumer observes the exact total order the
//! producer emitted, so a pipelined run is **byte-identical** to the
//! serial detector over the same stream — the differential suite and the
//! fuzz pipeline oracle pin this.
//!
//! Ring discipline (a Lamport queue):
//!
//! * `tail` is written only by the producer, `head` only by the consumer;
//!   both are cache-line-padded so the two sides never false-share.
//! * The producer may write slot `i` iff `i - head < capacity` (ring not
//!   full); it publishes with a `Release` store of `tail + 1`.
//! * The consumer may read slot `i` iff `i < tail` (ring not empty); it
//!   publishes with a `Release` store of `head + 1`.
//! * A side that cannot progress spins briefly, then yields; stalls are
//!   tallied and flushed to `pipeline.*` obs counters at the end of the
//!   run (backpressure on a full ring is the producer's stall; an empty
//!   ring is the consumer's).

use crate::detector::Detector;
use crate::stats::Stats;
use bigfoot_bfj::{Event, EventSink};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default events per batch.
///
/// Large enough that the per-batch atomics and the consumer's cache-cold
/// pickup are noise; small enough that a batch of [`Event`]s (~48 bytes
/// each) stays within a few L2-sized strides and the consumer starts
/// working long before the producer finishes.
pub const DEFAULT_BATCH_EVENTS: usize = 4096;

/// Default number of ring slots (must be a power of two).
pub const DEFAULT_RING_SLOTS: usize = 8;

/// Tuning knobs for [`run_pipelined`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Events per committed batch (≥ 1).
    pub batch_events: usize,
    /// Ring capacity in batches; rounded up to a power of two, minimum 2.
    pub ring_slots: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            batch_events: DEFAULT_BATCH_EVENTS,
            ring_slots: DEFAULT_RING_SLOTS,
        }
    }
}

/// An `AtomicUsize` alone on its cache line, so the producer's `tail`
/// writes never invalidate the line the consumer polls `head` on (and
/// vice versa).
#[repr(align(64))]
struct PaddedAtomicUsize(AtomicUsize);

struct Slot(UnsafeCell<Option<Vec<Event>>>);

/// Bounded SPSC ring of event batches.
struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: PaddedAtomicUsize,
    /// Next slot the producer will write. Written only by the producer.
    tail: PaddedAtomicUsize,
    /// Set by the producer after its final commit; a consumer seeing
    /// `closed` *and* an empty ring is done.
    closed: AtomicBool,
    /// Set when the consumer unwinds; a producer seeing `dead` stops
    /// pushing (nobody will ever drain the ring again).
    dead: AtomicBool,
}

// SAFETY: slot `i` is accessed exclusively by the producer while
// `head <= i < head + capacity` and `i >= tail` (it has not been
// published), and exclusively by the consumer while `head <= i < tail`
// (published, not yet consumed). The Release store publishing an index
// happens-before the Acquire load that lets the other side cross it, so
// the two sides never hold a reference to the same slot concurrently.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(slots: usize) -> Ring {
        let cap = slots.max(2).next_power_of_two();
        Ring {
            slots: (0..cap).map(|_| Slot(UnsafeCell::new(None))).collect(),
            mask: cap - 1,
            head: PaddedAtomicUsize(AtomicUsize::new(0)),
            tail: PaddedAtomicUsize(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: non-blocking. Returns the batch back on a full ring.
    fn try_push(&self, batch: Vec<Event>) -> Result<(), Vec<Event>> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail - head == self.capacity() {
            return Err(batch);
        }
        // SAFETY: `tail - head < capacity`, so this slot is unpublished
        // and owned by the producer (see the `Sync` impl).
        unsafe {
            *self.slots[tail & self.mask].0.get() = Some(batch);
        }
        self.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Producer side: blocking with backpressure. `stalls` counts the
    /// episodes (not the spins) where a full ring made the producer wait.
    /// If the consumer has died, the batch is dropped instead of waiting
    /// on a ring nobody will drain; the consumer's panic surfaces at
    /// `join()`.
    fn push(&self, mut batch: Vec<Event>, stalls: &mut u64) {
        // Flight-recorder span bracketing one backpressure episode on
        // the producer's timeline; `traced` remembers the begin so the
        // pair survives tracing being toggled mid-wait.
        static PUSH_WAIT: bigfoot_obs::trace::LazyTraceName =
            bigfoot_obs::trace::LazyTraceName::new("pipeline.push_wait");
        let mut waited = false;
        let mut traced = false;
        let mut spins = 0u32;
        loop {
            if self.dead.load(Ordering::Acquire) {
                if traced {
                    bigfoot_obs::trace::end(&PUSH_WAIT);
                }
                return;
            }
            match self.try_push(batch) {
                Ok(()) => {
                    if traced {
                        bigfoot_obs::trace::end(&PUSH_WAIT);
                    }
                    return;
                }
                Err(b) => batch = b,
            }
            if !waited {
                waited = true;
                *stalls += 1;
                if bigfoot_obs::trace::enabled() {
                    traced = true;
                    bigfoot_obs::trace::begin(&PUSH_WAIT);
                }
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Consumer side: non-blocking.
    fn try_pop(&self) -> Option<Vec<Event>> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so this slot is published and owned by
        // the consumer (see the `Sync` impl).
        let batch = unsafe { (*self.slots[head & self.mask].0.get()).take() };
        self.head.0.store(head + 1, Ordering::Release);
        Some(batch.expect("published slot holds a batch"))
    }

    /// Consumer side: blocking. `None` means the producer closed the ring
    /// and everything has been drained. `stalls` counts empty-ring waits.
    fn pop(&self, stalls: &mut u64) -> Option<Vec<Event>> {
        // Mirror of `push`'s wait span, on the consumer's timeline.
        static POP_WAIT: bigfoot_obs::trace::LazyTraceName =
            bigfoot_obs::trace::LazyTraceName::new("pipeline.pop_wait");
        let mut waited = false;
        let mut traced = false;
        let mut spins = 0u32;
        let end_wait = |traced: bool| {
            if traced {
                bigfoot_obs::trace::end(&POP_WAIT);
            }
        };
        loop {
            if let Some(batch) = self.try_pop() {
                end_wait(traced);
                return Some(batch);
            }
            // Check `closed` only after a failed pop: the producer closes
            // *after* its final push, so once `closed` is observed one
            // more pop decides — a batch pushed between the failed pop
            // above and the `closed` load must still be returned, and an
            // empty ring is truly done.
            if self.closed.load(Ordering::Acquire) {
                end_wait(traced);
                return self.try_pop();
            }
            if !waited {
                waited = true;
                *stalls += 1;
                if bigfoot_obs::trace::enabled() {
                    traced = true;
                    bigfoot_obs::trace::begin(&POP_WAIT);
                }
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Batches currently in flight (approximate; for depth telemetry).
    fn depth(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(self.head.0.load(Ordering::Relaxed))
    }
}

/// Producer-side counters, aggregated locally and flushed once.
#[derive(Debug, Default, Clone, Copy)]
struct ProducerTallies {
    batches: u64,
    events: u64,
    full_stalls: u64,
    depth_max: u64,
    recycled: u64,
}

/// The producer's [`EventSink`]: buffers events into a private batch and
/// commits full batches to the ring. Obtain one inside [`run_pipelined`]'s
/// producer closure; the driver flushes the final partial batch and closes
/// the ring when the closure returns.
pub struct BatchSink<'r> {
    ring: &'r Ring,
    free: &'r Ring,
    batch: Vec<Event>,
    batch_events: usize,
    tallies: ProducerTallies,
    closed: bool,
}

impl<'r> BatchSink<'r> {
    fn new(ring: &'r Ring, free: &'r Ring, batch_events: usize) -> BatchSink<'r> {
        BatchSink {
            ring,
            free,
            batch: Vec::with_capacity(batch_events),
            batch_events: batch_events.max(1),
            tallies: ProducerTallies::default(),
            closed: false,
        }
    }

    fn commit(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        // Grab a recycled batch first so the swap below hands the ring the
        // full one; fall back to a fresh allocation when the consumer has
        // not returned one yet (start-up, or the consumer is behind).
        let next = match self.free.try_pop() {
            Some(recycled) => {
                self.tallies.recycled += 1;
                recycled
            }
            None => Vec::with_capacity(self.batch_events),
        };
        let full = std::mem::replace(&mut self.batch, next);
        self.tallies.batches += 1;
        let occupancy = full.len() as u64;
        self.tallies.events += occupancy;
        self.ring.push(full, &mut self.tallies.full_stalls);
        let depth = self.ring.depth() as u64;
        self.tallies.depth_max = self.tallies.depth_max.max(depth);
        // Batch lifecycle on the producer's timeline: one instant per
        // handoff plus sampled counter tracks (ring depth right after
        // the push, and how full the committed batch was).
        bigfoot_obs::trace_instant!("pipeline.batch_commit");
        bigfoot_obs::trace_counter!("pipeline.ring_depth", depth);
        bigfoot_obs::trace_counter!("pipeline.batch_occupancy", occupancy);
    }

    /// Flushes the partial batch and closes the ring.
    fn finish(&mut self) {
        if !self.closed {
            self.commit();
            self.ring.close();
            self.closed = true;
        }
    }
}

impl Drop for BatchSink<'_> {
    /// Closing on drop keeps the consumer from spinning forever if the
    /// producer closure unwinds; the partial batch is still flushed, so a
    /// panicking producer's events-so-far are all observed.
    fn drop(&mut self) {
        self.finish();
    }
}

impl EventSink for BatchSink<'_> {
    #[inline]
    fn event(&mut self, ev: &Event) {
        self.batch.push(ev.clone());
        if self.batch.len() >= self.batch_events {
            self.commit();
        }
    }
}

/// Runs `producer` on the calling thread and `sink` on a second thread,
/// connected by the batch ring. Returns the producer's result and the
/// sink, which has consumed the entire event stream in order by the time
/// this returns.
///
/// The sink sees exactly the sequence of [`EventSink::event`] calls the
/// producer made, so any consumer that is deterministic over its input
/// stream (the serial [`Detector`], the replay annotator, …) produces
/// output identical to a lockstep run.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
/// use bigfoot_detectors::{run_pipelined, Detector, PipelineConfig};
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let (outcome, det) = run_pipelined(
///     &PipelineConfig::default(),
///     |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
///     Detector::fasttrack(),
/// );
/// outcome?;
/// assert!(det.finish().has_races());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipelined<S, T>(
    config: &PipelineConfig,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
    mut sink: S,
) -> (T, S)
where
    S: EventSink + Send,
{
    let ring = Ring::new(config.ring_slots);
    let free = Ring::new(config.ring_slots);
    let (result, sink, tallies, empty_stalls) = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            // Marks the ring dead if this thread unwinds, so the producer
            // bails out of its push loop instead of spinning forever and
            // the panic surfaces at `join()` below. Harmless on the
            // normal-return path: the producer has already closed the
            // ring by the time the drain loop exits.
            struct DeadOnUnwind<'r>(&'r Ring);
            impl Drop for DeadOnUnwind<'_> {
                fn drop(&mut self) {
                    self.0.dead.store(true, Ordering::Release);
                }
            }
            let _guard = DeadOnUnwind(&ring);
            if bigfoot_obs::trace::enabled() {
                bigfoot_obs::trace::set_thread_name("detector (consumer)");
            }
            let mut empty_stalls = 0u64;
            while let Some(batch) = ring.pop(&mut empty_stalls) {
                // One span per drained batch: in Perfetto this is the
                // consumer's duty cycle, interleaved with pop_wait idle.
                let _batch_span = bigfoot_obs::trace_span!("pipeline.batch");
                for ev in &batch {
                    sink.event(ev);
                }
                let mut drained = batch;
                drained.clear();
                // Hand the emptied batch back; if the free ring is full
                // (the producer is far ahead) just let it drop.
                let _ = free.try_push(drained);
            }
            // The vc fast/slow-path tallies are thread-local and were
            // accrued on *this* thread; the detector's finalization runs
            // on the caller's thread, so drain them here or they die with
            // the thread and `vc.*` counters read zero under `--pipeline`.
            bigfoot_vc::path_stats::flush();
            (sink, empty_stalls)
        });
        if bigfoot_obs::trace::enabled() {
            bigfoot_obs::trace::set_thread_name("interpreter (producer)");
        }
        let mut batches = BatchSink::new(&ring, &free, config.batch_events);
        let result = producer(&mut batches);
        batches.finish();
        let tallies = batches.tallies;
        drop(batches);
        let (sink, empty_stalls) = match consumer.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (result, sink, tallies, empty_stalls)
    });
    if bigfoot_obs::enabled() {
        bigfoot_obs::count_named("pipeline.batches", tallies.batches);
        bigfoot_obs::count_named("pipeline.events", tallies.events);
        bigfoot_obs::count_named("pipeline.batches_recycled", tallies.recycled);
        bigfoot_obs::count_named("pipeline.stall.ring_full", tallies.full_stalls);
        bigfoot_obs::count_named("pipeline.stall.ring_empty", empty_stalls);
        // A high-water mark: flushed as a max-gauge so back-to-back runs
        // report the max, where the old counter summed them.
        bigfoot_obs::gauge_max_named("pipeline.depth_max", tallies.depth_max);
    }
    (result, sink)
}

/// Convenience wrapper: pipelined online detection with the serial
/// [`Detector`] as the consumer. Returns the producer's result and the
/// finalized [`Stats`] — byte-identical (via `Stats::to_json`) to running
/// the same detector in lockstep.
pub fn detect_pipelined<T>(
    config: &PipelineConfig,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
    det: Detector,
) -> (T, Stats) {
    let (result, det) = run_pipelined(config, producer, det);
    (result, det.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ProxyTable;
    use bigfoot_bfj::{parse_program, Interp, RecordingSink, SchedPolicy};

    const RACY: &str = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";

    const ARRAY_RACY: &str = "
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            check(w: a[0..a.length]);
            return 0; } }
        main {
            w = new W;
            a = new_array(32);
            fork t1 = w.fill(a, 1);
            fork t2 = w.fill(a, 2);
            join(t1); join(t2);
        }";

    fn serial_stats(src: &str, mut det: Detector) -> Stats {
        let p = parse_program(src).expect("parse");
        Interp::new(&p, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        det.finish()
    }

    fn pipelined_stats(src: &str, det: Detector, config: &PipelineConfig) -> Stats {
        let p = parse_program(src).expect("parse");
        let (outcome, stats) = detect_pipelined(
            config,
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            det,
        );
        outcome.expect("run");
        stats
    }

    fn assert_identical(a: &Stats, b: &Stats) {
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "pipelined stats must be byte-identical to serial"
        );
    }

    #[test]
    fn pipelined_matches_serial_across_batch_sizes() {
        // Batch sizes of 1 (every event is a handoff), a non-divisor of
        // the stream length, and larger-than-stream all agree with serial.
        for batch_events in [1, 3, 64, 1 << 20] {
            let config = PipelineConfig {
                batch_events,
                ring_slots: 4,
            };
            for (src, make) in [
                (RACY, Detector::fasttrack as fn() -> Detector),
                (RACY, Detector::slimstate),
            ] {
                let serial = serial_stats(src, make());
                let pipelined = pipelined_stats(src, make(), &config);
                assert_identical(&pipelined, &serial);
            }
            let serial = serial_stats(ARRAY_RACY, Detector::bigfoot(ProxyTable::identity()));
            let pipelined = pipelined_stats(
                ARRAY_RACY,
                Detector::bigfoot(ProxyTable::identity()),
                &config,
            );
            assert_identical(&pipelined, &serial);
        }
    }

    #[test]
    fn tiny_ring_exercises_backpressure() {
        // Two slots and one-event batches force the producer to wait on
        // the consumer constantly; the verdict must not change.
        let config = PipelineConfig {
            batch_events: 1,
            ring_slots: 2,
        };
        let serial = serial_stats(ARRAY_RACY, Detector::fasttrack());
        let pipelined = pipelined_stats(ARRAY_RACY, Detector::fasttrack(), &config);
        assert_identical(&pipelined, &serial);
    }

    #[test]
    fn consumer_sees_the_exact_event_sequence() {
        let p = parse_program(ARRAY_RACY).expect("parse");
        let mut lockstep = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut lockstep)
            .expect("run");
        let (outcome, piped) = run_pipelined(
            &PipelineConfig {
                batch_events: 7,
                ring_slots: 2,
            },
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            RecordingSink::default(),
        );
        outcome.expect("run");
        assert_eq!(piped.events, lockstep.events);
    }

    #[test]
    fn close_race_never_drops_the_final_batch() {
        // Regression: `Ring::pop`'s close check used to call `try_pop` a
        // second time inside the condition, silently dropping a batch
        // pushed between the first failed pop and the `closed` load. Race
        // the producer's final push+close against the consumer's empty
        // poll many times; every pushed event must come out.
        let p = parse_program(RACY).expect("parse");
        let mut events = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut events)
            .expect("run");
        let ev = &events.events[0];
        for round in 0..200 {
            let ring = Ring::new(2);
            let batches = 3 + (round % 4);
            let consumed = std::thread::scope(|scope| {
                let consumer = scope.spawn(|| {
                    let mut stalls = 0u64;
                    let mut total = 0usize;
                    while let Some(batch) = ring.pop(&mut stalls) {
                        total += batch.len();
                    }
                    total
                });
                let mut stalls = 0u64;
                for _ in 0..batches {
                    ring.push(vec![ev.clone(); 5], &mut stalls);
                    std::hint::spin_loop();
                }
                ring.close();
                consumer.join().expect("consumer")
            });
            assert_eq!(consumed, batches * 5, "round {round} lost events");
        }
    }

    #[test]
    fn consumer_panic_propagates_instead_of_hanging() {
        // A panicking consumer must surface its panic through
        // `run_pipelined` rather than leaving the producer spinning on a
        // ring nobody drains.
        #[derive(Debug)]
        struct PanickySink;
        impl EventSink for PanickySink {
            fn event(&mut self, _ev: &Event) {
                panic!("sink exploded");
            }
        }
        let p = parse_program(ARRAY_RACY).expect("parse");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pipelined(
                &PipelineConfig {
                    batch_events: 1,
                    ring_slots: 2,
                },
                |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                PanickySink,
            )
        }));
        let payload = result.expect_err("consumer panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "sink exploded");
    }

    #[test]
    fn consumer_thread_flushes_vc_path_tallies() {
        // The vc fast/slow-path tallies accrue in the consumer thread's
        // TLS; `run_pipelined` must drain them before that thread exits
        // or `vc.*` (including `vc.clock.spills`) reads zero under
        // `--pipeline`. Delta-based so parallel obs-enabled tests only
        // help, never hurt.
        let _g = bigfoot_obs::EnabledGuard::new();
        let before = bigfoot_obs::snapshot().counter_total("vc.");
        let p = parse_program(RACY).expect("parse");
        let (outcome, _det) = run_pipelined(
            &PipelineConfig::default(),
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            Detector::fasttrack(),
        );
        outcome.expect("run");
        let after = bigfoot_obs::snapshot().counter_total("vc.");
        assert!(
            after > before,
            "consumer-thread vc path tallies must be flushed (before={before}, after={after})"
        );
    }

    #[test]
    fn producer_error_still_drains_events_emitted_so_far() {
        // An interpreter error surfaces as the producer result while the
        // consumer still observes every event emitted before the failure.
        let p = parse_program("main { a = new_array(4); a[9] = 1; }").expect("parse");
        let (outcome, rec) = run_pipelined(
            &PipelineConfig::default(),
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            RecordingSink::default(),
        );
        assert!(outcome.is_err(), "out-of-bounds write must error");
        assert!(!rec.events.is_empty(), "the alloc event precedes the error");
    }
}
