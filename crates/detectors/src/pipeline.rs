//! Pipelined online detection: the interpreter produces the event stream
//! on one thread while the detector consumes it on another, with events
//! handed over in fixed-size **batches** through a bounded single-producer
//! / single-consumer ring.
//!
//! The serial path runs interpreter → detector in lockstep: every event
//! crosses the [`EventSink`] boundary one at a time, and neither side can
//! make progress while the other works. This module overlaps the two.
//! The producer appends events to a private batch (a plain `Vec<Event>`)
//! and only touches shared state once per batch commit, so the
//! per-event synchronization cost is amortized to (batch size)⁻¹ — a few
//! thousandths of an atomic operation per event at the default batch
//! size. Drained batches are recycled to the producer through a second
//! ring, so the steady state allocates nothing on either side.
//!
//! Determinism is free: the consumer observes the exact total order the
//! producer emitted, so a pipelined run is **byte-identical** to the
//! serial detector over the same stream — the differential suite and the
//! fuzz pipeline oracle pin this.
//!
//! The ring itself lives in [`crate::channel`] (a Lamport SPSC queue of
//! batches, generalized in PR 7 so the sharded fan-out in
//! [`crate::sharded`] reuses it); this module owns the event-batching
//! producer side ([`BatchSink`]), the single-consumer driver
//! ([`run_pipelined`]), and the `pipeline.*` accounting. A side that
//! cannot progress spins briefly, then yields; stalls are tallied and
//! flushed to `pipeline.*` obs counters at the end of the run
//! (backpressure on a full ring is the producer's stall; an empty ring
//! is the consumer's). Batches dropped on a dead ring — the consumer
//! unwound mid-stream — are tallied separately as
//! `pipeline.batches_dropped` / `pipeline.events_dropped`, so
//! `pipeline.events` counts exactly the events handed to the consumer.

use crate::channel::{DeadOnUnwind, Ring};
use crate::detector::Detector;
use crate::stats::Stats;
use bigfoot_bfj::{Event, EventSink};

/// Default events per batch.
///
/// Large enough that the per-batch atomics and the consumer's cache-cold
/// pickup are noise; small enough that a batch of [`Event`]s (~48 bytes
/// each) stays within a few L2-sized strides and the consumer starts
/// working long before the producer finishes.
pub const DEFAULT_BATCH_EVENTS: usize = 4096;

/// Default number of ring slots (must be a power of two).
pub const DEFAULT_RING_SLOTS: usize = 8;

/// Tuning knobs for [`run_pipelined`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Events per committed batch (≥ 1).
    pub batch_events: usize,
    /// Ring capacity in batches; rounded up to a power of two, minimum 2.
    pub ring_slots: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            batch_events: DEFAULT_BATCH_EVENTS,
            ring_slots: DEFAULT_RING_SLOTS,
        }
    }
}

/// Producer-side counters, aggregated locally and flushed once.
/// `batches`/`events` count accepted handoffs only; commits that a dead
/// ring refused land in `batches_dropped`/`events_dropped` instead.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ProducerTallies {
    pub(crate) batches: u64,
    pub(crate) events: u64,
    pub(crate) batches_dropped: u64,
    pub(crate) events_dropped: u64,
    pub(crate) full_stalls: u64,
    pub(crate) depth_max: u64,
    pub(crate) recycled: u64,
}

/// The producer's [`EventSink`]: buffers events into a private batch and
/// commits full batches to the ring. Obtain one inside [`run_pipelined`]'s
/// producer closure; the driver flushes the final partial batch and closes
/// the ring when the closure returns.
pub struct BatchSink<'r> {
    ring: &'r Ring<Vec<Event>>,
    free: &'r Ring<Vec<Event>>,
    batch: Vec<Event>,
    batch_events: usize,
    tallies: ProducerTallies,
    closed: bool,
}

impl<'r> BatchSink<'r> {
    pub(crate) fn new(
        ring: &'r Ring<Vec<Event>>,
        free: &'r Ring<Vec<Event>>,
        batch_events: usize,
    ) -> BatchSink<'r> {
        BatchSink {
            ring,
            free,
            batch: Vec::with_capacity(batch_events),
            batch_events: batch_events.max(1),
            tallies: ProducerTallies::default(),
            closed: false,
        }
    }

    fn commit(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        // Grab a recycled batch first so the swap below hands the ring the
        // full one; fall back to a fresh allocation when the consumer has
        // not returned one yet (start-up, or the consumer is behind).
        let next = match self.free.try_pop() {
            Some(recycled) => {
                self.tallies.recycled += 1;
                recycled
            }
            None => Vec::with_capacity(self.batch_events),
        };
        let full = std::mem::replace(&mut self.batch, next);
        let occupancy = full.len() as u64;
        // Tally *after* the push: a dead ring (the consumer unwound)
        // silently refuses the batch, and counting it as handed off
        // would make `pipeline.events` over-report exactly the events
        // that were never consumed. Accepted handoffs and drops are
        // tracked separately.
        if self.ring.push(full, &mut self.tallies.full_stalls) {
            self.tallies.batches += 1;
            self.tallies.events += occupancy;
        } else {
            self.tallies.batches_dropped += 1;
            self.tallies.events_dropped += occupancy;
            return;
        }
        let depth = self.ring.depth() as u64;
        self.tallies.depth_max = self.tallies.depth_max.max(depth);
        // Batch lifecycle on the producer's timeline: one instant per
        // handoff plus sampled counter tracks (ring depth right after
        // the push, and how full the committed batch was).
        bigfoot_obs::trace_instant!("pipeline.batch_commit");
        bigfoot_obs::trace_counter!("pipeline.ring_depth", depth);
        bigfoot_obs::trace_counter!("pipeline.batch_occupancy", occupancy);
    }

    /// Flushes the partial batch and closes the ring.
    fn finish(&mut self) {
        if !self.closed {
            self.commit();
            self.ring.close();
            self.closed = true;
        }
    }
}

impl Drop for BatchSink<'_> {
    /// Closing on drop keeps the consumer from spinning forever if the
    /// producer closure unwinds; the partial batch is still flushed, so a
    /// panicking producer's events-so-far are all observed.
    fn drop(&mut self) {
        self.finish();
    }
}

impl EventSink for BatchSink<'_> {
    #[inline]
    fn event(&mut self, ev: &Event) {
        self.batch.push(ev.clone());
        if self.batch.len() >= self.batch_events {
            self.commit();
        }
    }
}

/// Runs `producer` on the calling thread and `sink` on a second thread,
/// connected by the batch ring. Returns the producer's result and the
/// sink, which has consumed the entire event stream in order by the time
/// this returns.
///
/// The sink sees exactly the sequence of [`EventSink::event`] calls the
/// producer made, so any consumer that is deterministic over its input
/// stream (the serial [`Detector`], the replay annotator, …) produces
/// output identical to a lockstep run.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
/// use bigfoot_detectors::{run_pipelined, Detector, PipelineConfig};
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let (outcome, det) = run_pipelined(
///     &PipelineConfig::default(),
///     |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
///     Detector::fasttrack(),
/// );
/// outcome?;
/// assert!(det.finish().has_races());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipelined<S, T>(
    config: &PipelineConfig,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
    mut sink: S,
) -> (T, S)
where
    S: EventSink + Send,
{
    let ring: Ring<Vec<Event>> = Ring::new(config.ring_slots);
    let free: Ring<Vec<Event>> = Ring::new(config.ring_slots);
    let (result, joined, tallies) = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            // Marks the ring dead if this thread unwinds, so the producer
            // bails out of its push loop instead of spinning forever and
            // the panic surfaces at `join()` below.
            let _guard = DeadOnUnwind(&ring);
            if bigfoot_obs::trace::enabled() {
                bigfoot_obs::trace::set_thread_name("detector (consumer)");
            }
            let mut empty_stalls = 0u64;
            while let Some(batch) = ring.pop(&mut empty_stalls) {
                // One span per drained batch: in Perfetto this is the
                // consumer's duty cycle, interleaved with pop_wait idle.
                let _batch_span = bigfoot_obs::trace_span!("pipeline.batch");
                for ev in &batch {
                    sink.event(ev);
                }
                let mut drained = batch;
                drained.clear();
                // Hand the emptied batch back; if the free ring is full
                // (the producer is far ahead) just let it drop.
                let _ = free.try_push(drained);
            }
            // The vc fast/slow-path tallies are thread-local and were
            // accrued on *this* thread; the detector's finalization runs
            // on the caller's thread, so drain them here or they die with
            // the thread and `vc.*` counters read zero under `--pipeline`.
            bigfoot_vc::path_stats::flush();
            (sink, empty_stalls)
        });
        if bigfoot_obs::trace::enabled() {
            bigfoot_obs::trace::set_thread_name("interpreter (producer)");
        }
        let mut batches = BatchSink::new(&ring, &free, config.batch_events);
        let result = producer(&mut batches);
        batches.finish();
        let tallies = batches.tallies;
        drop(batches);
        (result, consumer.join(), tallies)
    });
    // Flush the producer-side tallies *before* propagating a consumer
    // panic: the accepted/dropped split is exactly what a post-mortem
    // needs, and resuming the unwind first would lose it.
    flush_producer_tallies(&tallies);
    match joined {
        Ok((sink, empty_stalls)) => {
            if bigfoot_obs::enabled() {
                bigfoot_obs::count_named("pipeline.stall.ring_empty", empty_stalls);
            }
            (result, sink)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Flushes [`ProducerTallies`] to the `pipeline.*` registry names. Also
/// called by the sharded fan-out driver, whose event ring reuses
/// [`BatchSink`] on the producer side.
pub(crate) fn flush_producer_tallies(tallies: &ProducerTallies) {
    if !bigfoot_obs::enabled() {
        return;
    }
    bigfoot_obs::count_named("pipeline.batches", tallies.batches);
    bigfoot_obs::count_named("pipeline.events", tallies.events);
    bigfoot_obs::count_named("pipeline.batches_dropped", tallies.batches_dropped);
    bigfoot_obs::count_named("pipeline.events_dropped", tallies.events_dropped);
    bigfoot_obs::count_named("pipeline.batches_recycled", tallies.recycled);
    bigfoot_obs::count_named("pipeline.stall.ring_full", tallies.full_stalls);
    // A high-water mark: flushed as a max-gauge so back-to-back runs
    // report the max, where the old counter summed them.
    bigfoot_obs::gauge_max_named("pipeline.depth_max", tallies.depth_max);
}

/// Convenience wrapper: pipelined online detection with the serial
/// [`Detector`] as the consumer. Returns the producer's result and the
/// finalized [`Stats`] — byte-identical (via `Stats::to_json`) to running
/// the same detector in lockstep.
pub fn detect_pipelined<T>(
    config: &PipelineConfig,
    producer: impl FnOnce(&mut BatchSink<'_>) -> T,
    det: Detector,
) -> (T, Stats) {
    let (result, det) = run_pipelined(config, producer, det);
    (result, det.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ProxyTable;
    use bigfoot_bfj::{parse_program, Interp, RecordingSink, SchedPolicy};

    const RACY: &str = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";

    const ARRAY_RACY: &str = "
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            check(w: a[0..a.length]);
            return 0; } }
        main {
            w = new W;
            a = new_array(32);
            fork t1 = w.fill(a, 1);
            fork t2 = w.fill(a, 2);
            join(t1); join(t2);
        }";

    fn serial_stats(src: &str, mut det: Detector) -> Stats {
        let p = parse_program(src).expect("parse");
        Interp::new(&p, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        det.finish()
    }

    fn pipelined_stats(src: &str, det: Detector, config: &PipelineConfig) -> Stats {
        let p = parse_program(src).expect("parse");
        let (outcome, stats) = detect_pipelined(
            config,
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            det,
        );
        outcome.expect("run");
        stats
    }

    fn assert_identical(a: &Stats, b: &Stats) {
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "pipelined stats must be byte-identical to serial"
        );
    }

    #[test]
    fn pipelined_matches_serial_across_batch_sizes() {
        // Batch sizes of 1 (every event is a handoff), a non-divisor of
        // the stream length, and larger-than-stream all agree with serial.
        for batch_events in [1, 3, 64, 1 << 20] {
            let config = PipelineConfig {
                batch_events,
                ring_slots: 4,
            };
            for (src, make) in [
                (RACY, Detector::fasttrack as fn() -> Detector),
                (RACY, Detector::slimstate),
            ] {
                let serial = serial_stats(src, make());
                let pipelined = pipelined_stats(src, make(), &config);
                assert_identical(&pipelined, &serial);
            }
            let serial = serial_stats(ARRAY_RACY, Detector::bigfoot(ProxyTable::identity()));
            let pipelined = pipelined_stats(
                ARRAY_RACY,
                Detector::bigfoot(ProxyTable::identity()),
                &config,
            );
            assert_identical(&pipelined, &serial);
        }
    }

    #[test]
    fn tiny_ring_exercises_backpressure() {
        // Two slots and one-event batches force the producer to wait on
        // the consumer constantly; the verdict must not change.
        let config = PipelineConfig {
            batch_events: 1,
            ring_slots: 2,
        };
        let serial = serial_stats(ARRAY_RACY, Detector::fasttrack());
        let pipelined = pipelined_stats(ARRAY_RACY, Detector::fasttrack(), &config);
        assert_identical(&pipelined, &serial);
    }

    #[test]
    fn consumer_sees_the_exact_event_sequence() {
        let p = parse_program(ARRAY_RACY).expect("parse");
        let mut lockstep = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut lockstep)
            .expect("run");
        let (outcome, piped) = run_pipelined(
            &PipelineConfig {
                batch_events: 7,
                ring_slots: 2,
            },
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            RecordingSink::default(),
        );
        outcome.expect("run");
        assert_eq!(piped.events, lockstep.events);
    }

    #[test]
    fn close_race_never_drops_the_final_batch() {
        // Regression: `Ring::pop`'s close check used to call `try_pop` a
        // second time inside the condition, silently dropping a batch
        // pushed between the first failed pop and the `closed` load. Race
        // the producer's final push+close against the consumer's empty
        // poll many times; every pushed event must come out.
        let p = parse_program(RACY).expect("parse");
        let mut events = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut events)
            .expect("run");
        let ev = &events.events[0];
        for round in 0..200 {
            let ring: Ring<Vec<Event>> = Ring::new(2);
            let batches = 3 + (round % 4);
            let consumed = std::thread::scope(|scope| {
                let consumer = scope.spawn(|| {
                    let mut stalls = 0u64;
                    let mut total = 0usize;
                    while let Some(batch) = ring.pop(&mut stalls) {
                        total += batch.len();
                    }
                    total
                });
                let mut stalls = 0u64;
                for _ in 0..batches {
                    assert!(ring.push(vec![ev.clone(); 5], &mut stalls));
                    std::hint::spin_loop();
                }
                ring.close();
                consumer.join().expect("consumer")
            });
            assert_eq!(consumed, batches * 5, "round {round} lost events");
        }
    }

    /// Panics on the first event it sees — models a consumer that
    /// unwinds mid-stream.
    #[derive(Debug)]
    struct PanickySink;
    impl EventSink for PanickySink {
        fn event(&mut self, _ev: &Event) {
            panic!("sink exploded");
        }
    }

    #[test]
    fn consumer_panic_propagates_instead_of_hanging() {
        // A panicking consumer must surface its panic through
        // `run_pipelined` rather than leaving the producer spinning on a
        // ring nobody drains.
        let p = parse_program(ARRAY_RACY).expect("parse");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pipelined(
                &PipelineConfig {
                    batch_events: 1,
                    ring_slots: 2,
                },
                |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                PanickySink,
            )
        }));
        let payload = result.expect_err("consumer panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "sink exploded");
    }

    #[test]
    fn dead_ring_drops_are_not_counted_as_handoffs() {
        // Regression (PR 7): `BatchSink::commit` used to bump
        // `tallies.batches`/`tallies.events` before `Ring::push`, which
        // silently drops the batch once the consumer has panicked — so
        // `pipeline.events` over-reported exactly the events that were
        // never consumed. Drive the sink against a dead ring directly
        // (the deterministic core of the bug) and assert the split.
        let ring: Ring<Vec<Event>> = Ring::new(2);
        let free: Ring<Vec<Event>> = Ring::new(2);
        let p = parse_program(RACY).expect("parse");
        let mut events = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut events)
            .expect("run");
        let ev = events.events[0].clone();

        let mut sink = BatchSink::new(&ring, &free, 1);
        sink.event(&ev);
        sink.event(&ev);
        ring.mark_dead(); // the consumer "panics" here
        sink.event(&ev);
        sink.event(&ev);
        sink.finish();
        assert_eq!(sink.tallies.events, 2, "only accepted handoffs count");
        assert_eq!(sink.tallies.batches, 2);
        assert_eq!(
            sink.tallies.events_dropped, 2,
            "dead-ring drops are tallied apart"
        );
        assert_eq!(sink.tallies.batches_dropped, 2);

        // End to end with the existing PanickySink: the counters must
        // balance — every emitted event is either a handoff or a drop,
        // and with a consumer that dies on its first event most of the
        // stream must land on the dropped side. Delta-based against the
        // global registry, with margins wide enough that concurrent
        // obs-enabled tests (which never drop) cannot break it.
        let _g = bigfoot_obs::EnabledGuard::new();
        let before = bigfoot_obs::snapshot();
        let long_racy = "
            class W { meth fill(a, v) {
                for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
                return 0; } }
            main {
                w = new W;
                a = new_array(256);
                fork t1 = w.fill(a, 1);
                fork t2 = w.fill(a, 2);
                join(t1); join(t2);
            }";
        let p = parse_program(long_racy).expect("parse");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pipelined(
                &PipelineConfig {
                    batch_events: 1,
                    ring_slots: 2,
                },
                |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                PanickySink,
            )
        }));
        result.expect_err("consumer panic must propagate");
        let after = bigfoot_obs::snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        let accepted = delta("pipeline.events");
        let dropped = delta("pipeline.events_dropped");
        let total = {
            let mut rec = RecordingSink::default();
            let _ = Interp::new(&p, SchedPolicy::default()).run(&mut rec);
            rec.events.len() as u64
        };
        assert!(total > 100, "stream long enough to outlast the ring");
        assert!(
            dropped >= total - 64,
            "nearly the whole stream is dropped once the consumer dies \
             (dropped={dropped}, total={total})"
        );
        assert!(
            accepted < total,
            "pipeline.events must not claim the full stream was handed off \
             (accepted={accepted}, total={total})"
        );
    }

    #[test]
    fn consumer_thread_flushes_vc_path_tallies() {
        // The vc fast/slow-path tallies accrue in the consumer thread's
        // TLS; `run_pipelined` must drain them before that thread exits
        // or `vc.*` (including `vc.clock.spills`) reads zero under
        // `--pipeline`. Delta-based so parallel obs-enabled tests only
        // help, never hurt.
        let _g = bigfoot_obs::EnabledGuard::new();
        let before = bigfoot_obs::snapshot().counter_total("vc.");
        let p = parse_program(RACY).expect("parse");
        let (outcome, _det) = run_pipelined(
            &PipelineConfig::default(),
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            Detector::fasttrack(),
        );
        outcome.expect("run");
        let after = bigfoot_obs::snapshot().counter_total("vc.");
        assert!(
            after > before,
            "consumer-thread vc path tallies must be flushed (before={before}, after={after})"
        );
    }

    #[test]
    fn producer_error_still_drains_events_emitted_so_far() {
        // An interpreter error surfaces as the producer result while the
        // consumer still observes every event emitted before the failure.
        let p = parse_program("main { a = new_array(4); a[9] = 1; }").expect("parse");
        let (outcome, rec) = run_pipelined(
            &PipelineConfig::default(),
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            RecordingSink::default(),
        );
        assert!(outcome.is_err(), "out-of-bounds write must error");
        assert!(!rec.events.is_empty(), "the alloc event precedes the error");
    }
}
