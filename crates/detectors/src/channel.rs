//! Bounded single-producer / single-consumer channel: the batch ring
//! that PR 5's pipeline hard-coded for `Vec<Event>`, generalized so one
//! ring implementation serves every pipelined consumer — the serial
//! detector pipeline, the streaming replay annotator, and the sharded
//! multi-worker fan-out (`crates/detectors/src/sharded.rs`), which wires
//! N of these rings side by side.
//!
//! Ring discipline (a Lamport queue):
//!
//! * `tail` is written only by the producer, `head` only by the
//!   consumer; both are cache-line-padded so the two sides never
//!   false-share.
//! * The producer may write slot `i` iff `i - head < capacity` (ring
//!   not full); it publishes with a `Release` store of `tail + 1`.
//! * The consumer may read slot `i` iff `i < tail` (ring not empty); it
//!   publishes with a `Release` store of `head + 1`.
//! * A side that cannot progress spins briefly, then yields; stall
//!   episodes are tallied by the caller and bracketed by
//!   `pipeline.push_wait` / `pipeline.pop_wait` flight-recorder spans.
//!
//! End-of-stream protocol:
//!
//! * [`Ring::close`] — producer is done. A consumer seeing `closed`
//!   *and* an empty ring gets `None` from [`Ring::pop`].
//! * [`Ring::mark_dead`] — consumer unwound. A producer seeing `dead`
//!   drops the item instead of waiting on a ring nobody will ever
//!   drain; [`Ring::push`] reports the drop so accounting stays honest
//!   ([`DeadOnUnwind`] arms this from the consumer's stack frame).

use bigfoot_obs::trace::{self, LazyTraceName};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// An `AtomicUsize` alone on its cache line, so the producer's `tail`
/// writes never invalidate the line the consumer polls `head` on (and
/// vice versa).
#[repr(align(64))]
struct PaddedAtomicUsize(AtomicUsize);

struct Slot<T>(UnsafeCell<Option<T>>);

/// Bounded SPSC ring of `T` (event batches, routed item batches, …).
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: PaddedAtomicUsize,
    /// Next slot the producer will write. Written only by the producer.
    tail: PaddedAtomicUsize,
    /// Set by the producer after its final push; a consumer seeing
    /// `closed` *and* an empty ring is done.
    closed: AtomicBool,
    /// Set when the consumer unwinds; a producer seeing `dead` stops
    /// pushing (nobody will ever drain the ring again).
    dead: AtomicBool,
}

// SAFETY: slot `i` is accessed exclusively by the producer while
// `head <= i < head + capacity` and `i >= tail` (it has not been
// published), and exclusively by the consumer while `head <= i < tail`
// (published, not yet consumed). The Release store publishing an index
// happens-before the Acquire load that lets the other side cross it, so
// the two sides never hold a reference to the same slot concurrently.
// `T: Send` because items move across the producer→consumer thread
// boundary (and back, for recycle rings).
unsafe impl<T: Send> Sync for Ring<T> {}

static PUSH_WAIT: LazyTraceName = LazyTraceName::new("pipeline.push_wait");
static POP_WAIT: LazyTraceName = LazyTraceName::new("pipeline.pop_wait");

/// How many times a stalled side spins before yielding. On a
/// single-core host the other side cannot make progress while we spin,
/// so spinning only delays the yield that lets it run — yield at once.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    })
}

/// RAII bracket for one backpressure episode: `begin` fires iff tracing
/// was enabled when the wait started, and the paired `end` is emitted
/// from `Drop` on *every* exit path — early dead-ring bail-out, success,
/// or an unwind through the wait loop — so B/E spans stay balanced per
/// track no matter when the recorder is toggled (`trace::end` records
/// unconditionally by design; the guard remembers whether it began).
struct WaitSpan {
    name: &'static LazyTraceName,
    traced: bool,
}

impl WaitSpan {
    fn begin(name: &'static LazyTraceName) -> WaitSpan {
        let traced = trace::enabled();
        if traced {
            trace::begin(name);
        }
        WaitSpan { name, traced }
    }
}

impl Drop for WaitSpan {
    fn drop(&mut self) {
        if self.traced {
            trace::end(self.name);
        }
    }
}

impl<T> Ring<T> {
    /// A ring with `slots` capacity, rounded up to a power of two,
    /// minimum 2.
    pub fn new(slots: usize) -> Ring<T> {
        let cap = slots.max(2).next_power_of_two();
        Ring {
            slots: (0..cap).map(|_| Slot(UnsafeCell::new(None))).collect(),
            mask: cap - 1,
            head: PaddedAtomicUsize(AtomicUsize::new(0)),
            tail: PaddedAtomicUsize(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: non-blocking. Returns the item back on a full ring.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail - head == self.capacity() {
            return Err(item);
        }
        // SAFETY: `tail - head < capacity`, so this slot is unpublished
        // and owned by the producer (see the `Sync` impl).
        unsafe {
            *self.slots[tail & self.mask].0.get() = Some(item);
        }
        self.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Producer side: blocking with backpressure. `stalls` counts the
    /// episodes (not the spins) where a full ring made the producer
    /// wait. Returns `true` iff the ring accepted the item: if the
    /// consumer has died the item is dropped instead of waiting on a
    /// ring nobody will drain, and the caller must tally the drop
    /// rather than the handoff (the consumer's panic surfaces at
    /// `join()`).
    #[must_use = "a false return means the item was dropped on a dead ring"]
    pub fn push(&self, mut item: T, stalls: &mut u64) -> bool {
        let mut wait: Option<WaitSpan> = None;
        let mut spins = 0u32;
        loop {
            if self.dead.load(Ordering::Acquire) {
                return false;
            }
            match self.try_push(item) {
                Ok(()) => return true,
                Err(i) => item = i,
            }
            if wait.is_none() {
                *stalls += 1;
                wait = Some(WaitSpan::begin(&PUSH_WAIT));
            }
            spins += 1;
            if spins < spin_limit() {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Consumer side: non-blocking.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so this slot is published and owned by
        // the consumer (see the `Sync` impl).
        let item = unsafe { (*self.slots[head & self.mask].0.get()).take() };
        self.head.0.store(head + 1, Ordering::Release);
        Some(item.expect("published slot holds an item"))
    }

    /// Consumer side: blocking. `None` means the producer closed the
    /// ring and everything has been drained. `stalls` counts empty-ring
    /// waits.
    pub fn pop(&self, stalls: &mut u64) -> Option<T> {
        let mut wait: Option<WaitSpan> = None;
        let mut spins = 0u32;
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            // Check `closed` only after a failed pop: the producer
            // closes *after* its final push, so once `closed` is
            // observed one more pop decides — an item pushed between
            // the failed pop above and the `closed` load must still be
            // returned, and an empty ring is truly done.
            if self.closed.load(Ordering::Acquire) {
                return self.try_pop();
            }
            if wait.is_none() {
                *stalls += 1;
                wait = Some(WaitSpan::begin(&POP_WAIT));
            }
            spins += 1;
            if spins < spin_limit() {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Producer is done; pending items remain poppable.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Consumer will never drain again; future pushes drop.
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Items currently in flight (approximate; for depth telemetry).
    pub fn depth(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(self.head.0.load(Ordering::Relaxed))
    }
}

/// Marks the ring dead if the holding (consumer) thread unwinds, so the
/// producer bails out of its push loop instead of spinning forever and
/// the panic surfaces at `join()`. Harmless on the normal-return path:
/// the producer has already closed the ring by the time the consumer's
/// drain loop exits, so nothing is pushed after the drop.
pub struct DeadOnUnwind<'r, T>(pub &'r Ring<T>);

impl<T> Drop for DeadOnUnwind<'_, T> {
    fn drop(&mut self) {
        self.0.dead.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let ring: Ring<u64> = Ring::new(3);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4u64 {
            ring.try_push(i).expect("room");
        }
        assert!(ring.try_push(99).is_err(), "full ring rejects");
        for i in 0..4u64 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn pop_drains_pending_items_after_close() {
        let ring: Ring<u32> = Ring::new(2);
        let mut stalls = 0;
        assert!(ring.push(7, &mut stalls));
        ring.close();
        assert_eq!(ring.pop(&mut stalls), Some(7));
        assert_eq!(ring.pop(&mut stalls), None);
        assert_eq!(stalls, 0);
    }

    #[test]
    fn push_reports_drops_on_a_dead_ring() {
        // The producer must learn the item was dropped — PR 7's
        // accounting fix counts only accepted handoffs.
        let ring: Ring<String> = Ring::new(2);
        ring.mark_dead();
        let mut stalls = 0;
        assert!(!ring.push("lost".into(), &mut stalls));
        assert_eq!(stalls, 0, "a dead ring fails fast, it does not stall");
        assert_eq!(ring.try_pop(), None, "dropped items are never published");
    }

    #[test]
    fn generic_close_race_never_drops_the_final_item() {
        // Same close-race discipline the event pipeline pins, exercised
        // through the generic ring with a non-event payload.
        for round in 0..100 {
            let ring: Ring<Vec<usize>> = Ring::new(2);
            let items = 3 + (round % 4);
            let consumed = std::thread::scope(|scope| {
                let consumer = scope.spawn(|| {
                    let mut stalls = 0u64;
                    let mut total = 0usize;
                    while let Some(batch) = ring.pop(&mut stalls) {
                        total += batch.len();
                    }
                    total
                });
                let mut stalls = 0u64;
                for _ in 0..items {
                    assert!(ring.push(vec![0usize; 5], &mut stalls));
                    std::hint::spin_loop();
                }
                ring.close();
                consumer.join().expect("consumer")
            });
            assert_eq!(consumed, items * 5, "round {round} lost items");
        }
    }
}
