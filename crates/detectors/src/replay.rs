//! Parallel sharded trace-replay detection.
//!
//! The serial [`Detector`](crate::Detector) consumes events as the
//! interpreter produces them. This module replays a *recorded* trace (see
//! `bigfoot_bfj::trace`) instead, splitting detection into three stages:
//!
//! 1. **Annotate** (serial). Sync events (acquire/release/fork/join/
//!    volatiles/exit) are run in trace order against [`SyncClocks`], and
//!    every check — immediate field/fine-array checks as well as the
//!    deferred footprint commits that fire at each sync — is turned into a
//!    self-contained work item carrying a snapshot of the acting thread's
//!    [`VectorClock`] (shared via `Arc`; clocks only change at sync ops,
//!    so snapshots are cached between them). Items get a global sequence
//!    number in exactly the order the serial detector would perform the
//!    corresponding shadow operations.
//! 2. **Detect** (parallel). Items route to one of [`SHARDS`] fixed
//!    logical shards by owning object/array id, so a field group or a
//!    whole array — including all of an [`ArrayShadow`]'s adaptive
//!    refinement — always lands on one shard and stays sequential. `N`
//!    workers each own the shards `s % N == w`; because routing is by
//!    *shard* and not by worker, each shard sees the same item stream in
//!    the same order for every worker count.
//! 3. **Merge** (serial). Per-shard race candidates, tagged
//!    `(seq, intra_item_index)`, are sorted back into global trace order
//!    and fed through [`Stats::report_race`] — the same deduplication the
//!    serial detector applies inline — so the final report is
//!    **bit-identical** to the serial detector's, at any worker count.
//!
//! Shadow space is also reproduced exactly: the annotator emits a probe
//! item to every shard at each point the serial detector would sample
//! (every [`SPACE_SAMPLE_PERIOD`] sync ops and at finalization), records
//! its own footprint-buffer size at that point, and the merge sums the
//! per-shard measurements per probe.

use crate::detector::SPACE_SAMPLE_PERIOD;
use crate::detector::{ArrayEngine, CheckSource, ObjEntry, ProxyTable, FP_POOL_MAX};
use crate::stats::{Race, RaceTarget, Stats};
use crate::sync::SyncClocks;
use bigfoot_bfj::trace::{read_event, read_header, TraceError};
use bigfoot_bfj::{ArrId, CheckTarget, ConcreteRange, Event, Loc, ObjId};
use bigfoot_obs::fx::FxHashMap;
use bigfoot_shadow::{ArrayShadow, FieldGrouping, Footprint, ObjectShadow, Slab};
use bigfoot_vc::{AccessKind, Tid, VarState, VectorClock};
use std::sync::Arc;

/// Number of fixed logical shards.
///
/// Work routes to `SHARDS` queues regardless of the worker count; workers
/// then divide the *shards*, never the items. This is what makes replay
/// verdicts independent of `--replay-workers`: shard streams (and hence
/// per-shard shadow state evolution) are identical at every worker count.
pub const SHARDS: usize = 64;

#[inline]
pub(crate) fn obj_shard(obj: ObjId) -> usize {
    obj.0 as usize % SHARDS
}

#[inline]
pub(crate) fn arr_shard(arr: ArrId) -> usize {
    arr.0 as usize % SHARDS
}

/// Streaming decoder over a serialized trace buffer.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, trace::TraceWriter, Interp, SchedPolicy};
/// use bigfoot_detectors::TraceReader;
///
/// let p = parse_program("main { a = new_array(4); a[0] = 1; }")?;
/// let mut w = TraceWriter::new();
/// Interp::new(&p, SchedPolicy::default()).run(&mut w)?;
/// let bytes = w.into_bytes();
/// let events: Vec<_> = TraceReader::new(&bytes)?.collect::<Result<_, _>>()?;
/// assert!(!events.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> TraceReader<'a> {
    /// Validates the header and positions the reader at the first event.
    pub fn new(bytes: &'a [u8]) -> Result<TraceReader<'a>, TraceError> {
        let pos = read_header(bytes)?;
        Ok(TraceReader { bytes, pos })
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Result<Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match read_event(self.bytes, &mut self.pos) {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                // Park the cursor at the end so a malformed trace yields
                // one error and then terminates the iterator.
                self.pos = self.bytes.len();
                Some(Err(e))
            }
        }
    }
}

/// Configuration of a replay run: the detector configuration plus the
/// worker count. Constructors mirror [`Detector`](crate::Detector)'s.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Where checks come from (raw accesses vs instrumentation).
    pub source: CheckSource,
    /// Fine per-element arrays vs footprint + adaptive compression.
    pub engine: ArrayEngine,
    /// Static field-proxy groupings.
    pub proxies: ProxyTable,
    /// Number of detection worker threads (clamped to `1..=SHARDS`).
    pub workers: usize,
}

impl ReplayConfig {
    /// FastTrack configuration at the given worker count.
    pub fn fasttrack(workers: usize) -> ReplayConfig {
        ReplayConfig {
            source: CheckSource::RawAccesses,
            engine: ArrayEngine::Fine,
            proxies: ProxyTable::identity(),
            workers,
        }
    }

    /// RedCard configuration.
    pub fn redcard(proxies: ProxyTable, workers: usize) -> ReplayConfig {
        ReplayConfig {
            source: CheckSource::CheckEvents,
            engine: ArrayEngine::Fine,
            proxies,
            workers,
        }
    }

    /// SlimState configuration.
    pub fn slimstate(workers: usize) -> ReplayConfig {
        ReplayConfig {
            source: CheckSource::RawAccesses,
            engine: ArrayEngine::Footprint,
            proxies: ProxyTable::identity(),
            workers,
        }
    }

    /// SlimCard configuration.
    pub fn slimcard(proxies: ProxyTable, workers: usize) -> ReplayConfig {
        ReplayConfig {
            source: CheckSource::CheckEvents,
            engine: ArrayEngine::Footprint,
            proxies,
            workers,
        }
    }

    /// BigFoot (DynamicBF) configuration.
    pub fn bigfoot(proxies: ProxyTable, workers: usize) -> ReplayConfig {
        ReplayConfig {
            source: CheckSource::CheckEvents,
            engine: ArrayEngine::Footprint,
            proxies,
            workers,
        }
    }
}

/// One unit of check work, routed to a shard. Items carry everything the
/// shard needs — in particular an `Arc` snapshot of the acting thread's
/// clock at the moment the serial detector would have read it.
#[derive(Clone)]
pub(crate) enum Item {
    AllocObj {
        obj: ObjId,
        grouping: Arc<FieldGrouping>,
    },
    AllocArr {
        arr: ArrId,
        len: u64,
    },
    /// A field check over an uncompressed field list (groups are resolved
    /// by the shard, which owns the object's grouping).
    FieldCheck {
        seq: u64,
        obj: ObjId,
        fields: Vec<u32>,
        kind: AccessKind,
        t: Tid,
        clock: Arc<VectorClock>,
    },
    /// A fine-grained (per-element) array check.
    FineRange {
        seq: u64,
        arr: ArrId,
        range: ConcreteRange,
        kind: AccessKind,
        t: Tid,
        clock: Arc<VectorClock>,
    },
    /// One committed footprint range against the adaptive shadow. The
    /// clock is the committing thread's clock *before* the triggering sync
    /// operation updated it, exactly as in the serial detector.
    CommitRange {
        seq: u64,
        arr: ArrId,
        range: ConcreteRange,
        kind: AccessKind,
        t: Tid,
        clock: Arc<VectorClock>,
    },
    /// Measure this shard's shadow space (one per global sample point).
    SpaceProbe,
    /// Compressed replay: mark the start of a memoization probe bracket.
    /// The shard records its `shadow_ops` tally so the bracket's cost can
    /// be measured. An unmatched marker (memoization fell back to full
    /// expansion) is harmless — it only re-arms the mark.
    MemoBegin,
    /// Compressed replay: the items since the matching [`Item::MemoBegin`]
    /// were one repetition of a rule whose remaining `times` repetitions
    /// are provably identical (state fixpoint, duplicate races only), so
    /// the shard accounts their shadow ops by scaling the measured bracket
    /// instead of re-applying it.
    MemoScale {
        /// Number of skipped repetitions to account for.
        times: u64,
    },
}

/// What one shard's detection produced.
#[derive(Default)]
pub(crate) struct ShardOutcome {
    pub(crate) items: u64,
    pub(crate) shadow_ops: u64,
    /// Race candidates tagged with `(global_seq, intra_item_index)`.
    pub(crate) races: Vec<(u64, u32, Race)>,
    /// Shadow space at each probe point, in clock-entry units.
    pub(crate) probe_spaces: Vec<u64>,
}

/// Per-shard detection state: exactly the serial detector's shadow stores,
/// restricted to the objects/arrays that route to this shard. Ids within
/// shard `s` are `s, s + SHARDS, …`, so strided slabs index by
/// `id / SHARDS` and stay dense per shard.
pub(crate) struct ShardState {
    engine: ArrayEngine,
    objects: Slab<ObjId, ObjEntry>,
    arrays_fine: Slab<ArrId, Vec<VarState>>,
    arrays_adaptive: Slab<ArrId, ArrayShadow>,
    /// Scratch for proxy-group deduplication in multi-field checks.
    group_scratch: Vec<u32>,
    /// `shadow_ops` tally at the last [`Item::MemoBegin`].
    memo_mark: u64,
    pub(crate) out: ShardOutcome,
}

impl ShardState {
    pub(crate) fn new(engine: ArrayEngine) -> ShardState {
        ShardState {
            engine,
            objects: Slab::with_stride(SHARDS as u32),
            arrays_fine: Slab::with_stride(SHARDS as u32),
            arrays_adaptive: Slab::with_stride(SHARDS as u32),
            group_scratch: Vec::new(),
            memo_mark: 0,
            out: ShardOutcome::default(),
        }
    }

    fn run(mut self, items: &[Item]) -> ShardOutcome {
        for item in items {
            self.out.items += 1;
            self.apply(item);
        }
        // Publish this worker thread's FastTrack path tallies.
        bigfoot_vc::path_stats::flush();
        self.out
    }

    pub(crate) fn apply(&mut self, item: &Item) {
        match item {
            Item::AllocObj { obj, grouping } => {
                let shadow = ObjectShadow::new(grouping.groups);
                self.objects.insert(
                    *obj,
                    ObjEntry {
                        grouping: Arc::clone(grouping),
                        shadow,
                    },
                );
            }
            Item::AllocArr { arr, len } => match self.engine {
                ArrayEngine::Fine => {
                    self.arrays_fine
                        .insert(*arr, vec![VarState::new(); *len as usize]);
                }
                ArrayEngine::Footprint => {
                    self.arrays_adaptive
                        .insert(*arr, ArrayShadow::new(*len as usize));
                }
            },
            Item::FieldCheck {
                seq,
                obj,
                fields,
                kind,
                t,
                clock,
            } => {
                let Some(entry) = self.objects.get_mut(*obj) else {
                    return; // unseen allocation: serial detector skips too
                };
                if let [f] = fields.as_slice() {
                    // Single-field fast path: no dedup scratch needed.
                    let g = entry.grouping.group(*f);
                    self.out.shadow_ops += 1;
                    if let Err(info) = entry.shadow.apply(g, *kind, *t, clock) {
                        self.out.races.push((
                            *seq,
                            0,
                            Race {
                                target: RaceTarget::Field(*obj, g),
                                info,
                            },
                        ));
                    }
                    return;
                }
                let groups = &mut self.group_scratch;
                groups.clear();
                groups.extend(fields.iter().map(|f| entry.grouping.group(*f)));
                groups.sort_unstable();
                groups.dedup();
                let mut idx = 0u32;
                for &g in groups.iter() {
                    self.out.shadow_ops += 1;
                    if let Err(info) = entry.shadow.apply(g, *kind, *t, clock) {
                        self.out.races.push((
                            *seq,
                            idx,
                            Race {
                                target: RaceTarget::Field(*obj, g),
                                info,
                            },
                        ));
                        idx += 1;
                    }
                }
            }
            Item::FineRange {
                seq,
                arr,
                range,
                kind,
                t,
                clock,
            } => {
                let Some(states) = self.arrays_fine.get_mut(*arr) else {
                    return;
                };
                let mut idx = 0u32;
                for i in range.indices() {
                    if i < 0 || i as usize >= states.len() {
                        continue;
                    }
                    self.out.shadow_ops += 1;
                    if let Err(info) = states[i as usize].apply(*kind, *t, clock) {
                        self.out.races.push((
                            *seq,
                            idx,
                            Race {
                                target: RaceTarget::Elems(*arr, ConcreteRange::singleton(i)),
                                info,
                            },
                        ));
                        idx += 1;
                    }
                }
            }
            Item::CommitRange {
                seq,
                arr,
                range,
                kind,
                t,
                clock,
            } => {
                let Some(shadow) = self.arrays_adaptive.get_mut(*arr) else {
                    return;
                };
                let outcome = shadow.apply(*range, *kind, *t, clock);
                self.out.shadow_ops += outcome.shadow_ops;
                for (idx, (extent, info)) in outcome.races.into_iter().enumerate() {
                    self.out.races.push((
                        *seq,
                        idx as u32,
                        Race {
                            target: RaceTarget::Elems(*arr, extent),
                            info,
                        },
                    ));
                }
            }
            Item::MemoBegin => {
                self.memo_mark = self.out.shadow_ops;
            }
            Item::MemoScale { times } => {
                // The bracket since MemoBegin was one rule repetition; its
                // skipped repetitions perform exactly the same shadow ops
                // (and only duplicate, already-deduplicated races).
                let bracket = self.out.shadow_ops - self.memo_mark;
                self.out.shadow_ops += bracket * times;
            }
            Item::SpaceProbe => {
                let mut units: u64 = 0;
                for o in self.objects.values() {
                    units += o.shadow.space_units() as u64;
                }
                for a in self.arrays_fine.values() {
                    units += a.iter().map(VarState::space_units).sum::<usize>() as u64;
                }
                for a in self.arrays_adaptive.values() {
                    units += a.space_units() as u64;
                }
                self.out.probe_spaces.push(units);
            }
        }
    }
}

/// Where the annotator's sequenced items go. The offline path collects
/// them into the 64 in-memory shard queues ([`ShardQueues`]); the
/// streaming sharded path ([`crate::sharded`]) batches them straight
/// into per-worker SPSC rings. Because the annotator routes by *shard*
/// either way, per-shard item streams are identical across sinks — the
/// root of the worker-count-invariance argument.
pub(crate) trait ItemSink {
    fn item(&mut self, shard: usize, item: Item);
}

/// The offline sink: one in-memory queue per shard, drained by
/// [`detect_and_merge`]'s scoped workers after the stream ends.
pub(crate) struct ShardQueues(pub(crate) Vec<Vec<Item>>);

impl ShardQueues {
    pub(crate) fn new() -> ShardQueues {
        ShardQueues((0..SHARDS).map(|_| Vec::new()).collect())
    }
}

impl ItemSink for ShardQueues {
    #[inline]
    fn item(&mut self, shard: usize, item: Item) {
        self.0[shard].push(item);
    }
}

/// The serial clock-annotation pass: mirrors the serial detector's control
/// flow exactly, but instead of touching shadow state it emits sequenced
/// work items into an [`ItemSink`] (in-memory shard queues offline,
/// per-worker rings when streaming).
pub(crate) struct Annotator<S> {
    source: CheckSource,
    engine: ArrayEngine,
    proxies: ProxyTable,
    clocks: SyncClocks,
    /// Cached `Arc` snapshots of thread clocks (indexed by dense tid),
    /// invalidated when a sync operation changes the thread's clock.
    snapshots: Vec<Option<Arc<VectorClock>>>,
    /// Mirror of the serial detector's pending footprints (dense tid index,
    /// same insertion order), so commits drain identical coalesced ranges.
    /// `pub(crate)` so compressed replay can probe and extrapolate them.
    pub(crate) footprints: Vec<Vec<(ArrId, Footprint)>>,
    /// Drained footprints recycled across commit spans.
    fp_pool: Vec<Footprint>,
    /// Identity groupings shared per field count, as in the serial detector.
    identity_groupings: FxHashMap<u32, Arc<FieldGrouping>>,
    pub(crate) sink: S,
    next_seq: u64,
    /// Footprint-buffer space at each probe point (the shards measure the
    /// shadow maps; the annotator owns the footprints).
    probe_fp_space: Vec<u64>,
    /// Events processed, flushed to `det.events` at finalization (mirrors
    /// the serial detector's aggregate-then-flush counting).
    pub(crate) events: u64,
    pub(crate) stats: Stats,
    finished: bool,
}

impl Annotator<ShardQueues> {
    fn new(config: &ReplayConfig) -> Annotator<ShardQueues> {
        Annotator::with_sink(config, ShardQueues::new())
    }
}

impl<S: ItemSink> Annotator<S> {
    pub(crate) fn with_sink(config: &ReplayConfig, sink: S) -> Annotator<S> {
        Annotator {
            source: config.source,
            engine: config.engine,
            proxies: config.proxies.clone(),
            clocks: SyncClocks::new(),
            snapshots: Vec::new(),
            footprints: Vec::new(),
            fp_pool: Vec::new(),
            identity_groupings: FxHashMap::default(),
            sink,
            next_seq: 0,
            probe_fp_space: Vec::new(),
            events: 0,
            stats: Stats::default(),
            finished: false,
        }
    }

    /// Tears the finalized annotator apart for stage 2/3: the sink
    /// (whatever it buffered or routed), the per-probe footprint space,
    /// and the running stats the merge completes.
    pub(crate) fn into_parts(self) -> (ArrayEngine, S, Vec<u64>, Stats) {
        debug_assert!(self.finished, "finalize before consuming the annotator");
        (self.engine, self.sink, self.probe_fp_space, self.stats)
    }

    fn seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// The acting thread's current clock as a shared snapshot.
    fn snapshot(&mut self, t: Tid) -> Arc<VectorClock> {
        if let Some(Some(c)) = self.snapshots.get(t.index()) {
            return c.clone();
        }
        let c = Arc::new(self.clocks.clock(t).clone());
        if self.snapshots.len() <= t.index() {
            self.snapshots.resize(t.index() + 1, None);
        }
        self.snapshots[t.index()] = Some(c.clone());
        c
    }

    fn invalidate(&mut self, t: Tid) {
        if let Some(slot) = self.snapshots.get_mut(t.index()) {
            *slot = None;
        }
    }

    fn field_check(&mut self, t: Tid, obj: ObjId, fields: &[u32], kind: AccessKind) {
        self.stats.checks += 1;
        self.stats.field_checks += 1;
        let seq = self.seq();
        let clock = self.snapshot(t);
        self.sink.item(
            obj_shard(obj),
            Item::FieldCheck {
                seq,
                obj,
                fields: fields.to_vec(),
                kind,
                t,
                clock,
            },
        );
    }

    fn array_check(&mut self, t: Tid, arr: ArrId, range: ConcreteRange, kind: AccessKind) {
        self.stats.checks += 1;
        self.stats.array_checks += 1;
        match self.engine {
            ArrayEngine::Fine => {
                let seq = self.seq();
                let clock = self.snapshot(t);
                self.sink.item(
                    arr_shard(arr),
                    Item::FineRange {
                        seq,
                        arr,
                        range,
                        kind,
                        t,
                        clock,
                    },
                );
            }
            ArrayEngine::Footprint => {
                self.stats.footprint_ops += 1;
                let ti = t.index();
                if self.footprints.len() <= ti {
                    self.footprints.resize_with(ti + 1, Vec::new);
                }
                let per_thread = &mut self.footprints[ti];
                match per_thread.iter_mut().find(|(a, _)| *a == arr) {
                    Some((_, fp)) => fp.add(kind, range),
                    None => {
                        let mut fp = self.fp_pool.pop().unwrap_or_default();
                        fp.add(kind, range);
                        per_thread.push((arr, fp));
                    }
                }
            }
        }
    }

    /// Drains thread `t`'s pending footprints into sequenced commit items,
    /// in the serial detector's exact order: per-array insertion order,
    /// writes before reads, ranges in coalesced order. Uses `t`'s clock
    /// *before* the triggering sync op updates it.
    fn commit_footprints(&mut self, t: Tid) {
        if self.footprints.get(t.index()).is_none_or(Vec::is_empty) {
            return;
        }
        let clock = self.snapshot(t);
        let per_arr = &mut self.footprints[t.index()];
        for (arr, fp) in per_arr.iter_mut() {
            if fp.is_empty() {
                continue;
            }
            for (kind, ranges) in [
                (AccessKind::Write, fp.writes.ranges()),
                (AccessKind::Read, fp.reads.ranges()),
            ] {
                for &range in ranges {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.sink.item(
                        arr_shard(*arr),
                        Item::CommitRange {
                            seq,
                            arr: *arr,
                            range,
                            kind,
                            t,
                            clock: clock.clone(),
                        },
                    );
                }
            }
        }
        // Drain and recycle exactly as the serial detector does.
        for (_, mut fp) in per_arr.drain(..) {
            fp.clear();
            if self.fp_pool.len() < FP_POOL_MAX {
                self.fp_pool.push(fp);
            }
        }
    }

    /// Records a global space-sample point: footprint space here, shadow
    /// space in every shard.
    fn probe_space(&mut self) {
        let fp: u64 = self
            .footprints
            .iter()
            .map(|per_arr| {
                per_arr
                    .iter()
                    .map(|(_, fp)| fp.space_units())
                    .sum::<usize>() as u64
            })
            .sum();
        self.probe_fp_space.push(fp);
        for s in 0..SHARDS {
            self.sink.item(s, Item::SpaceProbe);
        }
    }

    fn on_sync(&mut self, ev: &Event) {
        // Commit before the sync updates the clocks, as in the serial
        // detector; invalidate snapshots of every thread the op touches.
        match ev {
            Event::Acquire { t, lock } => {
                self.commit_footprints(*t);
                self.clocks.acquire(*t, *lock);
                self.invalidate(*t);
            }
            Event::Release { t, lock } => {
                self.commit_footprints(*t);
                self.clocks.release(*t, *lock);
                self.invalidate(*t);
            }
            Event::Fork { parent, child } => {
                self.commit_footprints(*parent);
                self.clocks.fork(*parent, *child);
                self.invalidate(*parent);
                self.invalidate(*child);
            }
            Event::Join { parent, child } => {
                self.commit_footprints(*parent);
                self.clocks.join(*parent, *child);
                self.invalidate(*parent);
            }
            Event::ThreadExit { t } => {
                self.commit_footprints(*t);
                self.clocks.exit(*t);
            }
            Event::VolatileWrite { t, obj, field } => {
                self.commit_footprints(*t);
                self.clocks.volatile_write(*t, *obj, *field);
                self.invalidate(*t);
            }
            Event::VolatileRead { t, obj, field } => {
                self.commit_footprints(*t);
                self.clocks.volatile_read(*t, *obj, *field);
                self.invalidate(*t);
            }
            _ => unreachable!("on_sync requires a sync event"),
        }
        if self.clocks.sync_ops().is_multiple_of(SPACE_SAMPLE_PERIOD) {
            self.probe_space();
        }
    }

    fn ingest(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::AllocObj {
                obj, class, fields, ..
            } => {
                let grouping = match self.proxies.grouping(*class) {
                    Some(g) => Arc::clone(g),
                    None => {
                        let n = *fields;
                        Arc::clone(
                            self.identity_groupings
                                .entry(n)
                                .or_insert_with(|| Arc::new(FieldGrouping::identity(n as usize))),
                        )
                    }
                };
                self.sink.item(
                    obj_shard(*obj),
                    Item::AllocObj {
                        obj: *obj,
                        grouping,
                    },
                );
            }
            Event::AllocArr { arr, len, .. } => {
                self.sink.item(
                    arr_shard(*arr),
                    Item::AllocArr {
                        arr: *arr,
                        len: *len,
                    },
                );
            }
            Event::Access { t, kind, loc } => {
                match kind {
                    AccessKind::Read => self.stats.reads += 1,
                    AccessKind::Write => self.stats.writes += 1,
                }
                if self.source == CheckSource::RawAccesses {
                    match loc {
                        Loc::Field(obj, f) => self.field_check(*t, *obj, &[*f], *kind),
                        Loc::Elem(arr, i) => {
                            self.array_check(*t, *arr, ConcreteRange::singleton(*i), *kind)
                        }
                    }
                }
            }
            Event::Check { t, paths } => {
                if self.source == CheckSource::CheckEvents {
                    for (kind, target) in paths {
                        match target {
                            CheckTarget::Fields(obj, idxs) => {
                                self.field_check(*t, *obj, idxs, *kind)
                            }
                            CheckTarget::Range(arr, r) => {
                                if !r.is_empty() {
                                    self.array_check(*t, *arr, *r, *kind)
                                }
                            }
                        }
                    }
                }
            }
            sync => self.on_sync(sync),
        }
    }

    /// Final commits (sorted-tid order, matching the serial detector's
    /// finalize) and the final space sample.
    pub(crate) fn finalize(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Ascending dense-tid order is exactly the serial detector's
        // sorted-tid final-commit order.
        for ti in 0..self.footprints.len() {
            self.commit_footprints(Tid(ti as u32));
        }
        self.probe_space();
        self.stats.sync_ops = self.clocks.sync_ops();
        bigfoot_obs::count_named("det.events", self.events);
    }
}

/// The annotation pass is itself an [`EventSink`], so it can terminate a
/// pipeline (`run_pipelined`) as well as a decode loop: the interpreter
/// produces batches on one thread while this serial stage-1 pass consumes
/// them on another, and the sharded stage 2/3 runs once the stream ends.
impl<S: ItemSink> bigfoot_bfj::EventSink for Annotator<S> {
    #[inline]
    fn event(&mut self, ev: &Event) {
        self.ingest(ev);
    }
}

/// Stage 3, shared by the offline path ([`detect_and_merge`]) and the
/// streaming sharded path ([`crate::sharded`]): sort per-shard race
/// candidates back into global `(seq, intra_item_index)` order, feed
/// them through [`Stats::report_race`]'s inline deduplication, and sum
/// the per-shard space probes — producing stats bit-identical to the
/// serial detector's, however the shards were executed.
pub(crate) fn merge_outcomes(
    mut stats: Stats,
    probe_fp_space: &[u64],
    outcomes: &[ShardOutcome],
) -> Stats {
    let mut candidates: Vec<(u64, u32, Race)> = Vec::new();
    for o in outcomes {
        stats.shadow_ops += o.shadow_ops;
        candidates.extend(o.races.iter().map(|(s, i, r)| (*s, *i, r.clone())));
    }
    candidates.sort_by_key(|(seq, idx, _)| (*seq, *idx));
    for (_, _, race) in candidates {
        stats.report_race(race);
    }
    for (k, fp_space) in probe_fp_space.iter().enumerate() {
        let shard_space: u64 = outcomes.iter().map(|o| o.probe_spaces[k]).sum();
        stats.observe_space(fp_space + shard_space);
    }
    stats.publish();
    stats
}

/// Stages 2 and 3, shared by [`replay_trace`] and [`replay_pipelined`]:
/// parallel sharded detection over the annotator's queues, then the
/// deterministic seq-ordered merge. The annotator must be finalized.
fn detect_and_merge(annotator: Annotator<ShardQueues>, num_workers: usize) -> Stats {
    let (engine, ShardQueues(queues), probe_fp_space, stats) = annotator.into_parts();
    detect_and_merge_parts(engine, queues, probe_fp_space, stats, num_workers)
}

/// [`detect_and_merge`] with the annotator already torn apart — shared
/// with compressed replay (`crate::creplay`), whose annotator wraps the
/// shard queues in a recording sink.
pub(crate) fn detect_and_merge_parts(
    engine: ArrayEngine,
    queues: Vec<Vec<Item>>,
    probe_fp_space: Vec<u64>,
    stats: Stats,
    num_workers: usize,
) -> Stats {
    // Stage 2: parallel sharded detection. Worker `w` owns the shards
    // `s % workers == w`; shard streams are identical at any worker count.
    let workers = num_workers.clamp(1, SHARDS);
    let outcomes: Vec<ShardOutcome> = {
        let _span = bigfoot_obs::span!("replay.detect");
        if workers == 1 {
            queues
                .iter()
                .map(|items| ShardState::new(engine).run(items))
                .collect()
        } else {
            let mut outcomes: Vec<Option<ShardOutcome>> = (0..SHARDS).map(|_| None).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let queues = &queues;
                    handles.push(scope.spawn(move || {
                        if bigfoot_obs::trace::enabled() {
                            bigfoot_obs::trace::set_thread_name(&format!("replay worker {w}"));
                        }
                        let mut owned = Vec::new();
                        let mut s = w;
                        while s < SHARDS {
                            // One span per non-empty shard: the worker's
                            // timeline shows which shards carried the
                            // work and where it idled.
                            let traced = bigfoot_obs::trace::enabled() && !queues[s].is_empty();
                            let _shard_span =
                                traced.then(|| bigfoot_obs::trace_span!("replay.shard"));
                            owned.push((s, ShardState::new(engine).run(&queues[s])));
                            s += workers;
                        }
                        owned
                    }));
                }
                for h in handles {
                    for (s, outcome) in h.join().expect("replay worker panicked") {
                        outcomes[s] = Some(outcome);
                    }
                }
            });
            outcomes
                .into_iter()
                .map(|o| o.expect("every shard processed"))
                .collect()
        }
    };

    // Stage 3: merge per-shard results back into global trace order.
    let _span = bigfoot_obs::span!("replay.merge");
    if bigfoot_obs::enabled() {
        for (s, o) in outcomes.iter().enumerate() {
            bigfoot_obs::count_named(&format!("replay.shard{s:02}.items"), o.items);
            bigfoot_obs::count_named(&format!("replay.shard{s:02}.shadow_ops"), o.shadow_ops);
            bigfoot_obs::count_named(&format!("replay.shard{s:02}.races"), o.races.len() as u64);
        }
    }
    merge_outcomes(stats, &probe_fp_space, &outcomes)
}

/// Replays a serialized trace through the sharded detection pipeline.
///
/// Produces [`Stats`] bit-identical to running the serial
/// [`Detector`](crate::Detector) with the same configuration over the same
/// event stream, for any worker count.
///
/// # Errors
///
/// Returns [`TraceError`] if the trace buffer is malformed.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, trace::TraceWriter, Interp, SchedPolicy};
/// use bigfoot_detectors::{replay_trace, Detector, ReplayConfig};
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let mut w = TraceWriter::new();
/// Interp::new(&p, SchedPolicy::default()).run(&mut w)?;
/// let bytes = w.into_bytes();
///
/// let stats = replay_trace(&bytes, &ReplayConfig::fasttrack(4))?;
/// assert!(stats.has_races());
///
/// // Identical to the serial detector over the same trace:
/// let mut serial = Detector::fasttrack();
/// for ev in bigfoot_detectors::TraceReader::new(&bytes)? {
///     use bigfoot_bfj::EventSink;
///     serial.event(&ev?);
/// }
/// assert_eq!(stats.races, serial.finish().races);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_trace(bytes: &[u8], config: &ReplayConfig) -> Result<Stats, TraceError> {
    // Stage 1: serial clock annotation.
    let mut annotator = Annotator::new(config);
    {
        let _span = bigfoot_obs::span!("replay.annotate");
        let mut pos = read_header(bytes)?;
        while let Some(ev) = read_event(bytes, &mut pos)? {
            annotator.ingest(&ev);
        }
        annotator.finalize();
    }
    Ok(detect_and_merge(annotator, config.workers))
}

/// Pipelined sharded detection straight from a live event producer — no
/// intermediate trace buffer. The producer (typically the interpreter)
/// runs on the calling thread and feeds the batch ring; the stage-1
/// annotator consumes batches on a second thread; stages 2/3 (the same
/// sharded detection and deterministic merge as [`replay_trace`]) run
/// when the stream ends.
///
/// Because the annotator sees the producer's exact event order, the
/// resulting [`Stats`] are bit-identical to [`replay_trace`] over a
/// recording of the same run — and hence to the serial
/// [`Detector`](crate::Detector) — at any worker count.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
/// use bigfoot_detectors::{replay_pipelined, PipelineConfig, ReplayConfig};
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let (outcome, stats) = replay_pipelined(
///     &PipelineConfig::default(),
///     &ReplayConfig::fasttrack(4),
///     |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
/// );
/// outcome?;
/// assert!(stats.has_races());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_pipelined<T>(
    pipeline: &crate::pipeline::PipelineConfig,
    config: &ReplayConfig,
    producer: impl FnOnce(&mut crate::pipeline::BatchSink<'_>) -> T,
) -> (T, Stats) {
    let annotator = Annotator::new(config);
    let (result, mut annotator) = crate::pipeline::run_pipelined(pipeline, producer, annotator);
    annotator.finalize();
    (result, detect_and_merge(annotator, config.workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use bigfoot_bfj::trace::TraceWriter;
    use bigfoot_bfj::{parse_program, EventSink, Interp, SchedPolicy};

    fn record(src: &str) -> Vec<u8> {
        let p = parse_program(src).expect("parse");
        let mut w = TraceWriter::new();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut w)
            .expect("run");
        w.into_bytes()
    }

    fn serial_stats(bytes: &[u8], mut det: Detector) -> Stats {
        for ev in TraceReader::new(bytes).expect("header") {
            det.event(&ev.expect("event"));
        }
        det.finish()
    }

    fn assert_identical(stats: &Stats, serial: &Stats) {
        assert_eq!(stats.races, serial.races);
        assert_eq!(
            stats.to_json().to_string_compact(),
            serial.to_json().to_string_compact(),
            "replay stats must be bit-identical to serial"
        );
    }

    const RACY: &str = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";

    const ARRAY_SPLIT: &str = "
        class W { meth fill(a, lo, hi, v) {
            for (i = lo; i < hi; i = i + 1) { a[i] = v; }
            check(w: a[lo..hi]);
            return 0; } }
        main {
            w = new W;
            a = new_array(64);
            fork t1 = w.fill(a, 0, 32, 1);
            fork t2 = w.fill(a, 32, 64, 2);
            join(t1); join(t2);
        }";

    const ARRAY_RACY: &str = "
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            check(w: a[0..a.length]);
            return 0; } }
        main {
            w = new W;
            a = new_array(32);
            fork t1 = w.fill(a, 1);
            fork t2 = w.fill(a, 2);
            join(t1); join(t2);
        }";

    #[test]
    fn replay_matches_serial_fasttrack() {
        let bytes = record(RACY);
        let serial = serial_stats(&bytes, Detector::fasttrack());
        for workers in [1, 2, 4] {
            let stats = replay_trace(&bytes, &ReplayConfig::fasttrack(workers)).expect("replay");
            assert!(stats.has_races());
            assert_identical(&stats, &serial);
        }
    }

    #[test]
    fn replay_matches_serial_bigfoot_deferred_commits() {
        for src in [ARRAY_SPLIT, ARRAY_RACY] {
            let bytes = record(src);
            let serial = serial_stats(&bytes, Detector::bigfoot(ProxyTable::identity()));
            for workers in [1, 3, 8] {
                let stats = replay_trace(
                    &bytes,
                    &ReplayConfig::bigfoot(ProxyTable::identity(), workers),
                )
                .expect("replay");
                assert_identical(&stats, &serial);
            }
        }
        assert!(replay_trace(
            &record(ARRAY_SPLIT),
            &ReplayConfig::bigfoot(ProxyTable::identity(), 2)
        )
        .expect("replay")
        .races
        .is_empty());
    }

    #[test]
    fn replay_matches_serial_slimstate() {
        let bytes = record(ARRAY_RACY);
        let serial = serial_stats(&bytes, Detector::slimstate());
        let stats = replay_trace(&bytes, &ReplayConfig::slimstate(4)).expect("replay");
        assert_identical(&stats, &serial);
        assert!(stats.has_races());
    }

    #[test]
    fn worker_count_never_changes_the_report() {
        let bytes = record(ARRAY_RACY);
        let baseline = replay_trace(&bytes, &ReplayConfig::fasttrack(1)).expect("replay");
        for workers in [2, 4, 8, 64, 1000] {
            let stats = replay_trace(&bytes, &ReplayConfig::fasttrack(workers)).expect("replay");
            assert_identical(&stats, &baseline);
        }
    }

    #[test]
    fn zero_length_arrays_replay_identically() {
        // Empty allocations flow through shard pinning, fine states, and
        // adaptive shadows without panicking or perturbing space units.
        let src = "
            class W { meth scan(a, b) {
                s = 0;
                for (i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                for (i = 0; i < b.length; i = i + 1) { b[i] = s; }
                return s; } }
            main {
                w = new W;
                a = new_array(0);
                b = new_array(8);
                fork t1 = w.scan(a, b);
                fork t2 = w.scan(a, b);
                join(t1); join(t2);
            }";
        let bytes = record(src);
        for (config, serial_det) in [
            (ReplayConfig::fasttrack(3), Detector::fasttrack()),
            (ReplayConfig::slimstate(3), Detector::slimstate()),
        ] {
            let reference = serial_stats(&bytes, serial_det);
            let stats = replay_trace(&bytes, &config).expect("replay");
            assert_identical(&stats, &reference);
            assert!(stats.has_races(), "b is raced over; a contributes nothing");
        }
    }

    #[test]
    fn pipelined_replay_matches_trace_replay() {
        use crate::pipeline::PipelineConfig;
        use bigfoot_bfj::{Interp, SchedPolicy};
        for src in [RACY, ARRAY_SPLIT, ARRAY_RACY] {
            let bytes = record(src);
            let p = parse_program(src).expect("parse");
            for workers in [1, 4] {
                let config = ReplayConfig::bigfoot(ProxyTable::identity(), workers);
                let from_trace = replay_trace(&bytes, &config).expect("replay");
                let (outcome, from_ring) = replay_pipelined(
                    &PipelineConfig {
                        batch_events: 5,
                        ring_slots: 2,
                    },
                    &config,
                    |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
                );
                outcome.expect("run");
                assert_identical(&from_ring, &from_trace);
            }
        }
    }

    #[test]
    fn malformed_trace_is_an_error() {
        assert!(matches!(
            replay_trace(b"junk", &ReplayConfig::fasttrack(1)),
            Err(TraceError::BadMagic)
        ));
        let mut bytes = record(RACY);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            replay_trace(&bytes, &ReplayConfig::fasttrack(2)),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn trace_reader_yields_one_error_then_stops() {
        let mut bytes = record(RACY);
        bytes.truncate(bytes.len() - 1);
        let results: Vec<_> = TraceReader::new(&bytes).expect("header").collect();
        assert!(results.last().expect("nonempty").is_err());
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
    }
}
