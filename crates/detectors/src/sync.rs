//! Happens-before bookkeeping shared by every detector: per-thread vector
//! clocks updated at lock acquire/release, fork/join, and thread exit.

use bigfoot_bfj::ObjId;
use bigfoot_obs::fx::FxHashMap;
use bigfoot_vc::{Tid, VectorClock};

/// Vector-clock state for threads and locks.
///
/// Follows the standard FastTrack treatment: a release copies the
/// releaser's clock into the lock and ticks the releaser; an acquire joins
/// the lock's clock into the acquirer; fork/join behave like
/// release/acquire edges between parent and child.
#[derive(Debug, Default, Clone)]
pub struct SyncClocks {
    threads: Vec<VectorClock>,
    locks: FxHashMap<ObjId, VectorClock>,
    volatiles: FxHashMap<(ObjId, u32), VectorClock>,
    sync_ops: u64,
}

impl SyncClocks {
    /// Creates state with the main thread (tid 0) started.
    pub fn new() -> SyncClocks {
        let mut s = SyncClocks::default();
        s.ensure(Tid(0));
        s
    }

    #[inline]
    fn ensure(&mut self, t: Tid) {
        while self.threads.len() <= t.index() {
            let tid = Tid(self.threads.len() as u32);
            let mut c = VectorClock::new();
            // Every thread starts at local time 1 so its epochs are never
            // confused with the bottom epoch 0@0.
            c.set(tid, 1);
            self.threads.push(c);
        }
    }

    /// The current clock of thread `t`.
    #[inline]
    pub fn clock(&mut self, t: Tid) -> &VectorClock {
        self.ensure(t);
        &self.threads[t.index()]
    }

    /// Number of synchronization operations processed.
    pub fn sync_ops(&self) -> u64 {
        self.sync_ops
    }

    /// Processes `acq(lock)` by thread `t`.
    pub fn acquire(&mut self, t: Tid, lock: ObjId) {
        self.ensure(t);
        self.sync_ops += 1;
        if let Some(lc) = self.locks.get(&lock) {
            self.threads[t.index()].join(lc);
        }
    }

    /// Processes `rel(lock)` by thread `t`.
    pub fn release(&mut self, t: Tid, lock: ObjId) {
        self.ensure(t);
        self.sync_ops += 1;
        let c = self.threads[t.index()].clone();
        self.locks.insert(lock, c);
        self.threads[t.index()].tick(t);
    }

    /// Processes a fork edge from `parent` to `child`.
    pub fn fork(&mut self, parent: Tid, child: Tid) {
        self.ensure(parent);
        self.ensure(child);
        self.sync_ops += 1;
        let pc = self.threads[parent.index()].clone();
        self.threads[child.index()].join(&pc);
        self.threads[parent.index()].tick(parent);
    }

    /// Processes a join edge from completed `child` into `parent`.
    pub fn join(&mut self, parent: Tid, child: Tid) {
        self.ensure(parent);
        self.ensure(child);
        self.sync_ops += 1;
        let cc = self.threads[child.index()].clone();
        self.threads[parent.index()].join(&cc);
    }

    /// Processes a thread exit (ticks the exiting thread so later joins see
    /// a final clock distinct from its last accesses).
    pub fn exit(&mut self, t: Tid) {
        self.ensure(t);
        self.sync_ops += 1;
    }

    /// Processes a volatile write: release-like — the writer's time flows
    /// into the volatile location (accumulating across writers, per the
    /// JMM's total order over volatile writes).
    pub fn volatile_write(&mut self, t: Tid, obj: ObjId, field: u32) {
        self.ensure(t);
        self.sync_ops += 1;
        let c = self.threads[t.index()].clone();
        self.volatiles.entry((obj, field)).or_default().join(&c);
        self.threads[t.index()].tick(t);
    }

    /// Processes a volatile read: acquire-like — all prior volatile
    /// writes' time flows into the reader.
    pub fn volatile_read(&mut self, t: Tid, obj: ObjId, field: u32) {
        self.ensure(t);
        self.sync_ops += 1;
        if let Some(vc) = self.volatiles.get(&(obj, field)) {
            self.threads[t.index()].join(vc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_creates_happens_before() {
        let mut s = SyncClocks::new();
        let l = ObjId(0);
        // T0 releases, T1 acquires: T0's time flows into T1.
        let t0_before = s.clock(Tid(0)).clone();
        s.release(Tid(0), l);
        s.acquire(Tid(1), l);
        assert!(t0_before.leq(s.clock(Tid(1))));
    }

    #[test]
    fn release_ticks_the_releaser() {
        let mut s = SyncClocks::new();
        let before = s.clock(Tid(0)).get(Tid(0));
        s.release(Tid(0), ObjId(0));
        assert_eq!(s.clock(Tid(0)).get(Tid(0)), before + 1);
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut s = SyncClocks::new();
        let parent_before = s.clock(Tid(0)).clone();
        s.fork(Tid(0), Tid(1));
        assert!(parent_before.leq(s.clock(Tid(1))));
        // Parent ticked: its new time is not in the child.
        assert!(!s.clock(Tid(0)).clone().leq(s.clock(Tid(1))));
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut s = SyncClocks::new();
        s.fork(Tid(0), Tid(1));
        // Child does local work (tick via release pattern).
        s.release(Tid(1), ObjId(9));
        let child_clock = s.clock(Tid(1)).clone();
        s.join(Tid(0), Tid(1));
        assert!(child_clock.leq(s.clock(Tid(0))));
    }

    #[test]
    fn unrelated_threads_are_concurrent() {
        let mut s = SyncClocks::new();
        s.fork(Tid(0), Tid(1));
        s.fork(Tid(0), Tid(2));
        let c1 = s.clock(Tid(1)).clone();
        let c2 = s.clock(Tid(2)).clone();
        assert!(!c1.leq(&c2));
        assert!(!c2.leq(&c1));
    }

    #[test]
    fn threads_start_at_one() {
        let mut s = SyncClocks::new();
        assert_eq!(s.clock(Tid(0)).get(Tid(0)), 1);
        assert_eq!(s.clock(Tid(5)).get(Tid(5)), 1);
    }
}
