//! Dynamic race detectors for the BigFoot reproduction.
//!
//! Implements every detector from the paper's evaluation (Fig. 2) over the
//! BFJ interpreter's event stream — FastTrack, RedCard, SlimState,
//! SlimCard, and BigFoot's run time (DynamicBF) — as configurations of one
//! [`Detector`] engine, plus the dynamic precise-checks verifier of §5.
//!
//! See [`Detector`] for the configuration matrix and usage.

pub mod channel;
mod creplay;
mod detector;
mod djit;
mod pipeline;
mod precision;
mod replay;
mod sharded;
mod stats;
mod sync;

pub use creplay::{replay_compressed, replay_compressed_report, CompressedReplayReport};
pub use detector::{ArrayEngine, CheckSource, Detector, ProxyTable};
pub use djit::{DjitDetector, DjitState};
pub use pipeline::{
    detect_pipelined, run_pipelined, BatchSink, PipelineConfig, DEFAULT_BATCH_EVENTS,
    DEFAULT_RING_SLOTS,
};
pub use precision::{verify_precise_checks, PrecisionError};
pub use replay::{replay_pipelined, replay_trace, ReplayConfig, TraceReader, SHARDS};
pub use sharded::{djit_sharded, replay_sharded};
pub use stats::{CoarseTarget, Race, RaceTarget, Stats};
pub use sync::SyncClocks;
