//! The dynamic precise-checks verifier.
//!
//! §5 of the paper: *"we verified [address precision] via an additional
//! dynamic analysis that checks that each observed execution trace
//! performs precise checks (in the sense of Section 2)"*. This module is
//! that analysis: given a recorded trace it checks that
//!
//! * **coverage** — every access is covered by some check by the same
//!   thread on the same location: the check either precedes the access
//!   with no intervening release, or succeeds it with no intervening
//!   acquire; a write check covers reads and writes, a read check covers
//!   only reads (§5);
//! * **legitimacy** — every check is legitimate for some access by the
//!   same thread on the same location: the check either precedes the
//!   access with no intervening acquire, or succeeds it with no
//!   intervening release; a write check is legitimate only for a write
//!   access.
//!
//! Together these are exactly the conditions under which a trace "has
//! precise checks": every data race induces a check race and every check
//! race reflects a data race.

use bigfoot_bfj::{CheckTarget, Event, Loc};
use bigfoot_vc::{AccessKind, Tid};
use std::collections::HashMap;
use std::fmt;

/// One per-thread item relevant to precision checking.
#[derive(Debug, Clone)]
enum Item {
    Access(Loc, AccessKind),
    Check(Vec<(AccessKind, CheckTarget)>),
    /// Acquire-like boundary (acquire, join).
    Acq,
    /// Release-like boundary (release, fork).
    Rel,
}

/// A violation of precise-check placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecisionError {
    /// An access had no covering check.
    UncoveredAccess {
        /// The accessing thread.
        t: Tid,
        /// The location.
        loc: Loc,
        /// Read or write.
        kind: AccessKind,
    },
    /// A check was not legitimate for any access.
    IllegitimateCheck {
        /// The checking thread.
        t: Tid,
        /// Rendered description of the offending path.
        path: String,
    },
}

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionError::UncoveredAccess { t, loc, kind } => {
                write!(f, "{kind} of {loc} by {t} has no covering check")
            }
            PrecisionError::IllegitimateCheck { t, path } => {
                write!(f, "check of {path} by {t} is not legitimate for any access")
            }
        }
    }
}

impl std::error::Error for PrecisionError {}

/// True if the check target includes the location.
fn target_covers_loc(target: &CheckTarget, loc: &Loc) -> bool {
    match (target, loc) {
        (CheckTarget::Fields(o1, fs), Loc::Field(o2, f)) => o1 == o2 && fs.contains(f),
        (CheckTarget::Range(a1, r), Loc::Elem(a2, i)) => a1 == a2 && r.contains(*i),
        _ => false,
    }
}

/// Verifies that a recorded trace has precise checks.
///
/// The cost is quadratic in each thread's span lengths, which is fine for
/// the test programs this verifier runs on.
///
/// # Errors
///
/// Returns the first [`PrecisionError`] found.
pub fn verify_precise_checks(events: &[Event]) -> Result<(), PrecisionError> {
    let mut per_thread: HashMap<Tid, Vec<Item>> = HashMap::new();
    for ev in events {
        match ev {
            Event::Access { t, kind, loc } => {
                per_thread
                    .entry(*t)
                    .or_default()
                    .push(Item::Access(*loc, *kind));
            }
            Event::Check { t, paths } => {
                per_thread
                    .entry(*t)
                    .or_default()
                    .push(Item::Check(paths.clone()));
            }
            Event::Acquire { t, .. } => per_thread.entry(*t).or_default().push(Item::Acq),
            Event::Release { t, .. } => per_thread.entry(*t).or_default().push(Item::Rel),
            // Volatile accesses synchronize: a volatile write is
            // release-like, a volatile read acquire-like (§5).
            Event::VolatileWrite { t, .. } => per_thread.entry(*t).or_default().push(Item::Rel),
            Event::VolatileRead { t, .. } => per_thread.entry(*t).or_default().push(Item::Acq),
            // Fork publishes like a release; join observes like an acquire.
            Event::Fork { parent, .. } => per_thread.entry(*parent).or_default().push(Item::Rel),
            Event::Join { parent, .. } => per_thread.entry(*parent).or_default().push(Item::Acq),
            Event::ThreadExit { .. } | Event::AllocObj { .. } | Event::AllocArr { .. } => {}
        }
    }
    for (t, items) in &per_thread {
        verify_thread(*t, items)?;
    }
    Ok(())
}

fn verify_thread(t: Tid, items: &[Item]) -> Result<(), PrecisionError> {
    // Coverage of accesses.
    for (i, item) in items.iter().enumerate() {
        let Item::Access(loc, kind) = item else {
            continue;
        };
        let mut covered = false;
        // Backward: checks preceding the access with no intervening release.
        for prev in items[..i].iter().rev() {
            match prev {
                Item::Rel => break,
                Item::Check(paths)
                    if paths
                        .iter()
                        .any(|(ck, tgt)| ck.covers(*kind) && target_covers_loc(tgt, loc)) =>
                {
                    covered = true;
                    break;
                }
                _ => {}
            }
        }
        // Forward: checks succeeding the access with no intervening acquire.
        if !covered {
            for next in &items[i + 1..] {
                match next {
                    Item::Acq => break,
                    Item::Check(paths)
                        if paths
                            .iter()
                            .any(|(ck, tgt)| ck.covers(*kind) && target_covers_loc(tgt, loc)) =>
                    {
                        covered = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        if !covered {
            return Err(PrecisionError::UncoveredAccess {
                t,
                loc: *loc,
                kind: *kind,
            });
        }
    }
    // Legitimacy of checks.
    for (i, item) in items.iter().enumerate() {
        let Item::Check(paths) = item else {
            continue;
        };
        for (ck, tgt) in paths {
            let legitimate_for = |loc: &Loc, ak: AccessKind| -> bool {
                // A write check is legitimate only for a write access; a
                // read check for either.
                let kind_ok = match ck {
                    AccessKind::Write => ak == AccessKind::Write,
                    AccessKind::Read => true,
                };
                kind_ok && target_covers_loc(tgt, loc)
            };
            let mut legit = check_covers_nothing(tgt);
            // Backward: accesses the check succeeds with no intervening
            // release.
            if !legit {
                for prev in items[..i].iter().rev() {
                    match prev {
                        Item::Rel => break,
                        Item::Access(loc, ak) if legitimate_for(loc, *ak) => {
                            legit = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            // Forward: accesses the check precedes with no intervening
            // acquire.
            if !legit {
                for next in &items[i + 1..] {
                    match next {
                        Item::Acq => break,
                        Item::Access(loc, ak) if legitimate_for(loc, *ak) => {
                            legit = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            if !legit {
                return Err(PrecisionError::IllegitimateCheck {
                    t,
                    path: format!("{tgt:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Empty ranges check nothing and are vacuously legitimate.
fn check_covers_nothing(tgt: &CheckTarget) -> bool {
    match tgt {
        CheckTarget::Fields(_, fs) => fs.is_empty(),
        CheckTarget::Range(_, r) => r.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, Interp, RecordingSink, SchedPolicy};

    fn trace(src: &str) -> Vec<Event> {
        let p = parse_program(src).unwrap();
        let mut sink = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut sink)
            .unwrap();
        sink.events
    }

    #[test]
    fn per_access_checks_are_precise() {
        let events = trace(
            "class C { field f; }
             main {
                 c = new C;
                 check(w: c.f);
                 c.f = 1;
                 x = c.f;
                 check(r: c.f);
             }",
        );
        verify_precise_checks(&events).unwrap();
    }

    #[test]
    fn missing_check_is_uncovered() {
        let events = trace(
            "class C { field f; }
             main { c = new C; c.f = 1; }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        assert!(matches!(err, PrecisionError::UncoveredAccess { .. }));
    }

    #[test]
    fn read_check_does_not_cover_write() {
        let events = trace(
            "class C { field f; }
             main { c = new C; check(r: c.f); c.f = 1; }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        assert!(matches!(err, PrecisionError::UncoveredAccess { .. }));
    }

    #[test]
    fn write_check_covers_prior_read_in_span() {
        // Fig. 1: the read check in a read-modify-write is redundant with
        // the write check.
        let events = trace(
            "class C { field f; }
             main { c = new C; x = c.f; c.f = x + 1; check(w: c.f); }",
        );
        verify_precise_checks(&events).unwrap();
    }

    #[test]
    fn check_after_release_is_a_false_alarm_risk() {
        // The write check placed after the release is not legitimate.
        let events = trace(
            "class C { field f; }
             class L { }
             main {
                 c = new C; l = new L;
                 acq(l);
                 c.f = 1;
                 rel(l);
                 check(w: c.f);
             }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        assert!(matches!(err, PrecisionError::IllegitimateCheck { .. }));
    }

    #[test]
    fn figure3_single_check_covers_three_accesses() {
        // The paper's Fig. 3: one check suffices for all three reads of
        // b.f — it covers the locked read at line 2 (forward, no
        // intervening acquire before the check), the unlocked read at
        // line 4 (backward), and the second locked read at line 7
        // (forward across the acquire? no — the *check precedes* that
        // access with no intervening release).
        let events = trace(
            "class C { field f; }
             class L { }
             main {
                 c = new C; l = new L;
                 acq(l);
                 x = c.f;
                 rel(l);
                 y = c.f;
                 check(r: c.f);
                 acq(l);
                 z = c.f;
                 rel(l);
             }",
        );
        verify_precise_checks(&events).unwrap();
    }

    #[test]
    fn figure4b_check_after_release_is_illegitimate() {
        // Fig. 4(b): a check outside the critical section would produce a
        // check race with no corresponding data race.
        let events = trace(
            "class C { field f; }
             class L { }
             main {
                 c = new C; l = new L;
                 acq(l);
                 c.f = 1;
                 check(w: c.f);
                 rel(l);
                 check(w: c.f);
             }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        assert!(matches!(err, PrecisionError::IllegitimateCheck { .. }));
    }

    #[test]
    fn deferred_array_check_covers_loop_accesses() {
        let events = trace(
            "main {
                 a = new_array(10);
                 for (i = 0; i < 10; i = i + 1) { a[i] = i; }
                 check(w: a[0..10]);
             }",
        );
        verify_precise_checks(&events).unwrap();
    }

    #[test]
    fn partial_range_check_leaves_rest_uncovered() {
        let events = trace(
            "main {
                 a = new_array(10);
                 for (i = 0; i < 10; i = i + 1) { a[i] = i; }
                 check(w: a[0..5]);
             }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        match err {
            PrecisionError::UncoveredAccess { loc, .. } => {
                assert_eq!(format!("{loc}"), "a0[5]");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn check_with_no_matching_access_is_illegitimate() {
        let events = trace(
            "class C { field f; field g; }
             main { c = new C; c.f = 1; check(w: c.f, w: c.g); }",
        );
        let err = verify_precise_checks(&events).unwrap_err();
        assert!(matches!(err, PrecisionError::IllegitimateCheck { .. }));
    }

    #[test]
    fn empty_range_checks_are_vacuous() {
        let events = trace(
            "main {
                 a = new_array(10);
                 check(r: a[5..5]);
             }",
        );
        verify_precise_checks(&events).unwrap();
    }
}
