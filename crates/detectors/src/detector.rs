//! The unified dynamic race detector engine.
//!
//! Every detector the paper evaluates is a configuration of the same
//! machinery (Fig. 2):
//!
//! | detector   | check source        | array engine        | field proxies |
//! |------------|---------------------|---------------------|---------------|
//! | FastTrack  | every access        | fine per-element    | no            |
//! | RedCard    | instrumented checks | fine per-element    | static        |
//! | SlimState  | every access        | footprint + adaptive| no            |
//! | SlimCard   | instrumented checks | footprint + adaptive| static        |
//! | BigFoot    | instrumented checks | footprint + adaptive| static        |
//!
//! RedCard/SlimCard consume programs instrumented by the RedCard
//! redundant-check eliminator; BigFoot consumes programs instrumented by
//! the full check-placement analysis (which also moves and coalesces
//! checks). The engine itself is identical — that is the paper's point:
//! the win comes from *which checks arrive*, not from a different runtime.

use crate::stats::{Race, RaceTarget, Stats};
use crate::sync::SyncClocks;
use bigfoot_bfj::{ArrId, CheckTarget, ConcreteRange, Event, EventSink, Loc, ObjId};
use bigfoot_obs::fx::FxHashMap;
use bigfoot_shadow::{ArrayShadow, FieldGrouping, Footprint, ObjectShadow, Slab};
use bigfoot_vc::{AccessKind, Tid, VarState};
use std::sync::Arc;

/// Where the detector's race checks come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSource {
    /// Check every raw heap access (FastTrack / SlimState style); `Check`
    /// events are ignored.
    RawAccesses,
    /// Consume `check(C)` events from instrumentation; raw accesses are
    /// only counted (RedCard / SlimCard / BigFoot style).
    CheckEvents,
}

/// How array checks are processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayEngine {
    /// One shadow location per element, checked immediately.
    Fine,
    /// Per-thread footprints committed at synchronization operations, over
    /// the adaptive compressed array shadow.
    Footprint,
}

/// Field-proxy groupings per class (from the static proxy analysis).
///
/// Groupings are shared (`Arc`), so handing one to each allocated object
/// is a reference-count bump, not a clone of the assignment vector.
#[derive(Debug, Clone, Default)]
pub struct ProxyTable {
    /// `by_class[c]` is the grouping for class index `c`; missing entries
    /// mean identity (no compression).
    pub by_class: Vec<Option<Arc<FieldGrouping>>>,
}

impl ProxyTable {
    /// A table with no compression at all.
    pub fn identity() -> ProxyTable {
        ProxyTable::default()
    }

    pub(crate) fn grouping(&self, class: u32) -> Option<&Arc<FieldGrouping>> {
        self.by_class.get(class as usize).and_then(|g| g.as_ref())
    }
}

/// Per-object shadow entry: the field states and the grouping that maps
/// field indices onto them, fetched with a single slab lookup per check.
#[derive(Debug, Clone)]
pub(crate) struct ObjEntry {
    pub(crate) grouping: Arc<FieldGrouping>,
    pub(crate) shadow: ObjectShadow,
}

/// Retained recycled footprints; beyond this the allocator takes over.
pub(crate) const FP_POOL_MAX: usize = 256;

/// How often (in sync ops) shadow space is sampled for the peak statistic.
pub(crate) const SPACE_SAMPLE_PERIOD: u64 = 256;

/// A configurable precise dynamic race detector over the event stream.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
/// use bigfoot_detectors::Detector;
///
/// let p = parse_program(
///     "class C { field x; meth poke(v) { this.x = v; return 0; } }
///      main {
///          c = new C;
///          fork t1 = c.poke(1);
///          fork t2 = c.poke(2);
///          join(t1); join(t2);
///      }",
/// )?;
/// let mut ft = Detector::fasttrack();
/// Interp::new(&p, SchedPolicy::default()).run(&mut ft)?;
/// let stats = ft.finish();
/// assert!(stats.has_races(), "unsynchronized writes race");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Detector {
    name: String,
    source: CheckSource,
    engine: ArrayEngine,
    proxies: ProxyTable,
    clocks: SyncClocks,
    objects: Slab<ObjId, ObjEntry>,
    arrays_fine: Slab<ArrId, Vec<VarState>>,
    arrays_adaptive: Slab<ArrId, ArrayShadow>,
    /// Pending footprints, indexed by dense thread id. A thread touches
    /// few arrays per release-free span, so a small vector beats nested
    /// hashing on the per-access hot path.
    footprints: Vec<Vec<(ArrId, Footprint)>>,
    /// Drained footprints recycled across commit spans, so steady-state
    /// commits allocate nothing.
    fp_pool: Vec<Footprint>,
    /// Identity groupings for classes absent from the proxy table, shared
    /// per field count instead of rebuilt per allocation.
    identity_groupings: FxHashMap<u32, Arc<FieldGrouping>>,
    /// Scratch for proxy-group deduplication in multi-field checks.
    group_scratch: Vec<u32>,
    /// Events processed, aggregated locally and flushed to the `det.events`
    /// obs counter at finalization — a per-event `count!` would put an
    /// atomic check on the hottest loop in the pipeline.
    events: u64,
    stats: Stats,
    finished: bool,
}

impl Detector {
    /// Creates a detector with an explicit configuration.
    pub fn new(
        name: impl Into<String>,
        source: CheckSource,
        engine: ArrayEngine,
        proxies: ProxyTable,
    ) -> Detector {
        Detector {
            name: name.into(),
            source,
            engine,
            proxies,
            clocks: SyncClocks::new(),
            objects: Slab::new(),
            arrays_fine: Slab::new(),
            arrays_adaptive: Slab::new(),
            footprints: Vec::new(),
            fp_pool: Vec::new(),
            identity_groupings: FxHashMap::default(),
            group_scratch: Vec::new(),
            events: 0,
            stats: Stats::default(),
            finished: false,
        }
    }

    /// The FastTrack baseline: a check on every access, fine shadow.
    pub fn fasttrack() -> Detector {
        Detector::new(
            "FastTrack",
            CheckSource::RawAccesses,
            ArrayEngine::Fine,
            ProxyTable::identity(),
        )
    }

    /// RedCard: instrumented checks (redundancy-eliminated), fine arrays,
    /// static field proxies.
    pub fn redcard(proxies: ProxyTable) -> Detector {
        Detector::new(
            "RedCard",
            CheckSource::CheckEvents,
            ArrayEngine::Fine,
            proxies,
        )
    }

    /// SlimState: a check on every access, dynamic array compression.
    pub fn slimstate() -> Detector {
        Detector::new(
            "SlimState",
            CheckSource::RawAccesses,
            ArrayEngine::Footprint,
            ProxyTable::identity(),
        )
    }

    /// SlimCard: RedCard instrumentation + SlimState array compression.
    pub fn slimcard(proxies: ProxyTable) -> Detector {
        Detector::new(
            "SlimCard",
            CheckSource::CheckEvents,
            ArrayEngine::Footprint,
            proxies,
        )
    }

    /// DynamicBF: BigFoot instrumentation (moved/coalesced checks),
    /// dynamic array compression, static field proxies.
    pub fn bigfoot(proxies: ProxyTable) -> Detector {
        Detector::new(
            "BigFoot",
            CheckSource::CheckEvents,
            ArrayEngine::Footprint,
            proxies,
        )
    }

    /// The detector's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read access to the running statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Finalizes the run (commits any remaining footprints, records final
    /// space) and returns the statistics.
    pub fn finish(mut self) -> Stats {
        self.finalize();
        std::mem::take(&mut self.stats)
    }

    fn finalize(&mut self) {
        if self.finished {
            return;
        }
        // Ascending thread-id order keeps the final commits (and any races
        // they surface) deterministic — the replay engine must be able to
        // reproduce serial verdicts bit-for-bit.
        for ti in 0..self.footprints.len() {
            self.commit_footprints(Tid(ti as u32));
        }
        self.sample_space();
        self.stats.sync_ops = self.clocks.sync_ops();
        bigfoot_obs::count_named("det.events", self.events);
        bigfoot_vc::path_stats::flush();
        self.stats.publish();
        self.finished = true;
    }

    // ---------------- shadow operations ----------------

    fn field_check(&mut self, t: Tid, obj: ObjId, fields: &[u32], kind: AccessKind) {
        self.stats.checks += 1;
        self.stats.field_checks += 1;
        let Some(entry) = self.objects.get_mut(obj) else {
            return; // unseen allocation (library object): skip
        };
        let clock = self.clocks.clock(t);
        if let [f] = fields {
            // Single-field fast path (every raw access): no dedup needed.
            let g = entry.grouping.group(*f);
            self.stats.shadow_ops += 1;
            if let Err(info) = entry.shadow.apply(g, kind, t, clock) {
                self.stats.report_race(Race {
                    target: RaceTarget::Field(obj, g),
                    info,
                });
            }
            return;
        }
        // Deduplicate proxy groups within one coalesced path: p.x/y/z over
        // a single group performs a single shadow operation.
        let groups = &mut self.group_scratch;
        groups.clear();
        groups.extend(fields.iter().map(|f| entry.grouping.group(*f)));
        groups.sort_unstable();
        groups.dedup();
        for &g in groups.iter() {
            self.stats.shadow_ops += 1;
            if let Err(info) = entry.shadow.apply(g, kind, t, clock) {
                self.stats.report_race(Race {
                    target: RaceTarget::Field(obj, g),
                    info,
                });
            }
        }
    }

    fn array_check(&mut self, t: Tid, arr: ArrId, range: ConcreteRange, kind: AccessKind) {
        self.stats.checks += 1;
        self.stats.array_checks += 1;
        match self.engine {
            ArrayEngine::Fine => {
                let clock = self.clocks.clock(t);
                let Some(states) = self.arrays_fine.get_mut(arr) else {
                    return;
                };
                for i in range.indices() {
                    if i < 0 || i as usize >= states.len() {
                        continue;
                    }
                    self.stats.shadow_ops += 1;
                    if let Err(info) = states[i as usize].apply(kind, t, clock) {
                        self.stats.report_race(Race {
                            target: RaceTarget::Elems(arr, ConcreteRange::singleton(i)),
                            info,
                        });
                    }
                }
            }
            ArrayEngine::Footprint => {
                self.stats.footprint_ops += 1;
                let ti = t.index();
                if self.footprints.len() <= ti {
                    self.footprints.resize_with(ti + 1, Vec::new);
                }
                let per_thread = &mut self.footprints[ti];
                match per_thread.iter_mut().find(|(a, _)| *a == arr) {
                    Some((_, fp)) => fp.add(kind, range),
                    None => {
                        // Recycle a drained footprint when one is pooled;
                        // its range sets keep their capacity.
                        let mut fp = self.fp_pool.pop().unwrap_or_default();
                        fp.add(kind, range);
                        per_thread.push((arr, fp));
                    }
                }
            }
        }
    }

    /// Commits all pending footprints of thread `t` against the adaptive
    /// array shadow (called at each of `t`'s synchronization operations).
    fn commit_footprints(&mut self, t: Tid) {
        let Some(per_arr) = self.footprints.get_mut(t.index()) else {
            return;
        };
        if per_arr.is_empty() {
            return;
        }
        let clock = self.clocks.clock(t);
        for (arr, fp) in per_arr.iter_mut() {
            if fp.is_empty() {
                continue;
            }
            let Some(shadow) = self.arrays_adaptive.get_mut(*arr) else {
                continue;
            };
            for (kind, ranges) in [
                (AccessKind::Write, fp.writes.ranges()),
                (AccessKind::Read, fp.reads.ranges()),
            ] {
                for &r in ranges {
                    let out = shadow.apply(r, kind, t, clock);
                    self.stats.shadow_ops += out.shadow_ops;
                    for (extent, info) in out.races {
                        self.stats.report_race(Race {
                            target: RaceTarget::Elems(*arr, extent),
                            info,
                        });
                    }
                }
            }
        }
        // Every footprint was applied; drain the entries (so the
        // per-thread list does not grow with the number of distinct arrays
        // ever touched) and recycle the emptied footprints.
        for (_, mut fp) in per_arr.drain(..) {
            fp.clear();
            if self.fp_pool.len() < FP_POOL_MAX {
                self.fp_pool.push(fp);
            }
        }
    }

    fn sample_space(&mut self) {
        let mut units: u64 = 0;
        for o in self.objects.values() {
            units += o.shadow.space_units() as u64;
        }
        for a in self.arrays_fine.values() {
            units += a.iter().map(VarState::space_units).sum::<usize>() as u64;
        }
        for a in self.arrays_adaptive.values() {
            units += a.space_units() as u64;
        }
        for per_arr in &self.footprints {
            units += per_arr
                .iter()
                .map(|(_, fp)| fp.space_units())
                .sum::<usize>() as u64;
        }
        self.stats.observe_space(units);
    }

    fn on_sync(&mut self, ev: &Event) {
        // Deferred checks commit *before* the synchronization updates the
        // clocks, so they run with the clock the accesses happened under.
        match ev {
            Event::Acquire { t, lock } => {
                self.commit_footprints(*t);
                self.clocks.acquire(*t, *lock);
            }
            Event::Release { t, lock } => {
                self.commit_footprints(*t);
                self.clocks.release(*t, *lock);
            }
            Event::Fork { parent, child } => {
                self.commit_footprints(*parent);
                self.clocks.fork(*parent, *child);
            }
            Event::Join { parent, child } => {
                self.commit_footprints(*parent);
                self.clocks.join(*parent, *child);
            }
            Event::ThreadExit { t } => {
                self.commit_footprints(*t);
                self.clocks.exit(*t);
            }
            Event::VolatileWrite { t, obj, field } => {
                self.commit_footprints(*t);
                self.clocks.volatile_write(*t, *obj, *field);
            }
            Event::VolatileRead { t, obj, field } => {
                self.commit_footprints(*t);
                self.clocks.volatile_read(*t, *obj, *field);
            }
            _ => unreachable!("on_sync requires a sync event"),
        }
        if self.clocks.sync_ops().is_multiple_of(SPACE_SAMPLE_PERIOD) {
            self.sample_space();
        }
    }
}

impl Drop for Detector {
    /// A detector abandoned before [`Detector::finish`] — an interpreter
    /// `RuntimeError`, a panic unwinding past the run, a caller that just
    /// dropped it — still publishes its aggregated `det.events` count and
    /// the thread-local `bigfoot_vc::path_stats` tallies. Without this,
    /// a partial run's `bfc profile` report shows zero events and zero
    /// fast/slow-path hits as if the detector never ran. Shadow-state
    /// finalization (footprint commits, the final space sample) is *not*
    /// performed here: it can surface new races, and a drop during unwind
    /// must stay infallible.
    fn drop(&mut self) {
        if !self.finished {
            bigfoot_obs::count_named("det.events", self.events);
            bigfoot_vc::path_stats::flush();
        }
    }
}

impl EventSink for Detector {
    fn event(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::AllocObj {
                obj, class, fields, ..
            } => {
                let grouping = match self.proxies.grouping(*class) {
                    Some(g) => Arc::clone(g),
                    None => {
                        let n = *fields;
                        Arc::clone(
                            self.identity_groupings
                                .entry(n)
                                .or_insert_with(|| Arc::new(FieldGrouping::identity(n as usize))),
                        )
                    }
                };
                let shadow = ObjectShadow::new(grouping.groups);
                self.objects.insert(*obj, ObjEntry { grouping, shadow });
            }
            Event::AllocArr { arr, len, .. } => match self.engine {
                ArrayEngine::Fine => {
                    self.arrays_fine
                        .insert(*arr, vec![VarState::new(); *len as usize]);
                }
                ArrayEngine::Footprint => {
                    self.arrays_adaptive
                        .insert(*arr, ArrayShadow::new(*len as usize));
                }
            },
            Event::Access { t, kind, loc } => {
                match kind {
                    AccessKind::Read => self.stats.reads += 1,
                    AccessKind::Write => self.stats.writes += 1,
                }
                if self.source == CheckSource::RawAccesses {
                    match loc {
                        Loc::Field(obj, f) => self.field_check(*t, *obj, &[*f], *kind),
                        Loc::Elem(arr, i) => {
                            self.array_check(*t, *arr, ConcreteRange::singleton(*i), *kind)
                        }
                    }
                }
            }
            Event::Check { t, paths } => {
                if self.source == CheckSource::CheckEvents {
                    for (kind, target) in paths {
                        match target {
                            CheckTarget::Fields(obj, idxs) => {
                                self.field_check(*t, *obj, idxs, *kind)
                            }
                            CheckTarget::Range(arr, r) => {
                                if !r.is_empty() {
                                    self.array_check(*t, *arr, *r, *kind)
                                }
                            }
                        }
                    }
                }
            }
            sync => self.on_sync(sync),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, Interp, SchedPolicy};

    fn run(src: &str, mut det: Detector) -> Stats {
        let p = parse_program(src).expect("parse");
        Interp::new(&p, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        det.finish()
    }

    const RACY: &str = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";

    const LOCKED: &str = "
        class C { field x; meth poke(l, v) { acq(l); this.x = v; rel(l); return 0; } }
        class L { }
        main {
            c = new C;
            l = new L;
            fork t1 = c.poke(l, 1);
            fork t2 = c.poke(l, 2);
            join(t1); join(t2);
        }";

    #[test]
    fn fasttrack_finds_field_race() {
        let stats = run(RACY, Detector::fasttrack());
        assert!(stats.has_races());
        assert_eq!(stats.check_ratio(), 1.0);
    }

    #[test]
    fn fasttrack_accepts_locked_program() {
        let stats = run(LOCKED, Detector::fasttrack());
        assert!(!stats.has_races(), "{:?}", stats.races);
    }

    #[test]
    fn slimstate_agrees_with_fasttrack_on_fields() {
        assert!(run(RACY, Detector::slimstate()).has_races());
        assert!(!run(LOCKED, Detector::slimstate()).has_races());
    }

    #[test]
    fn array_race_found_by_raw_detectors() {
        let src = "
            class W { meth fill(a, v) {
                for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
                return 0; } }
            main {
                w = new W;
                a = new_array(64);
                fork t1 = w.fill(a, 1);
                fork t2 = w.fill(a, 2);
                join(t1); join(t2);
            }";
        let ft = run(src, Detector::fasttrack());
        assert!(ft.has_races());
        let ss = run(src, Detector::slimstate());
        assert!(ss.has_races());
        // SlimState commits whole-array footprints: far fewer shadow ops.
        assert!(
            ss.shadow_ops < ft.shadow_ops / 4,
            "ss={} ft={}",
            ss.shadow_ops,
            ft.shadow_ops
        );
    }

    #[test]
    fn race_free_array_split_work() {
        let src = "
            class W { meth fill(a, lo, hi, v) {
                for (i = lo; i < hi; i = i + 1) { a[i] = v; }
                return 0; } }
            main {
                w = new W;
                a = new_array(64);
                fork t1 = w.fill(a, 0, 32, 1);
                fork t2 = w.fill(a, 32, 64, 2);
                join(t1); join(t2);
            }";
        for det in [Detector::fasttrack(), Detector::slimstate()] {
            let stats = run(src, det);
            assert!(!stats.has_races(), "{:?}", stats.races);
        }
    }

    #[test]
    fn check_events_drive_instrumented_detectors() {
        // A hand-instrumented program: the coalesced check covers the
        // whole traversal, as BigFoot's static analysis would emit.
        let src = "
            main {
                a = new_array(100);
                for (i = 0; i < 100; i = i + 1) { a[i] = i; }
                check(w: a[0..100]);
            }";
        let stats = run(src, Detector::bigfoot(ProxyTable::identity()));
        assert_eq!(stats.checks, 1);
        assert_eq!(stats.shadow_ops, 1, "single coalesced shadow op");
        assert!((stats.check_ratio() - 0.01).abs() < 1e-9);
        assert!(!stats.has_races());
    }

    #[test]
    fn coalesced_field_check_single_op_with_proxies() {
        let src = "
            class P { field x; field y; field z; }
            main {
                p = new P;
                p.x = 1; p.y = 2; p.z = 3;
                check(w: p.x/y/z);
            }";
        // Proxy table: class 0 groups all three fields together.
        let proxies = ProxyTable {
            by_class: vec![Some(Arc::new(
                bigfoot_shadow::FieldGrouping::from_assignment(vec![0, 0, 0]),
            ))],
        };
        let stats = run(src, Detector::bigfoot(proxies));
        assert_eq!(stats.checks, 1);
        assert_eq!(stats.shadow_ops, 1);
        // Without proxies the same check needs three shadow ops.
        let stats = run(src, Detector::bigfoot(ProxyTable::identity()));
        assert_eq!(stats.shadow_ops, 3);
    }

    #[test]
    fn deferred_checks_still_find_races() {
        // Both threads write the whole array with only a terminal check;
        // footprints commit at thread exit and the race is caught.
        let src = "
            class W { meth fill(a, v) {
                for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
                check(w: a[0..a.length]);
                return 0; } }
            main {
                w = new W;
                a = new_array(32);
                fork t1 = w.fill(a, 1);
                fork t2 = w.fill(a, 2);
                join(t1); join(t2);
            }";
        let stats = run(src, Detector::bigfoot(ProxyTable::identity()));
        assert!(stats.has_races());
    }

    #[test]
    fn space_accounting_reflects_compression() {
        let src = "
            main {
                a = new_array(1000);
                for (i = 0; i < 1000; i = i + 1) { a[i] = i; }
                check(w: a[0..1000]);
            }";
        let bf = run(src, Detector::bigfoot(ProxyTable::identity()));
        let ft = run(src, Detector::fasttrack());
        assert!(
            bf.shadow_space_end * 10 < ft.shadow_space_end,
            "bf={} ft={}",
            bf.shadow_space_end,
            ft.shadow_space_end
        );
    }

    #[test]
    fn sync_ops_counted() {
        let stats = run(LOCKED, Detector::fasttrack());
        // 2 forks + 2 joins + 2 acq + 2 rel + 3 exits
        assert_eq!(stats.sync_ops, 11);
    }
}
