//! Race detection directly on grammar-compressed (`BFTC`) traces.
//!
//! The offline replay path (`crate::replay`) runs three stages:
//! serial clock annotation, sharded detection, deterministic merge.
//! This module replaces stage 1's linear decode with a walk over the
//! compressed grammar that *memoizes* repeated rules: a loop body with
//! no intervening synchronization is annotated a bounded number of
//! times and its remaining repetitions are applied in O(1), so the
//! annotation pass runs sublinearly in the expanded trace length —
//! while the final [`Stats`] stay byte-identical to [`replay_trace`]
//! (and hence to the serial detector) at every worker count.
//!
//! # Why skipping repetitions is sound
//!
//! A rule is only considered *pure* if its expansion transitively
//! contains nothing but `Access` and `Check` events — no sync, no fork/
//! join, no allocations. Inside a pure run:
//!
//! - **Clocks are frozen.** Clocks only change at sync operations, so
//!   every emitted item snapshots the same `Arc`'d clock.
//! - **Shadow state reaches a fixpoint after one repetition.** The
//!   FastTrack cell ([`bigfoot_vc::VarState`]) returns a race *before*
//!   mutating state, and its same-epoch fast paths make a second
//!   application of an identical operation sequence a pure no-op that
//!   can only re-report the *same* races — which
//!   [`Stats::report_race`]'s per-location deduplication already
//!   suppresses. So repetitions beyond the second produce no new
//!   verdicts.
//! - **Footprints grow self-similarly.** Array indices are delta-coded
//!   per `(thread, array)` stream, so repetition `k` touches repetition
//!   1's indices shifted by `(k-1)·D` where `D` is the rule's net index
//!   delta. The annotator's greedy [`RangeSet`](bigfoot_shadow) merge
//!   is order-dependent, so instead of reasoning about it symbolically
//!   the walker *probes*: it expands three repetitions, checks that the
//!   third left every touched range-set structurally identical to the
//!   second except for its last range's upper bound growing by exactly
//!   the expected per-repetition delta (same `lo`, same stride, delta
//!   divisible by the stride), and only then extrapolates — that shape
//!   is translation-invariant, so each further repetition provably
//!   repeats it.
//!
//! The probe is also what keeps varying-shape runs honest: under a fine
//! (per-element) engine an advancing index produces different items in
//! repetitions 2 and 3, the equivalence check fails, and the walker
//! falls back to full expansion. Memoization never *changes* a verdict;
//! it only skips work it has proven redundant.
//!
//! Shard-side `shadow_ops` accounting uses a measured bracket: the
//! walker marks the third repetition with [`Item::MemoBegin`] /
//! [`Item::MemoScale`] on exactly the shards the second repetition
//! touched, and each shard scales the bracket's measured cost by the
//! number of skipped repetitions.

use crate::detector::{ArrayEngine, CheckSource};
use crate::replay::{detect_and_merge_parts, Annotator, Item, ItemSink, ReplayConfig, ShardQueues};
use crate::stats::Stats;
use bigfoot_bfj::trace::compress::{read_compressed, CompressedTrace, DeltaState};
use bigfoot_bfj::trace::TraceError;
use bigfoot_bfj::{CheckTarget, ConcreteRange, Event, EventSink, Loc};
use bigfoot_obs::fx::FxHashMap;
use bigfoot_vc::AccessKind;
use std::sync::Arc;

/// Minimum run length worth memoizing: three repetitions are expanded
/// as the probe, so anything shorter gains nothing.
const MIN_MEMO_REPS: u64 = 4;

/// Telemetry of one compressed replay run, for honest perf reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressedReplayReport {
    /// Accepted memoized runs (rule runs whose tail was skipped).
    pub memo_runs: u64,
    /// Runs that were probed but fell back to full expansion.
    pub memo_fallbacks: u64,
    /// Events accounted without being materialized.
    pub skipped_events: u64,
    /// Total (logical) events in the trace.
    pub total_events: u64,
}

// ---------------- per-symbol static analysis ----------------

/// Per-`(thread, array)` stream summary of one symbol's expansion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StreamInfo {
    /// Net index delta over one expansion (sum of the symbol's
    /// delta-coded element accesses on this stream).
    net: i64,
    /// The expansion pushes *read* ranges into this stream's footprint
    /// under the active configuration.
    reads: bool,
    /// Likewise for writes.
    writes: bool,
}

/// What the walker needs to know about a symbol before running it.
#[derive(Debug, Clone, Default)]
struct SymInfo {
    /// Pure (only `Access`/`Check` events) and its stream deltas fit in
    /// `i64` — the preconditions for attempting memoization.
    memoable: bool,
    /// Touched streams, sorted by key for deterministic iteration.
    streams: Vec<((u32, u32), StreamInfo)>,
}

fn finish_info(memoable: bool, streams: FxHashMap<(u32, u32), StreamInfo>) -> SymInfo {
    if !memoable {
        return SymInfo {
            memoable,
            streams: Vec::new(),
        };
    }
    let mut streams: Vec<_> = streams.into_iter().collect();
    streams.sort_unstable_by_key(|(k, _)| *k);
    SymInfo { memoable, streams }
}

/// Computes purity, net stream deltas, and footprint-touch flags for
/// every symbol. Rules reference only earlier symbols, so one forward
/// pass suffices.
fn analyze(ct: &CompressedTrace, config: &ReplayConfig) -> Vec<SymInfo> {
    // Which event kind actually pushes footprints under this config:
    // raw accesses do iff the source is RawAccesses, check ranges do
    // iff the source is CheckEvents — and either only under the
    // Footprint engine (the fine engine emits items instead, which the
    // probe compares directly).
    let raw_fp =
        config.source == CheckSource::RawAccesses && config.engine == ArrayEngine::Footprint;
    let chk_fp =
        config.source == CheckSource::CheckEvents && config.engine == ArrayEngine::Footprint;
    let mut out: Vec<SymInfo> = Vec::with_capacity(ct.dict.len() + ct.rules.len());
    for ev in &ct.dict {
        let mut streams: FxHashMap<(u32, u32), StreamInfo> = FxHashMap::default();
        let memoable = match ev {
            Event::Access { t, kind, loc } => {
                if let Loc::Elem(arr, d) = loc {
                    let si = streams.entry((t.0, arr.0)).or_default();
                    si.net = *d;
                    if raw_fp {
                        match kind {
                            AccessKind::Read => si.reads = true,
                            AccessKind::Write => si.writes = true,
                        }
                    }
                }
                true
            }
            Event::Check { t, paths } => {
                for (kind, target) in paths {
                    if let CheckTarget::Range(arr, r) = target {
                        let si = streams.entry((t.0, arr.0)).or_default();
                        if chk_fp && !r.is_empty() {
                            match kind {
                                AccessKind::Read => si.reads = true,
                                AccessKind::Write => si.writes = true,
                            }
                        }
                    }
                }
                true
            }
            _ => false,
        };
        out.push(finish_info(memoable, streams));
    }
    for body in &ct.rules {
        let mut streams: FxHashMap<(u32, u32), StreamInfo> = FxHashMap::default();
        let mut memoable = true;
        for &(sym, count) in body {
            let child = &out[sym as usize];
            if !child.memoable {
                memoable = false;
                break;
            }
            for &(key, csi) in &child.streams {
                let si = streams.entry(key).or_default();
                match csi
                    .net
                    .checked_mul(count as i64)
                    .and_then(|x| si.net.checked_add(x))
                {
                    Some(v) => si.net = v,
                    None => memoable = false,
                }
                si.reads |= csi.reads;
                si.writes |= csi.writes;
            }
            if !memoable {
                break;
            }
        }
        out.push(finish_info(memoable, streams));
    }
    out
}

// ---------------- recording item sink ----------------

/// Wraps the shard queues so the walker can record (and shard-mask) the
/// items a probe repetition emits while still routing them normally.
struct MemoSink {
    queues: ShardQueues,
    rec: Option<Vec<(usize, Item)>>,
    mask: u64,
}

impl ItemSink for MemoSink {
    #[inline]
    fn item(&mut self, shard: usize, item: Item) {
        if let Some(rec) = &mut self.rec {
            self.mask |= 1u64 << shard;
            rec.push((shard, item.clone()));
        }
        self.queues.item(shard, item);
    }
}

/// Item equality modulo sequence number, with clock snapshots compared
/// by pointer (clocks are frozen inside a pure run, so the annotator's
/// snapshot cache hands out the same `Arc`; a differing pointer means a
/// sync slipped in and memoization must not apply). Any variant other
/// than the two check kinds is conservatively unequal.
fn item_equiv(a: &Item, b: &Item) -> bool {
    match (a, b) {
        (
            Item::FieldCheck {
                obj: o1,
                fields: f1,
                kind: k1,
                t: t1,
                clock: c1,
                ..
            },
            Item::FieldCheck {
                obj: o2,
                fields: f2,
                kind: k2,
                t: t2,
                clock: c2,
                ..
            },
        ) => o1 == o2 && f1 == f2 && k1 == k2 && t1 == t2 && Arc::ptr_eq(c1, c2),
        (
            Item::FineRange {
                arr: a1,
                range: r1,
                kind: k1,
                t: t1,
                clock: c1,
                ..
            },
            Item::FineRange {
                arr: a2,
                range: r2,
                kind: k2,
                t: t2,
                clock: c2,
                ..
            },
        ) => a1 == a2 && r1 == r2 && k1 == k2 && t1 == t2 && Arc::ptr_eq(c1, c2),
        _ => false,
    }
}

fn items_equiv(a: &[(usize, Item)], b: &[(usize, Item)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((s1, i1), (s2, i2))| s1 == s2 && item_equiv(i1, i2))
}

// ---------------- footprint growth probe ----------------

type SetSnap = (Vec<ConcreteRange>, Vec<ConcreteRange>);

/// Validates one range-set's growth between probe repetitions 2 and 3
/// and returns the total growth to apply for the skipped repetitions,
/// or `None` if the shape is not provably extrapolable.
fn set_growth(
    v2: &[ConcreteRange],
    v3: &[ConcreteRange],
    expected: i64,
    times: u64,
) -> Option<i64> {
    if v2 == v3 {
        // Unchanged is only extrapolable when the configuration predicts
        // zero growth: with a nonzero net delta, "no visible change" can
        // mean the shifted indices were merely still contained — a later
        // repetition could escape, so fall back.
        return (expected == 0).then_some(0);
    }
    if expected == 0 || v2.is_empty() || v2.len() != v3.len() {
        return None;
    }
    let n = v2.len();
    if v2[..n - 1] != v3[..n - 1] {
        return None;
    }
    let (l2, l3) = (v2[n - 1], v3[n - 1]);
    if l2.lo != l3.lo || l2.step != l3.step {
        return None;
    }
    if l3.hi.checked_sub(l2.hi) != Some(expected) {
        return None;
    }
    // Same grid alignment for every further repetition.
    if expected % l3.step != 0 {
        return None;
    }
    let total = expected.checked_mul(i64::try_from(times).ok()?)?;
    l3.hi.checked_add(total)?;
    Some(total)
}

// ---------------- the walker ----------------

/// Scalar annotator tallies that scale linearly with skipped
/// repetitions (everything else — shadow ops, races, space — is owned
/// by the shards or fixed at sync points).
#[derive(Clone, Copy)]
struct Scalars {
    reads: u64,
    writes: u64,
    checks: u64,
    array_checks: u64,
    field_checks: u64,
    footprint_ops: u64,
    events: u64,
}

struct Walker<'a> {
    ct: &'a CompressedTrace,
    info: Vec<SymInfo>,
    ann: Annotator<MemoSink>,
    /// Per-`(thread, array)` index reconstruction, advanced directly
    /// (wrapping, exactly like per-event decode) over skipped runs.
    delta: DeltaState,
    source: CheckSource,
    /// Inside a memoization probe: nested memoization is disabled so
    /// the three probe repetitions measure full expansions.
    probing: bool,
    report: CompressedReplayReport,
}

impl Walker<'_> {
    fn scalars(&self) -> Scalars {
        Scalars {
            reads: self.ann.stats.reads,
            writes: self.ann.stats.writes,
            checks: self.ann.stats.checks,
            array_checks: self.ann.stats.array_checks,
            field_checks: self.ann.stats.field_checks,
            footprint_ops: self.ann.stats.footprint_ops,
            events: self.ann.events,
        }
    }

    fn scale_scalars(&mut self, before: Scalars, after: Scalars, times: u64) {
        let s = &mut self.ann.stats;
        s.reads += (after.reads - before.reads) * times;
        s.writes += (after.writes - before.writes) * times;
        s.checks += (after.checks - before.checks) * times;
        s.array_checks += (after.array_checks - before.array_checks) * times;
        s.field_checks += (after.field_checks - before.field_checks) * times;
        s.footprint_ops += (after.footprint_ops - before.footprint_ops) * times;
        let ev_delta = (after.events - before.events) * times;
        self.ann.events += ev_delta;
        self.report.skipped_events += ev_delta;
    }

    /// Clones the touched streams' footprint range-sets (reads, writes).
    fn snap(&self, streams: &[((u32, u32), StreamInfo)]) -> Vec<SetSnap> {
        streams
            .iter()
            .map(|&((t, arr), _)| {
                self.ann
                    .footprints
                    .get(t as usize)
                    .and_then(|per| per.iter().find(|(a, _)| a.0 == arr))
                    .map(|(_, fp)| (fp.reads.ranges().to_vec(), fp.writes.ranges().to_vec()))
                    .unwrap_or_default()
            })
            .collect()
    }

    fn walk_top(&mut self) {
        let ct = self.ct;
        for &(sym, count) in &ct.top {
            self.walk(sym, count);
        }
    }

    fn walk(&mut self, sym: u64, count: u64) {
        if !self.probing && count >= MIN_MEMO_REPS && self.info[sym as usize].memoable {
            self.run_memoized(sym, count);
        } else {
            for _ in 0..count {
                self.emit_once(sym);
            }
        }
    }

    /// Expands one repetition of `sym` into the annotator. Rule bodies
    /// recurse through [`Walker::walk`], so nested runs may themselves
    /// memoize (unless a probe is in progress).
    fn emit_once(&mut self, sym: u64) {
        let ct = self.ct;
        if ct.is_rule(sym) {
            for &(s, c) in ct.rule_body(sym) {
                self.walk(s, c);
            }
        } else {
            let ev = self.delta.decode(&ct.dict[sym as usize]);
            self.ann.event(&ev);
        }
    }

    /// The memoization protocol: expand repetitions 1–3 (1 to reach the
    /// shadow/footprint fixpoint, 2–3 as the equivalence + growth
    /// probe), then account the remaining `count - 3` repetitions in
    /// O(1) if the probe proves them redundant, falling back to full
    /// expansion otherwise.
    fn run_memoized(&mut self, sym: u64, count: u64) {
        let streams = self.info[sym as usize].streams.clone();

        // Repetition 1: plain expansion (establishes the fixpoint).
        self.probing = true;
        self.emit_once(sym);

        // Repetition 2: record emitted items and their shard mask.
        self.ann.sink.rec = Some(Vec::new());
        self.ann.sink.mask = 0;
        self.emit_once(sym);
        let rec2 = self.ann.sink.rec.take().expect("recording armed");
        let mask2 = self.ann.sink.mask;
        let snap2 = self.snap(&streams);

        // Repetition 3: bracket the shards repetition 2 touched, record
        // again, and measure the scalar deltas of one repetition.
        let mut m = mask2;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            self.ann.sink.queues.item(s, Item::MemoBegin);
            m &= m - 1;
        }
        self.ann.sink.rec = Some(Vec::new());
        self.ann.sink.mask = 0;
        let before = self.scalars();
        self.emit_once(sym);
        let after = self.scalars();
        let rec3 = self.ann.sink.rec.take().expect("recording armed");
        let mask3 = self.ann.sink.mask;
        let snap3 = self.snap(&streams);
        self.probing = false;

        let times = count - 3;
        let growth = self.plan_growth(&streams, &snap2, &snap3, times);
        let fixpoint = (mask2 == mask3 && items_equiv(&rec2, &rec3))
            .then_some(growth)
            .flatten();
        if let Some(growth) = fixpoint {
            self.scale_scalars(before, after, times);
            for (i, &((t, arr), si)) in streams.iter().enumerate() {
                let (grow_r, grow_w) = growth[i];
                if grow_r > 0 || grow_w > 0 {
                    let fp = self
                        .ann
                        .footprints
                        .get_mut(t as usize)
                        .and_then(|per| per.iter_mut().find(|(a, _)| a.0 == arr))
                        .map(|(_, fp)| fp)
                        .expect("grown stream has a footprint");
                    if grow_r > 0 {
                        fp.reads.grow_last_hi(grow_r);
                    }
                    if grow_w > 0 {
                        fp.writes.grow_last_hi(grow_w);
                    }
                }
                // Keep the delta streams where full expansion would have
                // left them (wrapping, exactly like per-event decode).
                self.delta
                    .advance(t, arr, si.net.wrapping_mul(times as i64));
            }
            let mut m = mask2;
            while m != 0 {
                let s = m.trailing_zeros() as usize;
                self.ann.sink.queues.item(s, Item::MemoScale { times });
                m &= m - 1;
            }
            self.report.memo_runs += 1;
        } else {
            // Not provably redundant: expand the tail. The unmatched
            // MemoBegin markers only re-arm shard marks — harmless.
            self.report.memo_fallbacks += 1;
            for _ in 0..times {
                self.emit_once(sym);
            }
        }
    }

    /// Validates every touched stream's footprint growth between probe
    /// repetitions and returns the per-stream (reads, writes) totals to
    /// apply, or `None` if any stream is not extrapolable.
    fn plan_growth(
        &self,
        streams: &[((u32, u32), StreamInfo)],
        snap2: &[SetSnap],
        snap3: &[SetSnap],
        times: u64,
    ) -> Option<Vec<(i64, i64)>> {
        let mut out = Vec::with_capacity(streams.len());
        for (i, &(_, si)) in streams.iter().enumerate() {
            // Only singleton pushes from raw accesses shift with the
            // stream delta; instrumentation check ranges are absolute,
            // so their pushes repeat exactly and predict zero growth.
            let expect = |touched: bool| {
                if touched && self.source == CheckSource::RawAccesses {
                    si.net
                } else {
                    0
                }
            };
            let (r2, w2) = &snap2[i];
            let (r3, w3) = &snap3[i];
            let gr = set_growth(r2, r3, expect(si.reads), times)?;
            let gw = set_growth(w2, w3, expect(si.writes), times)?;
            out.push((gr, gw));
        }
        Some(out)
    }
}

/// Replays a grammar-compressed (`BFTC`) trace through the sharded
/// detection pipeline, memoizing repeated pure rules, and returns both
/// the stats and the memoization telemetry.
///
/// See [`replay_compressed`] for the plain-stats entry point and the
/// soundness discussion in the module docs.
pub fn replay_compressed_report(
    bytes: &[u8],
    config: &ReplayConfig,
) -> Result<(Stats, CompressedReplayReport), TraceError> {
    let ct = read_compressed(bytes)?;
    let info = analyze(&ct, config);
    let sink = MemoSink {
        queues: ShardQueues::new(),
        rec: None,
        mask: 0,
    };
    let mut walker = Walker {
        ct: &ct,
        info,
        ann: Annotator::with_sink(config, sink),
        delta: DeltaState::default(),
        source: config.source,
        probing: false,
        report: CompressedReplayReport {
            total_events: ct.total_events,
            ..CompressedReplayReport::default()
        },
    };
    {
        let _span = bigfoot_obs::span!("creplay.annotate");
        walker.walk_top();
        walker.ann.finalize();
    }
    let report = walker.report;
    bigfoot_obs::count_named("replay.memo.runs", report.memo_runs);
    bigfoot_obs::count_named("replay.memo.fallbacks", report.memo_fallbacks);
    bigfoot_obs::count_named("replay.memo.skipped_events", report.skipped_events);
    bigfoot_obs::trace_counter!("replay.memo.skipped_events", report.skipped_events);
    let (engine, sink, probe_fp_space, stats) = walker.ann.into_parts();
    Ok((
        detect_and_merge_parts(engine, sink.queues.0, probe_fp_space, stats, config.workers),
        report,
    ))
}

/// Replays a grammar-compressed (`BFTC`) trace and returns [`Stats`]
/// byte-identical to [`replay_trace`] over the equivalent uncompressed
/// trace — at any worker count — while annotating repeated loop bodies
/// in O(1) per repetition where provably redundant.
///
/// # Errors
///
/// Returns [`TraceError`] if the container is malformed (see
/// `bigfoot_bfj::trace::compress::read_compressed` for the validation
/// guarantees).
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, trace::compress, trace::TraceWriter, Interp, SchedPolicy};
/// use bigfoot_detectors::{replay_compressed, replay_trace, ReplayConfig};
///
/// let p = parse_program(
///     "main {
///          a = new_array(64);
///          for (i = 0; i < 64; i = i + 1) { a[i] = i; }
///      }",
/// )?;
/// let mut w = TraceWriter::new();
/// Interp::new(&p, SchedPolicy::default()).run(&mut w)?;
/// let raw = w.into_bytes();
/// let packed = compress::compress(&raw)?;
///
/// let config = ReplayConfig::slimstate(2);
/// let from_compressed = replay_compressed(&packed, &config)?;
/// let from_raw = replay_trace(&raw, &config)?;
/// assert_eq!(
///     from_compressed.to_json().to_string_compact(),
///     from_raw.to_json().to_string_compact(),
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_compressed(bytes: &[u8], config: &ReplayConfig) -> Result<Stats, TraceError> {
    replay_compressed_report(bytes, config).map(|(stats, _)| stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ProxyTable;
    use crate::replay::replay_trace;
    use crate::Detector;
    use bigfoot_bfj::trace::compress::compress;
    use bigfoot_bfj::trace::TraceWriter;
    use bigfoot_bfj::{parse_program, Interp, SchedPolicy};

    fn record(src: &str) -> Vec<u8> {
        let p = parse_program(src).expect("parse");
        let mut w = TraceWriter::new();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut w)
            .expect("run");
        w.into_bytes()
    }

    fn serial_stats(bytes: &[u8], mut det: Detector) -> Stats {
        for ev in crate::replay::TraceReader::new(bytes).expect("header") {
            det.event(&ev.expect("event"));
        }
        det.finish()
    }

    fn all_configs(workers: usize) -> Vec<(&'static str, ReplayConfig, Detector)> {
        vec![
            (
                "fasttrack",
                ReplayConfig::fasttrack(workers),
                Detector::fasttrack(),
            ),
            (
                "redcard",
                ReplayConfig::redcard(ProxyTable::identity(), workers),
                Detector::redcard(ProxyTable::identity()),
            ),
            (
                "slimstate",
                ReplayConfig::slimstate(workers),
                Detector::slimstate(),
            ),
            (
                "slimcard",
                ReplayConfig::slimcard(ProxyTable::identity(), workers),
                Detector::slimcard(ProxyTable::identity()),
            ),
            (
                "bigfoot",
                ReplayConfig::bigfoot(ProxyTable::identity(), workers),
                Detector::bigfoot(ProxyTable::identity()),
            ),
        ]
    }

    fn assert_matches_everywhere(src: &str) {
        let raw = record(src);
        let packed = compress(&raw).expect("compress");
        for workers in [1, 4] {
            for (name, config, det) in all_configs(workers) {
                let serial = serial_stats(&raw, det);
                let from_raw = replay_trace(&raw, &config).expect("replay");
                let from_packed = replay_compressed(&packed, &config).expect("creplay");
                assert_eq!(
                    from_packed.to_json().to_string_compact(),
                    from_raw.to_json().to_string_compact(),
                    "{name} w={workers}: compressed vs raw replay"
                );
                assert_eq!(
                    from_packed.to_json().to_string_compact(),
                    serial.to_json().to_string_compact(),
                    "{name} w={workers}: compressed vs serial"
                );
                assert_eq!(from_packed.races, serial.races, "{name} w={workers}");
            }
        }
    }

    const LOOPY_RACY: &str = "
        class W { meth fill(a, v) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = v; }
            check(w: a[0..a.length]);
            return 0; } }
        main {
            w = new W;
            a = new_array(48);
            fork t1 = w.fill(a, 1);
            fork t2 = w.fill(a, 2);
            join(t1); join(t2);
        }";

    const SYNC_IN_LOOP: &str = "
        class L { field g; }
        class W {
            field x;
            meth bump(l, n) {
                for (i = 0; i < n; i = i + 1) {
                    acq(l); this.x = this.x + 1; rel(l);
                }
                return 0; } }
        main {
            l = new L;
            w = new W;
            fork t1 = w.bump(l, 24);
            fork t2 = w.bump(l, 24);
            join(t1); join(t2);
        }";

    const FIELD_LOOP_RACY: &str = "
        class C { field x; meth spin(n) {
            for (i = 0; i < n; i = i + 1) { this.x = i; }
            return 0; } }
        main {
            c = new C;
            fork t1 = c.spin(32);
            fork t2 = c.spin(32);
            join(t1); join(t2);
        }";

    #[test]
    fn compressed_replay_matches_raw_everywhere() {
        for src in [LOOPY_RACY, SYNC_IN_LOOP, FIELD_LOOP_RACY] {
            assert_matches_everywhere(src);
        }
    }

    #[test]
    fn memoization_actually_fires_on_pure_loops() {
        let raw = record(
            "main {
                a = new_array(256);
                for (i = 0; i < 256; i = i + 1) { a[i] = i; }
             }",
        );
        let packed = compress(&raw).expect("compress");
        let (stats, report) =
            replay_compressed_report(&packed, &ReplayConfig::slimstate(1)).expect("creplay");
        assert!(report.memo_runs > 0, "pure loop must memoize: {report:?}");
        assert!(
            report.skipped_events > report.total_events / 2,
            "most of the trace should be skipped: {report:?}"
        );
        let serial = serial_stats(&raw, Detector::slimstate());
        assert_eq!(
            stats.to_json().to_string_compact(),
            serial.to_json().to_string_compact()
        );
    }

    #[test]
    fn fine_engine_advancing_indices_fall_back() {
        // FastTrack items carry absolute singleton ranges, so an
        // advancing loop produces different items in probe reps 2 and 3
        // and must fall back — and still match exactly.
        let raw = record(
            "main {
                a = new_array(128);
                for (i = 0; i < 128; i = i + 1) { a[i] = i; }
             }",
        );
        let packed = compress(&raw).expect("compress");
        let (stats, report) =
            replay_compressed_report(&packed, &ReplayConfig::fasttrack(1)).expect("creplay");
        assert_eq!(report.skipped_events, 0, "{report:?}");
        let serial = serial_stats(&raw, Detector::fasttrack());
        assert_eq!(
            stats.to_json().to_string_compact(),
            serial.to_json().to_string_compact()
        );
    }

    #[test]
    fn malformed_container_is_an_error() {
        assert!(matches!(
            replay_compressed(b"junk", &ReplayConfig::fasttrack(1)),
            Err(TraceError::BadMagic)
        ));
        let packed = compress(&record("main { a = new_array(4); a[0] = 1; }")).expect("compress");
        let mut cut = packed.clone();
        cut.truncate(cut.len() - 1);
        assert!(replay_compressed(&cut, &ReplayConfig::fasttrack(1)).is_err());
    }
}
