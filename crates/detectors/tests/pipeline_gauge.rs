//! Regression for the `pipeline.depth_max` wart: it is a high-water
//! mark, and it used to be flushed through `count_named`, which *sums* —
//! so two pipelined runs reported a "max" up to twice the ring capacity.
//! Now flushed via `gauge_max_named`, repeated flushes keep the max.
//!
//! Lives in its own integration binary (one test, own process) because
//! it asserts on the absolute value of a globally named gauge, which
//! in-crate unit tests running in parallel would also touch.

use bigfoot_bfj::{parse_program, Event, EventSink, Interp, SchedPolicy};
use bigfoot_detectors::{run_pipelined, PipelineConfig};

/// Drains slowly so the producer keeps the tiny ring full and every run
/// is guaranteed to hit the maximum possible depth.
#[derive(Default)]
struct SlowSink {
    events: u64,
}

impl EventSink for SlowSink {
    fn event(&mut self, _ev: &Event) {
        self.events += 1;
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

#[test]
fn depth_max_reports_the_max_across_runs_not_the_sum() {
    let _g = bigfoot_obs::EnabledGuard::new();
    let src = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
        }";
    let p = parse_program(src).expect("parse");
    // Two slots, one-event batches: a full ring means depth 2, and the
    // slow consumer guarantees every run gets there.
    let config = PipelineConfig {
        batch_events: 1,
        ring_slots: 2,
    };
    let capacity = 2u64;
    for run in 0..2 {
        let (outcome, sink) = run_pipelined(
            &config,
            |sink| Interp::new(&p, SchedPolicy::default()).run(sink),
            SlowSink::default(),
        );
        outcome.expect("run");
        assert!(
            sink.events > u64::from(capacity as u32),
            "run {run} too short"
        );
        let depth_max = bigfoot_obs::snapshot().gauge("pipeline.depth_max");
        assert!(
            (1..=capacity).contains(&depth_max),
            "after run {run}: depth_max = {depth_max}, must stay within ring \
             capacity {capacity} (a summed flush would exceed it)"
        );
    }
    assert_eq!(
        bigfoot_obs::snapshot().gauge("pipeline.depth_max"),
        capacity,
        "the slow consumer keeps the ring full, so the high-water mark is the capacity"
    );
}
