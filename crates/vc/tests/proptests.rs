//! Property tests for the adaptive (inline / spilled) [`VectorClock`]
//! against a plain `Vec<u32>` reference model — the exact representation
//! the clock had before it became adaptive. Whatever mix of operations a
//! run applies, and whichever side of the spill boundary the touched
//! thread ids fall on, the adaptive clock must be observationally
//! indistinguishable from the reference.

use bigfoot_vc::{Tid, VectorClock, INLINE_THREADS};
use proptest::prelude::*;

/// The pre-adaptive representation, verbatim: a growable vector of
/// explicit entries with implicit zeros past the end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RefClock {
    entries: Vec<u32>,
}

impl RefClock {
    fn get(&self, t: usize) -> u32 {
        self.entries.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, value: u32) {
        if self.entries.len() <= t {
            self.entries.resize(t + 1, 0);
        }
        self.entries[t] = value;
    }

    fn tick(&mut self, t: usize) -> u32 {
        let v = self.get(t).saturating_add(1);
        self.set(t, v);
        v
    }

    fn join(&mut self, other: &RefClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    fn leq(&self, other: &RefClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }
}

/// One mutation step. Thread ids range over `0..2 * INLINE_THREADS`, so
/// sequences routinely straddle the spill boundary in both directions.
#[derive(Debug, Clone, Copy)]
enum Op {
    Set(usize, u32),
    Tick(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let tid = 0usize..(2 * INLINE_THREADS);
    prop_oneof![
        (tid.clone(), 0u32..1000).prop_map(|(t, v)| Op::Set(t, v)),
        tid.prop_map(Op::Tick),
    ]
}

fn apply(ops: &[Op]) -> (VectorClock, RefClock) {
    let mut vc = VectorClock::new();
    let mut rc = RefClock::default();
    for &op in ops {
        match op {
            Op::Set(t, v) => {
                vc.set(Tid(t as u32), v);
                rc.set(t, v);
            }
            Op::Tick(t) => {
                assert_eq!(vc.tick(Tid(t as u32)), rc.tick(t));
            }
        }
    }
    (vc, rc)
}

/// Every observation the clock API offers, compared entry by entry.
fn assert_observably_equal(vc: &VectorClock, rc: &RefClock) {
    assert_eq!(vc.len(), rc.entries.len(), "explicit entry count");
    assert_eq!(vc.is_empty(), rc.entries.is_empty());
    for t in 0..2 * INLINE_THREADS + 2 {
        assert_eq!(vc.get(Tid(t as u32)), rc.get(t), "entry {t}");
        assert_eq!(vc.epoch(Tid(t as u32)).clock(), rc.get(t));
    }
    let seen: Vec<(u32, u32)> = vc.iter().map(|(t, v)| (t.0, v)).collect();
    let expect: Vec<(u32, u32)> = rc
        .entries
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &v)| (i as u32, v))
        .collect();
    assert_eq!(seen, expect, "iter() view");
}

proptest! {
    /// Arbitrary set/tick sequences are observationally identical to the
    /// Vec reference, on either side of the spill boundary.
    #[test]
    fn ops_match_reference(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (vc, rc) = apply(&ops);
        assert_observably_equal(&vc, &rc);
        // Small-id-only prefixes must never have spilled.
        if ops.iter().all(|op| match op {
            Op::Set(t, _) | Op::Tick(t) => *t < INLINE_THREADS,
        }) {
            prop_assert!(vc.is_inline(), "ids < {} must stay inline", INLINE_THREADS);
        }
    }

    /// `join` agrees with the reference pointwise max, including the
    /// length extension, for every inline/spilled pairing.
    #[test]
    fn join_matches_reference(
        a_ops in prop::collection::vec(op_strategy(), 0..30),
        b_ops in prop::collection::vec(op_strategy(), 0..30),
    ) {
        let (mut vc_a, mut rc_a) = apply(&a_ops);
        let (vc_b, rc_b) = apply(&b_ops);
        vc_a.join(&vc_b);
        rc_a.join(&rc_b);
        assert_observably_equal(&vc_a, &rc_a);
    }

    /// Happens-before (`leq`) agrees with the reference in both
    /// directions, and equality agrees with observational equality.
    #[test]
    fn leq_and_eq_match_reference(
        a_ops in prop::collection::vec(op_strategy(), 0..30),
        b_ops in prop::collection::vec(op_strategy(), 0..30),
    ) {
        let (vc_a, rc_a) = apply(&a_ops);
        let (vc_b, rc_b) = apply(&b_ops);
        prop_assert_eq!(vc_a.leq(&vc_b), rc_a.leq(&rc_b));
        prop_assert_eq!(vc_b.leq(&vc_a), rc_b.leq(&rc_a));
        prop_assert_eq!(vc_a == vc_b, rc_a == rc_b);
    }

    /// The exact spill boundary: the same value set at ids
    /// `INLINE_THREADS - 1`, `INLINE_THREADS`, `INLINE_THREADS + 1`
    /// behaves identically to the reference, and only the first stays
    /// inline.
    #[test]
    fn spill_boundary(v in 1u32..100, prefix in prop::collection::vec(op_strategy(), 0..10)) {
        for (t, must_inline) in [
            (INLINE_THREADS - 1, true),
            (INLINE_THREADS, false),
            (INLINE_THREADS + 1, false),
        ] {
            let small: Vec<Op> = prefix
                .iter()
                .copied()
                .filter(|op| match op {
                    Op::Set(t, _) | Op::Tick(t) => *t < INLINE_THREADS,
                })
                .collect();
            let (mut vc, mut rc) = apply(&small);
            vc.set(Tid(t as u32), v);
            rc.set(t, v);
            prop_assert_eq!(vc.is_inline(), must_inline, "boundary id {}", t);
            assert_observably_equal(&vc, &rc);
        }
    }

    /// `tick` saturates at `u32::MAX` exactly like the reference's
    /// `saturating_add`, inline and spilled alike (the PR 2 overflow
    /// case).
    #[test]
    fn tick_saturates_like_reference(t in 0usize..(2 * INLINE_THREADS)) {
        let mut vc = VectorClock::new();
        let mut rc = RefClock::default();
        vc.set(Tid(t as u32), u32::MAX - 1);
        rc.set(t, u32::MAX - 1);
        for _ in 0..3 {
            prop_assert_eq!(vc.tick(Tid(t as u32)), rc.tick(t));
        }
        prop_assert_eq!(vc.get(Tid(t as u32)), u32::MAX);
        assert_observably_equal(&vc, &rc);
    }
}
