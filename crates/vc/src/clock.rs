use crate::{path_stats, Epoch, Tid};

/// Number of thread entries a clock stores inline before spilling to the
/// heap.
///
/// Every benchmark in the suite forks a handful of worker threads, so the
/// overwhelmingly common clock fits in a small fixed array. Keeping those
/// entries in the struct makes `clone` (the release/fork/volatile-write
/// hot path in `SyncClocks`) and read-state inflation in
/// [`VarState`](crate::VarState) a plain memcpy with **zero heap
/// allocation**; only programs that touch a thread id at or above this
/// bound pay for a `Vec`. Spills are tallied in the `vc.clock.spills`
/// counter (see [`crate::path_stats`]) so a run can prove the allocation-free
/// claim for itself.
pub const INLINE_THREADS: usize = 8;

/// A vector clock: one logical clock entry per thread.
///
/// Entries missing from the underlying storage are implicitly zero, so
/// clocks stay short in programs where only a few threads interact. The
/// representation is adaptive: up to [`INLINE_THREADS`] entries live
/// inline in the struct (no heap allocation at all); a clock that records
/// a thread id past that bound spills to a heap vector, transparently to
/// every caller.
///
/// # Examples
///
/// ```
/// use bigfoot_vc::{Tid, VectorClock};
///
/// let mut a = VectorClock::new();
/// a.tick(Tid(0));
/// let mut b = VectorClock::new();
/// b.tick(Tid(1));
/// b.join(&a);
/// assert!(a.leq(&b));
/// assert!(!b.leq(&a));
/// ```
#[derive(Clone)]
enum Repr {
    /// `slots[..len]` are the explicit entries; `slots[len..]` are zero
    /// (an invariant every growth path preserves, so growing `len` never
    /// needs to clear anything).
    Inline {
        len: u8,
        slots: [u32; INLINE_THREADS],
    },
    /// The explicit entries, exactly as the pre-adaptive representation
    /// stored them.
    Spilled(Vec<u32>),
}

/// See the [module-level examples](VectorClock#examples).
#[derive(Clone)]
pub struct VectorClock {
    repr: Repr,
}

impl Default for VectorClock {
    fn default() -> Self {
        VectorClock {
            repr: Repr::Inline {
                len: 0,
                slots: [0; INLINE_THREADS],
            },
        }
    }
}

impl VectorClock {
    /// Creates the zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The explicit (possibly zero) entries as a slice.
    #[inline]
    fn entries(&self) -> &[u32] {
        match &self.repr {
            Repr::Inline { len, slots } => &slots[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Grows the explicit-entry count to at least `n`, spilling to the
    /// heap when `n` exceeds the inline capacity.
    #[inline]
    fn grow(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                if n <= INLINE_THREADS {
                    *len = (*len).max(n as u8);
                } else {
                    path_stats::clock_spill();
                    let mut v = Vec::with_capacity(n);
                    v.extend_from_slice(&slots[..*len as usize]);
                    v.resize(n, 0);
                    self.repr = Repr::Spilled(v);
                }
            }
            Repr::Spilled(v) => {
                if v.len() < n {
                    v.resize(n, 0);
                }
            }
        }
    }

    /// The clock value for thread `t` (zero if never recorded).
    #[inline]
    pub fn get(&self, t: Tid) -> u32 {
        self.entries().get(t.index()).copied().unwrap_or(0)
    }

    /// Sets thread `t`'s entry to `value`.
    #[inline]
    pub fn set(&mut self, t: Tid, value: u32) {
        let i = t.index();
        self.grow(i + 1);
        match &mut self.repr {
            Repr::Inline { slots, .. } => slots[i] = value,
            Repr::Spilled(v) => v[i] = value,
        }
    }

    /// Increments thread `t`'s entry by one and returns the new value.
    ///
    /// The increment **saturates** at `u32::MAX` instead of overflowing: a
    /// wrapped clock would reset the thread's time to zero and silently
    /// order *every* prior access before all later ones, corrupting
    /// happens-before (and the unchecked `+ 1` panicked in debug builds).
    /// Saturation is the conservative direction — once a thread's clock
    /// pins at `u32::MAX`, later operations of that thread are treated as
    /// contemporaneous with its last tick, which can only under-report
    /// orderings, never invent them. At one tick per synchronization
    /// operation, reaching 2³² ticks is out of scope for these workloads.
    pub fn tick(&mut self, t: Tid) -> u32 {
        let v = self.get(t).saturating_add(1);
        self.set(t, v);
        v
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        let theirs = other.entries();
        self.grow(theirs.len());
        let mine = match &mut self.repr {
            Repr::Inline { len, slots } => &mut slots[..*len as usize],
            Repr::Spilled(v) => v.as_mut_slice(),
        };
        for (mine, theirs) in mine.iter_mut().zip(theirs.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Pointwise comparison: true iff `self[t] <= other[t]` for all `t`.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        let theirs = other.entries();
        self.entries()
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= theirs.get(i).copied().unwrap_or(0))
    }

    /// The epoch `t@self[t]` for thread `t`.
    #[inline]
    pub fn epoch(&self, t: Tid) -> Epoch {
        Epoch::new(t, self.get(t))
    }

    /// Number of explicit (possibly zero) entries stored.
    ///
    /// This is the space-accounting size used by the shadow-memory
    /// benchmarks; an epoch counts as 1 and a clock as `len().max(1)`.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spilled(v) => v.len(),
        }
    }

    /// True if no entry has ever been set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the entries live inline in the struct (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Iterates over `(Tid, clock)` pairs with nonzero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, u32)> + '_ {
        self.entries()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (Tid(i as u32), v))
    }
}

/// Equality is over the explicit entry list, exactly as when the entries
/// were a plain `Vec<u32>`: same explicit length, same values. The
/// storage flavor (inline vs spilled) is invisible — it is a deterministic
/// function of the operations applied, not part of the value.
impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for VectorClock {}

impl std::fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorClock")
            .field("entries", &self.entries())
            .finish()
    }
}

impl std::fmt::Display for VectorClock {
    /// Renders the nonzero entries labelled with their thread ids, e.g.
    /// `<T0@5,T3@2>` (matching [`VectorClock::iter`]'s view). The previous
    /// unlabelled `<v0,v1,…>` form was ambiguous for sparse clocks: `<0,7>`
    /// and `<0,0,7>` print identically once implicit zeros are involved.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (n, (t, v)) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}@{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_leq_everything() {
        let z = VectorClock::new();
        let mut c = VectorClock::new();
        c.tick(Tid(3));
        assert!(z.leq(&c));
        assert!(z.leq(&z));
        assert!(!c.leq(&z));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(Tid(0), 5);
        a.set(Tid(1), 1);
        let mut b = VectorClock::new();
        b.set(Tid(1), 7);
        a.join(&b);
        assert_eq!(a.get(Tid(0)), 5);
        assert_eq!(a.get(Tid(1)), 7);
    }

    #[test]
    fn tick_returns_new_value() {
        let mut a = VectorClock::new();
        assert_eq!(a.tick(Tid(2)), 1);
        assert_eq!(a.tick(Tid(2)), 2);
        assert_eq!(a.get(Tid(2)), 2);
        assert_eq!(a.get(Tid(0)), 0);
    }

    #[test]
    fn epoch_extraction() {
        let mut a = VectorClock::new();
        a.set(Tid(1), 9);
        let e = a.epoch(Tid(1));
        assert_eq!(e.tid(), Tid(1));
        assert_eq!(e.clock(), 9);
    }

    #[test]
    fn tick_saturates_instead_of_wrapping() {
        let mut a = VectorClock::new();
        a.set(Tid(1), u32::MAX - 1);
        assert_eq!(a.tick(Tid(1)), u32::MAX);
        // A further tick pins at the maximum rather than wrapping to 0
        // (which would destroy every happens-before edge for the thread).
        assert_eq!(a.tick(Tid(1)), u32::MAX);
        assert_eq!(a.get(Tid(1)), u32::MAX);
    }

    #[test]
    fn display_labels_nonzero_entries() {
        let mut a = VectorClock::new();
        assert_eq!(a.to_string(), "<>");
        a.set(Tid(0), 5);
        a.set(Tid(3), 2);
        // Sparse entries are unambiguous because each carries its tid.
        assert_eq!(a.to_string(), "<T0@5,T3@2>");
    }

    #[test]
    fn leq_with_different_lengths() {
        let mut a = VectorClock::new();
        a.set(Tid(5), 1);
        let b = VectorClock::new();
        assert!(!a.leq(&b));
        assert!(b.leq(&a));
    }

    #[test]
    fn small_clocks_stay_inline() {
        let mut a = VectorClock::new();
        for i in 0..INLINE_THREADS {
            a.tick(Tid(i as u32));
        }
        assert!(a.is_inline(), "≤{INLINE_THREADS} threads must not spill");
        assert_eq!(a.len(), INLINE_THREADS);
        assert!(a.clone().is_inline(), "clones of inline clocks stay inline");
    }

    #[test]
    fn spill_at_boundary_preserves_entries() {
        let mut a = VectorClock::new();
        for i in 0..INLINE_THREADS {
            a.set(Tid(i as u32), (i + 1) as u32);
        }
        let inline_copy = a.clone();
        a.set(Tid(INLINE_THREADS as u32), 99);
        assert!(!a.is_inline(), "entry {INLINE_THREADS} forces a spill");
        for i in 0..INLINE_THREADS {
            assert_eq!(a.get(Tid(i as u32)), (i + 1) as u32);
        }
        assert_eq!(a.get(Tid(INLINE_THREADS as u32)), 99);
        // Equality ignores the storage flavor.
        let mut b = inline_copy;
        b.set(Tid(INLINE_THREADS as u32), 99);
        assert_eq!(a, b);
    }

    #[test]
    fn join_with_spilled_clock_spills() {
        let mut wide = VectorClock::new();
        wide.set(Tid(INLINE_THREADS as u32 + 3), 4);
        assert!(!wide.is_inline());
        let mut a = VectorClock::new();
        a.set(Tid(1), 7);
        a.join(&wide);
        assert!(!a.is_inline());
        assert_eq!(a.get(Tid(1)), 7);
        assert_eq!(a.get(Tid(INLINE_THREADS as u32 + 3)), 4);
        assert_eq!(a.len(), wide.len());
    }

    #[test]
    fn spilled_equality_with_trailing_zeros_matches_vec_semantics() {
        // Explicit-length semantics carry over from the Vec representation:
        // a clock with explicit zero entries differs from one without.
        let mut a = VectorClock::new();
        a.set(Tid(INLINE_THREADS as u32), 1);
        a.set(Tid(INLINE_THREADS as u32), 0); // explicit zero, len keeps
        let b = VectorClock::new();
        assert_ne!(a, b);
        assert_eq!(a.len(), INLINE_THREADS + 1);
    }
}
