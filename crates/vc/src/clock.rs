use crate::{Epoch, Tid};

/// A vector clock: one logical clock entry per thread.
///
/// Entries missing from the underlying vector are implicitly zero, so clocks
/// stay short in programs where only a few threads interact.
///
/// # Examples
///
/// ```
/// use bigfoot_vc::{Tid, VectorClock};
///
/// let mut a = VectorClock::new();
/// a.tick(Tid(0));
/// let mut b = VectorClock::new();
/// b.tick(Tid(1));
/// b.join(&a);
/// assert!(a.leq(&b));
/// assert!(!b.leq(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// Creates the zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock value for thread `t` (zero if never recorded).
    #[inline]
    pub fn get(&self, t: Tid) -> u32 {
        self.entries.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets thread `t`'s entry to `value`.
    #[inline]
    pub fn set(&mut self, t: Tid, value: u32) {
        if self.entries.len() <= t.index() {
            self.entries.resize(t.index() + 1, 0);
        }
        self.entries[t.index()] = value;
    }

    /// Increments thread `t`'s entry by one and returns the new value.
    ///
    /// The increment **saturates** at `u32::MAX` instead of overflowing: a
    /// wrapped clock would reset the thread's time to zero and silently
    /// order *every* prior access before all later ones, corrupting
    /// happens-before (and the unchecked `+ 1` panicked in debug builds).
    /// Saturation is the conservative direction — once a thread's clock
    /// pins at `u32::MAX`, later operations of that thread are treated as
    /// contemporaneous with its last tick, which can only under-report
    /// orderings, never invent them. At one tick per synchronization
    /// operation, reaching 2³² ticks is out of scope for these workloads.
    pub fn tick(&mut self, t: Tid) -> u32 {
        let v = self.get(t).saturating_add(1);
        self.set(t, v);
        v
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Pointwise comparison: true iff `self[t] <= other[t]` for all `t`.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.entries.get(i).copied().unwrap_or(0))
    }

    /// The epoch `t@self[t]` for thread `t`.
    #[inline]
    pub fn epoch(&self, t: Tid) -> Epoch {
        Epoch::new(t, self.get(t))
    }

    /// Number of explicit (possibly zero) entries stored.
    ///
    /// This is the space-accounting size used by the shadow-memory
    /// benchmarks; an epoch counts as 1 and a clock as `len().max(1)`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry has ever been set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(Tid, clock)` pairs with nonzero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (Tid(i as u32), v))
    }
}

impl std::fmt::Display for VectorClock {
    /// Renders the nonzero entries labelled with their thread ids, e.g.
    /// `<T0@5,T3@2>` (matching [`VectorClock::iter`]'s view). The previous
    /// unlabelled `<v0,v1,…>` form was ambiguous for sparse clocks: `<0,7>`
    /// and `<0,0,7>` print identically once implicit zeros are involved.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (n, (t, v)) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}@{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_leq_everything() {
        let z = VectorClock::new();
        let mut c = VectorClock::new();
        c.tick(Tid(3));
        assert!(z.leq(&c));
        assert!(z.leq(&z));
        assert!(!c.leq(&z));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(Tid(0), 5);
        a.set(Tid(1), 1);
        let mut b = VectorClock::new();
        b.set(Tid(1), 7);
        a.join(&b);
        assert_eq!(a.get(Tid(0)), 5);
        assert_eq!(a.get(Tid(1)), 7);
    }

    #[test]
    fn tick_returns_new_value() {
        let mut a = VectorClock::new();
        assert_eq!(a.tick(Tid(2)), 1);
        assert_eq!(a.tick(Tid(2)), 2);
        assert_eq!(a.get(Tid(2)), 2);
        assert_eq!(a.get(Tid(0)), 0);
    }

    #[test]
    fn epoch_extraction() {
        let mut a = VectorClock::new();
        a.set(Tid(1), 9);
        let e = a.epoch(Tid(1));
        assert_eq!(e.tid(), Tid(1));
        assert_eq!(e.clock(), 9);
    }

    #[test]
    fn tick_saturates_instead_of_wrapping() {
        let mut a = VectorClock::new();
        a.set(Tid(1), u32::MAX - 1);
        assert_eq!(a.tick(Tid(1)), u32::MAX);
        // A further tick pins at the maximum rather than wrapping to 0
        // (which would destroy every happens-before edge for the thread).
        assert_eq!(a.tick(Tid(1)), u32::MAX);
        assert_eq!(a.get(Tid(1)), u32::MAX);
    }

    #[test]
    fn display_labels_nonzero_entries() {
        let mut a = VectorClock::new();
        assert_eq!(a.to_string(), "<>");
        a.set(Tid(0), 5);
        a.set(Tid(3), 2);
        // Sparse entries are unambiguous because each carries its tid.
        assert_eq!(a.to_string(), "<T0@5,T3@2>");
    }

    #[test]
    fn leq_with_different_lengths() {
        let mut a = VectorClock::new();
        a.set(Tid(5), 1);
        let b = VectorClock::new();
        assert!(!a.leq(&b));
        assert!(b.leq(&a));
    }
}
