use crate::{Tid, VectorClock};

/// A FastTrack epoch `t@c`: one thread id and one clock value packed into a
/// single word.
///
/// Epochs record "the last access was by thread `t` at time `c`" and replace
/// a full vector clock in the overwhelmingly common case where a location is
/// not read-shared.
///
/// # Examples
///
/// ```
/// use bigfoot_vc::{Epoch, Tid, VectorClock};
///
/// let mut c = VectorClock::new();
/// c.set(Tid(2), 4);
/// let e = Epoch::new(Tid(2), 3);
/// assert!(e.leq(&c)); // 3 <= c[2]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The bottom epoch `0@0`, used for never-accessed locations.
    pub const NONE: Epoch = Epoch(0);

    /// Creates the epoch `t@clock`.
    #[inline]
    pub fn new(t: Tid, clock: u32) -> Self {
        Epoch(((t.0 as u64) << 32) | clock as u64)
    }

    /// The thread component.
    #[inline]
    pub fn tid(self) -> Tid {
        Tid((self.0 >> 32) as u32)
    }

    /// The clock component.
    #[inline]
    pub fn clock(self) -> u32 {
        self.0 as u32
    }

    /// True if this is the bottom epoch (no recorded access).
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Epoch-vs-clock happens-before test: `t@c ⊑ V` iff `c <= V[t]`.
    ///
    /// The bottom epoch is below every clock.
    #[inline]
    pub fn leq(self, clock: &VectorClock) -> bool {
        self.clock() <= clock.get(self.tid())
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::NONE
    }
}

impl std::fmt::Display for Epoch {
    /// Renders the paper's `t@c` notation (thread first, clock second),
    /// e.g. `T3@5`; the bottom epoch prints as `⊥e`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "⊥e")
        } else {
            write!(f, "{}@{}", self.tid(), self.clock())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Epoch::new(Tid(7), 123456);
        assert_eq!(e.tid(), Tid(7));
        assert_eq!(e.clock(), 123456);
    }

    #[test]
    fn none_is_bottom() {
        let c = VectorClock::new();
        assert!(Epoch::NONE.leq(&c));
        assert!(Epoch::NONE.is_none());
    }

    #[test]
    fn display_uses_paper_notation() {
        // The paper writes epochs as `t@c`: thread first, clock second.
        assert_eq!(Epoch::new(Tid(3), 5).to_string(), "T3@5");
        assert_eq!(Epoch::new(Tid(0), 1).to_string(), "T0@1");
        assert_eq!(Epoch::NONE.to_string(), "⊥e");
    }

    #[test]
    fn leq_against_clock() {
        let mut c = VectorClock::new();
        c.set(Tid(1), 5);
        assert!(Epoch::new(Tid(1), 5).leq(&c));
        assert!(!Epoch::new(Tid(1), 6).leq(&c));
        assert!(!Epoch::new(Tid(0), 1).leq(&c));
    }
}
