use crate::{Epoch, Tid, VectorClock};

/// Whether a memory operation (or race check) is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A read access / read check.
    Read,
    /// A write access / write check. Writes conflict with everything.
    Write,
}

impl AccessKind {
    /// True if a check of kind `self` can *cover* an access of kind `other`
    /// (BigFoot §5: write checks cover reads and writes; read checks cover
    /// only reads).
    #[inline]
    pub fn covers(self, other: AccessKind) -> bool {
        match self {
            AccessKind::Write => true,
            AccessKind::Read => other == AccessKind::Read,
        }
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Description of a detected race on one shadow location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceInfo {
    /// Kind of the earlier (recorded) operation.
    pub prior: AccessKind,
    /// Thread that performed the earlier operation.
    pub prior_tid: Tid,
    /// Kind of the current operation.
    pub current: AccessKind,
    /// Thread performing the current operation.
    pub current_tid: Tid,
}

impl std::fmt::Display for RaceInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} by {} races with {} by {}",
            self.prior, self.prior_tid, self.current, self.current_tid
        )
    }
}

/// Last-read information: a single epoch in the common case, promoted to a
/// full vector clock when the location becomes read-shared.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadState {
    Epoch(Epoch),
    Shared(VectorClock),
}

/// The FastTrack adaptive shadow state for one (possibly compressed) memory
/// location.
///
/// A `VarState` records the epoch of the last write and either the epoch of
/// the last read or, when read-shared, a read vector clock. Both BigFoot and
/// every baseline detector in this reproduction store one `VarState` per
/// shadow location; the detectors differ only in how many shadow locations
/// they keep and how often they touch them.
///
/// # Examples
///
/// ```
/// use bigfoot_vc::{Tid, VectorClock, VarState};
///
/// let mut clock = VectorClock::new();
/// clock.tick(Tid(0));
/// let mut v = VarState::new();
/// v.read(Tid(0), &clock)?;
/// v.write(Tid(0), &clock)?;
/// # Ok::<(), bigfoot_vc::RaceInfo>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarState {
    write: Epoch,
    read: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        Self::new()
    }
}

impl VarState {
    /// A fresh, never-accessed shadow location.
    pub fn new() -> Self {
        VarState {
            write: Epoch::NONE,
            read: ReadState::Epoch(Epoch::NONE),
        }
    }

    /// Applies an operation of the given kind.
    ///
    /// # Errors
    ///
    /// Returns the first race found, as [`RaceInfo`].
    #[inline]
    pub fn apply(&mut self, kind: AccessKind, t: Tid, clock: &VectorClock) -> Result<(), RaceInfo> {
        match kind {
            AccessKind::Read => self.read(t, clock),
            AccessKind::Write => self.write(t, clock),
        }
    }

    /// Processes a read by thread `t` whose current clock is `clock`.
    ///
    /// # Errors
    ///
    /// Returns a write-read race if the last write is not ordered before this
    /// read.
    #[inline]
    pub fn read(&mut self, t: Tid, clock: &VectorClock) -> Result<(), RaceInfo> {
        let here = clock.epoch(t);
        // Same-epoch fast path.
        if let ReadState::Epoch(e) = &self.read {
            if *e == here {
                crate::path_stats::read_fast();
                return Ok(());
            }
        }
        crate::path_stats::read_slow();
        if !self.write.leq(clock) {
            return Err(RaceInfo {
                prior: AccessKind::Write,
                prior_tid: self.write.tid(),
                current: AccessKind::Read,
                current_tid: t,
            });
        }
        match &mut self.read {
            ReadState::Epoch(e) => {
                if e.leq(clock) {
                    // Exclusive read: replace the epoch.
                    *e = here;
                } else {
                    // Read-shared: inflate to a vector clock.
                    crate::path_stats::read_inflation();
                    let mut vc = VectorClock::new();
                    vc.set(e.tid(), e.clock());
                    vc.set(t, here.clock());
                    self.read = ReadState::Shared(vc);
                }
            }
            ReadState::Shared(vc) => {
                vc.set(t, here.clock());
            }
        }
        Ok(())
    }

    /// Processes a write by thread `t` whose current clock is `clock`.
    ///
    /// # Errors
    ///
    /// Returns a write-write or read-write race if a prior access is not
    /// ordered before this write.
    #[inline]
    pub fn write(&mut self, t: Tid, clock: &VectorClock) -> Result<(), RaceInfo> {
        let here = clock.epoch(t);
        if self.write == here {
            crate::path_stats::write_fast();
            return Ok(());
        }
        crate::path_stats::write_slow();
        if !self.write.leq(clock) {
            return Err(RaceInfo {
                prior: AccessKind::Write,
                prior_tid: self.write.tid(),
                current: AccessKind::Write,
                current_tid: t,
            });
        }
        match &self.read {
            ReadState::Epoch(e) => {
                if !e.leq(clock) {
                    return Err(RaceInfo {
                        prior: AccessKind::Read,
                        prior_tid: e.tid(),
                        current: AccessKind::Write,
                        current_tid: t,
                    });
                }
            }
            ReadState::Shared(vc) => {
                if !vc.leq(clock) {
                    let racer = vc
                        .iter()
                        .find(|(rt, c)| *c > clock.get(*rt))
                        .map(|(rt, _)| rt)
                        .unwrap_or(t);
                    return Err(RaceInfo {
                        prior: AccessKind::Read,
                        prior_tid: racer,
                        current: AccessKind::Write,
                        current_tid: t,
                    });
                }
            }
        }
        self.write = here;
        // Prior reads are dominated by this write; discard them.
        self.read = ReadState::Epoch(Epoch::NONE);
        Ok(())
    }

    /// Joins another shadow state into this one, conservatively keeping the
    /// access history of both.
    ///
    /// Used when an adaptive array representation *coarsens* or when a
    /// refined segment inherits the state of its parent. Joining never loses
    /// a potential race: a later access races with the join iff it races
    /// with at least one component, except that distinct-thread writes are
    /// approximated by inflating reads (the refinement direction used by the
    /// adaptive representation copies states instead, which is exact).
    pub fn join(&mut self, other: &VarState) {
        // Keep the write that is "most recent" in the sense of being maximal
        // per thread; with two incomparable writes a race already occurred
        // and was reported when the second write was applied.
        if self.write.is_none()
            || (!other.write.is_none() && other.write.clock() > self.write.clock())
        {
            self.write = other.write;
        }
        let mut vc = match std::mem::replace(&mut self.read, ReadState::Epoch(Epoch::NONE)) {
            ReadState::Epoch(e) => {
                let mut vc = VectorClock::new();
                if !e.is_none() {
                    vc.set(e.tid(), e.clock());
                }
                vc
            }
            ReadState::Shared(vc) => vc,
        };
        match &other.read {
            ReadState::Epoch(e) => {
                if !e.is_none() {
                    vc.set(e.tid(), vc.get(e.tid()).max(e.clock()));
                }
            }
            ReadState::Shared(o) => vc.join(o),
        }
        self.read = if vc.is_empty() {
            ReadState::Epoch(Epoch::NONE)
        } else {
            ReadState::Shared(vc)
        };
    }

    /// The space this shadow state occupies, in clock-entry units.
    ///
    /// An epoch counts as one unit; a read vector clock counts as its length.
    /// Used for Table 2's space-overhead accounting.
    pub fn space_units(&self) -> usize {
        1 + match &self.read {
            ReadState::Epoch(_) => 1,
            ReadState::Shared(vc) => vc.len().max(1),
        }
    }

    /// The epoch of the last write (bottom if never written).
    pub fn last_write(&self) -> Epoch {
        self.write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock_for(t: Tid, v: u32) -> VectorClock {
        let mut c = VectorClock::new();
        c.set(t, v);
        c
    }

    #[test]
    fn unordered_writes_race() {
        let mut v = VarState::new();
        v.write(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        let err = v.write(Tid(1), &clock_for(Tid(1), 1)).unwrap_err();
        assert_eq!(err.prior, AccessKind::Write);
        assert_eq!(err.prior_tid, Tid(0));
        assert_eq!(err.current_tid, Tid(1));
    }

    #[test]
    fn ordered_write_then_read_ok() {
        let mut v = VarState::new();
        v.write(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        // Thread 1 synchronized with thread 0 (its clock includes 0@1).
        let mut c1 = clock_for(Tid(1), 1);
        c1.set(Tid(0), 1);
        assert!(v.read(Tid(1), &c1).is_ok());
    }

    #[test]
    fn concurrent_reads_do_not_race_but_later_write_does() {
        let mut v = VarState::new();
        v.read(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        v.read(Tid(1), &clock_for(Tid(1), 1)).unwrap();
        // A write by thread 2 unordered with both reads races.
        let err = v.write(Tid(2), &clock_for(Tid(2), 1)).unwrap_err();
        assert_eq!(err.prior, AccessKind::Read);
        assert_eq!(err.current, AccessKind::Write);
    }

    #[test]
    fn same_epoch_read_is_noop() {
        let mut v = VarState::new();
        let c = clock_for(Tid(0), 3);
        v.read(Tid(0), &c).unwrap();
        let before = v.clone();
        v.read(Tid(0), &c).unwrap();
        assert_eq!(v, before);
    }

    #[test]
    fn write_resets_read_state() {
        let mut v = VarState::new();
        v.read(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        let mut c = clock_for(Tid(0), 2);
        c.set(Tid(0), 2);
        v.write(Tid(0), &c).unwrap();
        assert_eq!(v.space_units(), 2); // write epoch + bottom read epoch
    }

    #[test]
    fn shared_read_promotes_to_clock() {
        let mut v = VarState::new();
        v.read(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        v.read(Tid(1), &clock_for(Tid(1), 1)).unwrap();
        assert!(v.space_units() > 2);
    }

    #[test]
    fn join_preserves_race_with_either_component() {
        let mut a = VarState::new();
        a.read(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        let mut b = VarState::new();
        b.read(Tid(1), &clock_for(Tid(1), 1)).unwrap();
        a.join(&b);
        // A write unordered with the Tid(1) read must still race.
        let mut c = clock_for(Tid(0), 2);
        c.set(Tid(0), 2);
        assert!(a.write(Tid(0), &c).is_err());
    }

    #[test]
    fn write_read_race_detected() {
        let mut v = VarState::new();
        v.write(Tid(0), &clock_for(Tid(0), 1)).unwrap();
        let err = v.read(Tid(1), &clock_for(Tid(1), 1)).unwrap_err();
        assert_eq!(err.prior, AccessKind::Write);
        assert_eq!(err.current, AccessKind::Read);
    }
}
