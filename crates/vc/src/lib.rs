//! Vector clocks and epochs for precise dynamic race detection.
//!
//! This crate provides the happens-before machinery shared by every detector
//! in the BigFoot reproduction: plain [`VectorClock`]s (as in DJIT+),
//! lightweight [`Epoch`]s, and the FastTrack adaptive
//! [`VarState`] that stores a full read vector clock only when a location is
//! actually read-shared.
//!
//! The representation follows Flanagan & Freund, *FastTrack: Efficient and
//! Precise Dynamic Race Detection* (PLDI 2009), which the BigFoot paper uses
//! for all shadow locations.
//!
//! # Examples
//!
//! ```
//! use bigfoot_vc::{Tid, VectorClock, VarState};
//!
//! let t0 = Tid(0);
//! let t1 = Tid(1);
//! let mut c0 = VectorClock::new();
//! c0.tick(t0);
//! let mut c1 = VectorClock::new();
//! c1.tick(t1);
//!
//! let mut x = VarState::new();
//! assert!(x.write(t0, &c0).is_ok());
//! // t1 has not synchronized with t0, so this read races with the write.
//! assert!(x.read(t1, &c1).is_err());
//! ```

mod clock;
mod epoch;
pub mod path_stats;
mod state;

pub use clock::{VectorClock, INLINE_THREADS};
pub use epoch::Epoch;
pub use state::{AccessKind, RaceInfo, VarState};

/// A thread identifier.
///
/// Thread ids are small dense integers assigned by the interpreter in spawn
/// order; they index directly into [`VectorClock`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u32);

impl Tid {
    /// The index of this thread in a vector clock.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}
