//! Thread-local fast/slow-path tallies for [`VarState`](crate::VarState).
//!
//! The FastTrack read/write hot paths run once per shadow operation — the
//! innermost loop of the whole pipeline — so even the *disabled* cost of a
//! `bigfoot_obs::count!` site (one relaxed atomic load and branch each) is
//! measurable there. Instead, the paths bump plain thread-local cells and
//! [`flush`] publishes the accumulated tallies to the observability
//! registry under the same counter names as before
//! (`vc.read.fast_path`, …). Detectors flush at finalization; the replay
//! engine flushes per shard on its worker threads.
//!
//! Tallies accumulated while collection is disabled are dropped at flush
//! time (matching `count!`, which drops them at the increment).

use std::cell::Cell;

thread_local! {
    static READ_FAST: Cell<u64> = const { Cell::new(0) };
    static READ_SLOW: Cell<u64> = const { Cell::new(0) };
    static READ_INFLATIONS: Cell<u64> = const { Cell::new(0) };
    static WRITE_FAST: Cell<u64> = const { Cell::new(0) };
    static WRITE_SLOW: Cell<u64> = const { Cell::new(0) };
    static CLOCK_SPILLS: Cell<u64> = const { Cell::new(0) };
}

#[inline(always)]
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>) {
    cell.with(|c| c.set(c.get() + 1));
}

#[inline(always)]
pub(crate) fn read_fast() {
    bump(&READ_FAST);
}

#[inline(always)]
pub(crate) fn read_slow() {
    bump(&READ_SLOW);
}

#[inline(always)]
pub(crate) fn read_inflation() {
    bump(&READ_INFLATIONS);
}

#[inline(always)]
pub(crate) fn write_fast() {
    bump(&WRITE_FAST);
}

#[inline(always)]
pub(crate) fn write_slow() {
    bump(&WRITE_SLOW);
}

/// A [`VectorClock`](crate::VectorClock) left its inline representation
/// for a heap vector. `vc.clock.spills == 0` after a run is the proof
/// that the per-event clock paths (clone, join, read-state inflation)
/// allocated nothing.
#[inline(always)]
pub(crate) fn clock_spill() {
    bump(&CLOCK_SPILLS);
}

/// Drains this thread's tallies into the observability registry (no-ops,
/// but still drains, when collection is disabled).
pub fn flush() {
    for (cell, name) in [
        (&READ_FAST, "vc.read.fast_path"),
        (&READ_SLOW, "vc.read.slow_path"),
        (&READ_INFLATIONS, "vc.read.inflations"),
        (&WRITE_FAST, "vc.write.fast_path"),
        (&WRITE_SLOW, "vc.write.slow_path"),
        (&CLOCK_SPILLS, "vc.clock.spills"),
    ] {
        let n = cell.with(Cell::take);
        if n != 0 {
            bigfoot_obs::count_named(name, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Tid, VarState, VectorClock};

    #[test]
    fn paths_tally_and_flush_drains() {
        let mut c = VectorClock::new();
        c.tick(Tid(0));
        let mut v = VarState::new();
        v.read(Tid(0), &c).unwrap(); // slow (first read)
        v.read(Tid(0), &c).unwrap(); // fast (same epoch)
        super::READ_FAST.with(|cell| assert!(cell.get() >= 1));
        super::flush();
        super::READ_FAST.with(|cell| assert_eq!(cell.get(), 0));
        super::READ_SLOW.with(|cell| assert_eq!(cell.get(), 0));
    }
}
