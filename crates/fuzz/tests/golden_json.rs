//! Golden tests for the `bfc --json` report schema, driving the real
//! binary (see `docs/OBSERVABILITY.md` for the schema).

use bigfoot_obs::json::{parse, Json};
use std::io::Write;
use std::process::{Command, Output};

fn bfc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bfc"))
        .args(args)
        .output()
        .expect("run bfc")
}

fn write_program(name: &str, src: &str) -> String {
    let dir = std::env::temp_dir().join("bfc-golden-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path.to_string_lossy().into_owned()
}

fn parse_stdout(out: &Output) -> Json {
    let text = String::from_utf8_lossy(&out.stdout);
    parse(&text).unwrap_or_else(|e| panic!("invalid JSON at offset {}: {e:?}\n{text}", e.offset))
}

const RACY: &str = "
    class C { field x; meth poke(v) { this.x = v; return 0; } }
    main {
        c = new C;
        fork t1 = c.poke(1);
        fork t2 = c.poke(2);
        join(t1); join(t2);
    }";

const CLEAN: &str = "
    main {
        a = new_array(16);
        for (i = 0; i < 16; i = i + 1) { a[i] = i; }
        total = 0;
        for (i = 0; i < 16; i = i + 1) { total = total + a[i]; }
    }";

fn check_stats_block(stats: &Json) {
    let accesses = stats.get("accesses").and_then(Json::as_u64).unwrap();
    let checks = stats.get("checks").and_then(Json::as_u64).unwrap();
    assert!(checks <= accesses, "checks {checks} > accesses {accesses}");
    let cr = stats.get("check_ratio").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&cr), "check ratio {cr} outside [0,1]");
    assert_eq!(
        stats.get("reads").and_then(Json::as_u64).unwrap()
            + stats.get("writes").and_then(Json::as_u64).unwrap(),
        accesses
    );
}

#[test]
fn check_json_schema_and_exit_codes() {
    let racy = write_program("racy.bfj", RACY);
    let out = bfc(&["check", &racy, "--json"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "racy program still exits 1 under --json"
    );
    let report = parse_stdout(&out);
    assert_eq!(report.get("schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(report.get("tool").and_then(Json::as_str), Some("bfc"));
    assert_eq!(report.get("command").and_then(Json::as_str), Some("check"));
    assert_eq!(
        report.get("detector").and_then(Json::as_str),
        Some("bigfoot")
    );
    assert_eq!(report.get("any_race").and_then(Json::as_bool), Some(true));
    let runs = report.get("runs").unwrap().items();
    assert_eq!(runs.len(), 1);
    let races = runs[0].get("races").unwrap().items();
    assert!(!races.is_empty());
    assert!(races[0].get("target").and_then(Json::as_str).is_some());
    assert!(races[0].get("info").and_then(Json::as_str).is_some());
    check_stats_block(runs[0].get("stats").unwrap());
}

#[test]
fn check_json_races_stable_across_identical_seeds() {
    let racy = write_program("racy-seed.bfj", RACY);
    let run = |seed: &str| {
        let out = bfc(&["check", &racy, "--json", "--seed", seed, "--schedules", "3"]);
        let report = parse_stdout(&out);
        report.to_string_compact()
    };
    // Identical seeds: byte-identical reports (stats, races, everything).
    assert_eq!(run("42"), run("42"));
}

#[test]
fn clean_program_check_json_has_no_races() {
    let clean = write_program("clean-json.bfj", CLEAN);
    let out = bfc(&["check", &clean, "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let report = parse_stdout(&out);
    assert_eq!(report.get("any_race").and_then(Json::as_bool), Some(false));
    let runs = report.get("runs").unwrap().items();
    assert!(runs[0].get("races").unwrap().items().is_empty());
    check_stats_block(runs[0].get("stats").unwrap());
}

#[test]
fn stats_json_compares_fasttrack_and_bigfoot() {
    let clean = write_program("stats-json.bfj", CLEAN);
    let out = bfc(&["stats", &clean, "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let report = parse_stdout(&out);
    assert_eq!(report.get("command").and_then(Json::as_str), Some("stats"));
    let stat = report.get("static").unwrap();
    assert!(stat.get("methods").and_then(Json::as_u64).unwrap() > 0);
    assert!(stat.get("checks_inserted").and_then(Json::as_u64).unwrap() > 0);
    let dets = report.get("detectors").unwrap();
    let ft = dets.get("fasttrack").unwrap();
    let bf = dets.get("bigfoot").unwrap();
    check_stats_block(ft);
    check_stats_block(bf);
    // The whole point: BigFoot checks strictly less often than FastTrack
    // on this loop-heavy program.
    assert!(
        bf.get("checks").and_then(Json::as_u64).unwrap()
            < ft.get("checks").and_then(Json::as_u64).unwrap()
    );
}

#[test]
fn profile_json_exposes_spans_and_counters() {
    let clean = write_program("profile-json.bfj", CLEAN);
    let out = bfc(&["profile", &clean, "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = parse_stdout(&out);
    assert_eq!(
        report.get("command").and_then(Json::as_str),
        Some("profile")
    );
    let metrics = report.get("metrics").unwrap();
    let timers = metrics.get("timers").unwrap();
    // The pipeline's key spans must have fired.
    for span in ["static.instrument", "static.forward", "entail.query"] {
        let t = timers
            .get(span)
            .unwrap_or_else(|| panic!("missing span {span}"));
        assert!(
            t.get("count").and_then(Json::as_u64).unwrap() > 0,
            "{span} never recorded"
        );
        assert!(
            t.get("total").and_then(Json::as_u64).unwrap() > 0,
            "{span} total is zero"
        );
        // Schema v2: every timer carries interpolated percentiles, and
        // they respect the obvious ordering.
        let pct = |key: &str| {
            t.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{span} missing {key}"))
        };
        let (p50, p90, p99) = (pct("p50"), pct("p90"), pct("p99"));
        assert!(p50 > 0.0, "{span} p50 is zero");
        assert!(
            p50 <= p90 && p90 <= p99,
            "{span} percentiles out of order: {p50} {p90} {p99}"
        );
    }
    // Solver time is a strict subset of analysis time.
    let total = |name: &str| {
        timers
            .get(name)
            .unwrap()
            .get("total")
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(total("entail.query") <= total("static.instrument"));
    // Schema v2: a `gauges` section always exists (it only has entries
    // when a gauge fired, e.g. `pipeline.depth_max` under `--pipeline`).
    assert!(metrics.get("gauges").is_some(), "missing gauges section");
    let counters = metrics.get("counters").unwrap();
    assert!(counters.get("interp.steps").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        counters
            .get("detector.runs")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
}

#[test]
fn profile_human_output_reports_entailment_share() {
    let clean = write_program("profile-human.bfj", CLEAN);
    let out = bfc(&["profile", &clean]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("static.instrument"), "{text}");
    assert!(
        text.contains("entailment share of static analysis"),
        "{text}"
    );
    assert!(text.contains("-- counters --"), "{text}");
}
