//! Differential test: the dense slab shadow stores must be observationally
//! identical to plain map-based stores.
//!
//! [`set_force_map_store`] routes every store through the spill map, so the
//! same binary can run both layouts. The hook is process-global, which is
//! why this file holds exactly one `#[test]`: it gets its own test binary
//! and nothing else in the process can observe the flipped flag.

use std::path::Path;

use bigfoot::instrument;
use bigfoot_bfj::{
    parse_program, trace::TraceWriter, Event, EventSink, Interp, Program, SchedPolicy,
};
use bigfoot_detectors::{replay_trace, Detector, ProxyTable, ReplayConfig, TraceReader};
use bigfoot_fuzz::FuzzCase;
use bigfoot_shadow::slab::set_force_map_store;
use bigfoot_workloads::{benchmarks, Scale};

const MAX_STEPS: u64 = 50_000_000;
const FUZZ_SEEDS: std::ops::RangeInclusive<u64> = 1..=20;

/// Runs all five detector configurations serially and through the sharded
/// replay engine at 1 and 4 workers, returning `(label, observation)`
/// pairs. The observation is the compact stats JSON plus the full
/// deduplicated race list — everything a run can externally report.
fn observe_all(bytes: &[u8], events: &[Event], proxies: &ProxyTable) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let serial: Vec<(&str, Detector)> = vec![
        ("FT", Detector::fasttrack()),
        ("RC", Detector::redcard(proxies.clone())),
        ("SS", Detector::slimstate()),
        ("SC", Detector::slimcard(proxies.clone())),
        ("BF", Detector::bigfoot(proxies.clone())),
    ];
    for (name, mut det) in serial {
        for ev in events {
            det.event(ev);
        }
        let stats = det.finish();
        out.push((
            format!("serial/{name}"),
            format!(
                "{} races={:?}",
                stats.to_json().to_string_compact(),
                stats.races
            ),
        ));
    }
    for workers in [1, 4] {
        let configs: Vec<(&str, ReplayConfig)> = vec![
            ("FT", ReplayConfig::fasttrack(workers)),
            ("RC", ReplayConfig::redcard(proxies.clone(), workers)),
            ("SS", ReplayConfig::slimstate(workers)),
            ("SC", ReplayConfig::slimcard(proxies.clone(), workers)),
            ("BF", ReplayConfig::bigfoot(proxies.clone(), workers)),
        ];
        for (name, config) in configs {
            let stats = replay_trace(bytes, &config).expect("replay");
            out.push((
                format!("replay{workers}/{name}"),
                format!(
                    "{} races={:?}",
                    stats.to_json().to_string_compact(),
                    stats.races
                ),
            ));
        }
    }
    out
}

/// Records the instrumented program's trace, or `None` if the schedule
/// hits the step ceiling (possible for generated programs — such cases
/// carry no observation to compare).
fn record(program: &Program, policy: SchedPolicy) -> Option<(Vec<u8>, Vec<Event>)> {
    let mut writer = TraceWriter::new();
    Interp::new(program, policy)
        .with_max_steps(MAX_STEPS)
        .run(&mut writer)
        .ok()?;
    let bytes = writer.into_bytes();
    let events: Vec<Event> = TraceReader::new(&bytes)
        .expect("trace header")
        .map(|ev| ev.expect("trace event"))
        .collect();
    Some((bytes, events))
}

#[test]
fn slab_and_map_stores_are_observationally_identical() {
    let mut programs: Vec<(String, Program, SchedPolicy)> = Vec::new();
    for b in benchmarks(Scale::Small) {
        programs.push((
            format!("suite/{}", b.name),
            b.program,
            SchedPolicy::default(),
        ));
    }
    let corpus = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    for entry in bigfoot_fuzz::load_dir(corpus).expect("corpus loads") {
        let program = parse_program(&entry.source).expect("corpus entry parses");
        programs.push((
            format!("corpus/{}", entry.path.display()),
            program,
            entry.policy,
        ));
    }
    for seed in FUZZ_SEEDS {
        let case = FuzzCase::from_seed(seed).expect("fuzz case");
        programs.push((format!("fuzz/seed{seed}"), case.program, case.policy));
    }

    let mut compared = 0usize;
    for (label, program, policy) in &programs {
        let inst = instrument(program);
        let Some((bytes, events)) = record(&inst.program, *policy) else {
            continue;
        };

        set_force_map_store(false);
        let slab = observe_all(&bytes, &events, &inst.proxies);
        set_force_map_store(true);
        let map = observe_all(&bytes, &events, &inst.proxies);
        set_force_map_store(false);

        assert_eq!(slab.len(), map.len(), "{label}: observation count differs");
        for ((k_slab, v_slab), (k_map, v_map)) in slab.iter().zip(&map) {
            assert_eq!(k_slab, k_map, "{label}: observation order differs");
            assert_eq!(
                v_slab, v_map,
                "{label} {k_slab}: slab and map stores diverge"
            );
            compared += 1;
        }
    }
    // 5 serial + 2×5 replay observations per program; the suite alone
    // contributes 7 programs — if this collapses, the harness is broken.
    assert!(
        compared >= 7 * 15,
        "too few observations compared: {compared}"
    );
}
