//! Integration tests for the `bfc` command line, driving the real binary.

use std::io::Write;
use std::process::{Command, Output};

fn bfc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bfc"))
        .args(args)
        .output()
        .expect("run bfc")
}

fn write_program(name: &str, src: &str) -> String {
    let dir = std::env::temp_dir().join("bfc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path.to_string_lossy().into_owned()
}

const RACY: &str = "
    class C { field x; meth poke(v) { this.x = v; return 0; } }
    main {
        c = new C;
        fork t1 = c.poke(1);
        fork t2 = c.poke(2);
        join(t1); join(t2);
    }";

const CLEAN: &str = "
    main {
        a = new_array(16);
        for (i = 0; i < 16; i = i + 1) { a[i] = i; }
        total = 0;
        for (i = 0; i < 16; i = i + 1) { total = total + a[i]; }
    }";

#[test]
fn check_exit_codes_signal_races() {
    let racy = write_program("racy.bfj", RACY);
    let clean = write_program("clean.bfj", CLEAN);
    let out = bfc(&["check", &racy]);
    assert_eq!(out.status.code(), Some(1), "racy program must exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("race"));
    let out = bfc(&["check", &clean]);
    assert_eq!(out.status.code(), Some(0), "clean program must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no races"));
}

#[test]
fn instrument_output_reparses_and_runs() {
    let clean = write_program("clean2.bfj", CLEAN);
    let out = bfc(&["instrument", &clean]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("check("), "{text}");
    // Round-trip: the printed program is valid BFJ and runs identically.
    let round = write_program("clean2-inst.bfj", &text);
    let out = bfc(&["run", &round]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("total = 120"));
}

#[test]
fn run_prints_final_variables() {
    let clean = write_program("clean3.bfj", CLEAN);
    let out = bfc(&["run", &clean]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("total = 120"));
}

#[test]
fn stats_compares_detectors() {
    let clean = write_program("clean4.bfj", CLEAN);
    let out = bfc(&["stats", &clean]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("FastTrack") && text.contains("BigFoot"),
        "{text}"
    );
    assert!(text.contains("check ratio"), "{text}");
}

#[test]
fn trace_prints_events_with_limit() {
    let clean = write_program("clean5.bfj", CLEAN);
    let out = bfc(&["trace", &clean, "--limit", "5"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("AllocArr"), "{text}");
    assert!(text.contains("more events"), "{text}");
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(bfc(&[]).status.code(), Some(2));
    assert_eq!(bfc(&["frobnicate", "x.bfj"]).status.code(), Some(2));
    assert_eq!(
        bfc(&["check", "/definitely/missing.bfj"]).status.code(),
        Some(2)
    );
    let clean = write_program("clean6.bfj", CLEAN);
    assert_eq!(
        bfc(&["check", &clean, "--detector", "nosuch"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        bfc(&["check", &clean, "--schedules", "abc"]).status.code(),
        Some(2)
    );
}

#[test]
fn every_detector_flag_works() {
    let racy = write_program("racy2.bfj", RACY);
    for det in [
        "bigfoot",
        "fasttrack",
        "redcard",
        "slimstate",
        "slimcard",
        "djit",
    ] {
        let out = bfc(&["check", &racy, "--detector", det, "--schedules", "3"]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{det} must find the race: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
