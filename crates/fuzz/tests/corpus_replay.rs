//! Corpus regression replay + a small always-on fuzz smoke campaign.
//!
//! Every minimized reproducer ever committed to `crates/fuzz/corpus/` is
//! replayed through all oracles on every `cargo test` run — a bug fixed
//! once stays fixed. The smoke campaign then runs a fixed seed window so
//! plain `cargo test` exercises the whole differential harness even when
//! the corpus is empty.

use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn corpus_entries_never_diverge_again() {
    let failures = bigfoot_fuzz::replay_corpus(corpus_dir()).expect("corpus loads");
    assert!(
        failures.is_empty(),
        "corpus reproducers diverged again:\n{}",
        failures
            .iter()
            .map(|(e, d)| format!("  {} [{}] {}", e.path.display(), d.oracle.name(), d.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn adversarial_sharded_configs_agree_on_fuzz_cases() {
    // Satellite of PR 7: the most hostile pipeline geometry — one-event
    // batches through two-slot rings, so every ring in the sharded
    // topology hits batch boundaries and backpressure on every event —
    // swept across worker counts including the 64-worker maximum, over
    // generated fuzz cases rather than hand-written programs.
    use bigfoot_bfj::{EventSink, Interp, RecordingSink};
    use bigfoot_detectors::{
        djit_sharded, replay_sharded, Detector, DjitDetector, PipelineConfig, ReplayConfig,
    };

    let pcfg = PipelineConfig {
        batch_events: 1,
        ring_slots: 2,
    };
    for seed in 1..=6u64 {
        let case = bigfoot_fuzz::FuzzCase::from_seed(seed).expect("generator");
        let mut rec = RecordingSink::default();
        Interp::new(&case.program, case.policy)
            .run(&mut rec)
            .expect("run");
        let events = rec.events;

        let mut ft = Detector::fasttrack();
        let mut djit = DjitDetector::new();
        for ev in &events {
            ft.event(ev);
            djit.event(ev);
        }
        let ft_truth = ft.finish().to_json().to_string_compact();
        let djit_truth = djit.finish().to_json().to_string_compact();

        for workers in [1, 3, 4, 64] {
            let (_, got) = replay_sharded(&pcfg, &ReplayConfig::fasttrack(workers), |sink| {
                for ev in &events {
                    sink.event(ev);
                }
            });
            assert_eq!(
                got.to_json().to_string_compact(),
                ft_truth,
                "seed {seed}: sharded fasttrack diverges at {workers} worker(s)"
            );
            let (_, got) = djit_sharded(&pcfg, workers, |sink| {
                for ev in &events {
                    sink.event(ev);
                }
            });
            assert_eq!(
                got.to_json().to_string_compact(),
                djit_truth,
                "seed {seed}: sharded djit diverges at {workers} worker(s)"
            );
        }
    }
}

#[test]
fn smoke_campaign_finds_no_divergence() {
    let report = bigfoot_fuzz::run_campaign(&bigfoot_fuzz::FuzzOptions {
        seed_lo: 1,
        seed_hi: 41,
        budget_secs: 0,
        corpus_dir: None, // never write into the source tree from a test
        shrink_budget: 100,
    });
    assert_eq!(report.cases, 40);
    assert_eq!(report.oracle_runs, [40; 7]);
    assert!(
        report.divergences.is_empty(),
        "divergences: {:#?}",
        report
            .divergences
            .iter()
            .map(|d| format!(
                "seed {} [{}] {}\n{}",
                d.seed,
                d.oracle.name(),
                d.detail,
                d.minimized
            ))
            .collect::<Vec<_>>()
    );
}
