//! Corpus regression replay + a small always-on fuzz smoke campaign.
//!
//! Every minimized reproducer ever committed to `crates/fuzz/corpus/` is
//! replayed through all oracles on every `cargo test` run — a bug fixed
//! once stays fixed. The smoke campaign then runs a fixed seed window so
//! plain `cargo test` exercises the whole differential harness even when
//! the corpus is empty.

use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn corpus_entries_never_diverge_again() {
    let failures = bigfoot_fuzz::replay_corpus(corpus_dir()).expect("corpus loads");
    assert!(
        failures.is_empty(),
        "corpus reproducers diverged again:\n{}",
        failures
            .iter()
            .map(|(e, d)| format!("  {} [{}] {}", e.path.display(), d.oracle.name(), d.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn smoke_campaign_finds_no_divergence() {
    let report = bigfoot_fuzz::run_campaign(&bigfoot_fuzz::FuzzOptions {
        seed_lo: 1,
        seed_hi: 41,
        budget_secs: 0,
        corpus_dir: None, // never write into the source tree from a test
        shrink_budget: 100,
    });
    assert_eq!(report.cases, 40);
    assert_eq!(report.oracle_runs, [40, 40, 40, 40]);
    assert!(
        report.divergences.is_empty(),
        "divergences: {:#?}",
        report
            .divergences
            .iter()
            .map(|d| format!(
                "seed {} [{}] {}\n{}",
                d.seed,
                d.oracle.name(),
                d.detail,
                d.minimized
            ))
            .collect::<Vec<_>>()
    );
}
