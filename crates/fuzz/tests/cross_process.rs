//! Cross-process stability of the incremental pipeline: the fingerprints
//! and the placement cache must not depend on any per-process state
//! (hasher seeds, symbol interning order, allocation addresses). Each
//! test drives the real `bfc` binary in separate child processes and
//! compares what they print — the strongest form of the stable-hash
//! audit, since nothing in-process can leak between runs.

use bigfoot_obs::json::{parse, Json};
use std::path::PathBuf;
use std::process::{Command, Output};

const SRC: &str = "
class Point {
    field x; field y;
    meth get(o) { a = this.x; b = this.y; return a + b; }
    meth set(dx, dy) { this.x = dx; this.y = dy; return 0; }
    meth sum(o) { s = this.get(o); return s; }
}
class Locker {
    field n;
    volatile v;
    meth bump(l) { acq(l); this.n = this.n + 1; rel(l); return this.n; }
}
main {
    p = new Point;
    l = new Locker;
    r = p.set(1, 2);
    s = p.sum(p);
    t = l.bump(l);
}";

/// A scratch directory unique to this test invocation.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bigfoot-xproc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bfc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bfc"))
        .args(args)
        .output()
        .expect("run bfc")
}

fn json_stdout(out: &Output) -> Json {
    assert!(
        out.status.success(),
        "bfc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    parse(&text).unwrap_or_else(|e| panic!("invalid JSON at offset {}: {e:?}\n{text}", e.offset))
}

/// `(site, fingerprint)` pairs from an `analyze --json` report.
fn fingerprints(report: &Json) -> Vec<(String, String)> {
    report
        .get("fingerprints")
        .expect("fingerprints section")
        .items()
        .iter()
        .map(|s| {
            (
                s.get("site").and_then(Json::as_str).unwrap().to_owned(),
                s.get("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_owned(),
            )
        })
        .collect()
}

#[test]
fn fingerprints_are_identical_across_processes() {
    let dir = tmp_dir("fps");
    let file = dir.join("p.bfj");
    std::fs::write(&file, SRC).unwrap();
    let file = file.to_str().unwrap();
    let first = fingerprints(&json_stdout(&bfc(&["analyze", file, "--json"])));
    let second = fingerprints(&json_stdout(&bfc(&["analyze", file, "--json"])));
    assert_eq!(first.len(), 5, "four methods plus main: {first:?}");
    assert_eq!(first, second, "digests must not vary per process");
    // Every digest is a full 16-hex-digit word and the sites are distinct.
    for (site, fp) in &first {
        assert_eq!(fp.len(), 16, "{site}: short digest {fp}");
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn placement_cache_written_by_one_process_is_hit_by_another() {
    let dir = tmp_dir("cache");
    let file = dir.join("p.bfj");
    std::fs::write(&file, SRC).unwrap();
    let file = file.to_str().unwrap();
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let cold_out = dir.join("cold.txt");
    let warm_out = dir.join("warm.txt");

    // Process A analyzes cold and writes the cache.
    let cold = json_stdout(&bfc(&[
        "analyze",
        file,
        "--incremental",
        "--cache-dir",
        cache,
        "--out",
        cold_out.to_str().unwrap(),
        "--json",
    ]));
    let c = cold.get("cache").unwrap();
    assert_eq!(c.get("warm").and_then(Json::as_bool), Some(false));
    assert_eq!(c.get("misses").and_then(Json::as_u64), Some(5));

    // Process B must replay every placement from A's cache: same
    // fingerprints, zero misses, byte-identical instrumented program.
    let warm = json_stdout(&bfc(&[
        "analyze",
        file,
        "--incremental",
        "--cache-dir",
        cache,
        "--out",
        warm_out.to_str().unwrap(),
        "--json",
    ]));
    let c = warm.get("cache").unwrap();
    assert_eq!(c.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(c.get("hits").and_then(Json::as_u64), Some(5));
    assert_eq!(c.get("misses").and_then(Json::as_u64), Some(0));
    assert_eq!(fingerprints(&cold), fingerprints(&warm));
    assert_eq!(
        std::fs::read(&cold_out).unwrap(),
        std::fs::read(&warm_out).unwrap(),
        "warm placement differs from the cold run that seeded it"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutation_dirties_exactly_the_edited_cone_across_processes() {
    let dir = tmp_dir("mutate");
    let file = dir.join("p.bfj");
    std::fs::write(&file, SRC).unwrap();
    let file = file.to_str().unwrap();
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let edited = dir.join("edited.bfj");
    let edited = edited.to_str().unwrap();

    // Seed the cache, then edit site 0 (Point.get) in a separate process.
    json_stdout(&bfc(&[
        "analyze",
        file,
        "--incremental",
        "--cache-dir",
        cache,
        "--json",
    ]));
    let m = json_stdout(&bfc(&[
        "mutate", file, "--site", "0", "--kind", "arith", "--salt", "9", "--out", edited, "--json",
    ]));
    assert_eq!(m.get("edited").and_then(Json::as_str), Some("Point.get"));
    assert_eq!(m.get("sites").and_then(Json::as_u64), Some(5));

    // A third process re-analyzes warm: the arithmetic tweak changes no
    // cross-method facts, so only the edited method re-analyzes.
    let warm_inc = dir.join("warm-inc.txt");
    let warm = json_stdout(&bfc(&[
        "analyze",
        edited,
        "--incremental",
        "--cache-dir",
        cache,
        "--out",
        warm_inc.to_str().unwrap(),
        "--json",
    ]));
    let c = warm.get("cache").unwrap();
    assert_eq!(c.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(c.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(c.get("hits").and_then(Json::as_u64), Some(4));

    // And a fourth process runs the edited program cold: byte-identical.
    let cold_ref = dir.join("cold-ref.txt");
    json_stdout(&bfc(&[
        "analyze",
        edited,
        "--out",
        cold_ref.to_str().unwrap(),
        "--json",
    ]));
    assert_eq!(
        std::fs::read(&warm_inc).unwrap(),
        std::fs::read(&cold_ref).unwrap(),
        "incremental replay diverged from a from-scratch analysis"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
