//! The regression corpus: minimized reproducers replayed forever.
//!
//! Every divergence the fuzzer ever finds is shrunk and committed here as
//! a plain `.bfj` file whose leading `//` directive lines carry the
//! metadata needed to re-run the exact case (the BFJ lexer treats `//` as
//! comments, so a corpus file is also directly loadable by `bfc`).
//!
//! Layout of an entry:
//!
//! ```text
//! // bigfoot-fuzz reproducer
//! // seed: 42
//! // oracle: placement
//! // policy: random seed=97 switch_inv=2
//! // detail: fasttrack sees races at {...}, bigfoot at {...}
//! <minimized program source>
//! ```

use crate::oracle::OracleKind;
use bigfoot_bfj::SchedPolicy;
use std::path::{Path, PathBuf};

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File the entry came from.
    pub path: PathBuf,
    /// The campaign seed that found it.
    pub seed: u64,
    /// Which oracle fired when it was found.
    pub oracle: OracleKind,
    /// The schedule to replay under.
    pub policy: SchedPolicy,
    /// The divergence description at commit time.
    pub detail: String,
    /// The program source (directives included — they are comments).
    pub source: String,
}

/// Renders the schedule policy as a directive value.
fn policy_to_directive(policy: SchedPolicy) -> String {
    match policy {
        SchedPolicy::RoundRobin { quantum } => format!("roundrobin quantum={quantum}"),
        SchedPolicy::Random { seed, switch_inv } => {
            format!("random seed={seed} switch_inv={switch_inv}")
        }
    }
}

/// Parses a `policy:` directive value.
fn policy_from_directive(s: &str) -> Result<SchedPolicy, String> {
    let mut kind = None;
    let mut fields = std::collections::BTreeMap::new();
    for word in s.split_whitespace() {
        match word.split_once('=') {
            Some((k, v)) => {
                let v: u64 = v
                    .parse()
                    .map_err(|_| format!("bad policy field `{word}`"))?;
                fields.insert(k.to_string(), v);
            }
            None => kind = Some(word),
        }
    }
    match kind {
        Some("roundrobin") => Ok(SchedPolicy::RoundRobin {
            quantum: *fields.get("quantum").ok_or("roundrobin needs quantum=")? as u32,
        }),
        Some("random") => Ok(SchedPolicy::Random {
            seed: *fields.get("seed").ok_or("random needs seed=")?,
            switch_inv: *fields.get("switch_inv").ok_or("random needs switch_inv=")? as u32,
        }),
        other => Err(format!("unknown policy `{other:?}`")),
    }
}

/// Serializes one reproducer to the corpus file format.
pub fn render_entry(
    seed: u64,
    oracle: OracleKind,
    policy: SchedPolicy,
    detail: &str,
    minimized_source: &str,
) -> String {
    let mut out = String::new();
    out.push_str("// bigfoot-fuzz reproducer\n");
    out.push_str(&format!("// seed: {seed}\n"));
    out.push_str(&format!("// oracle: {}\n", oracle.name()));
    out.push_str(&format!("// policy: {}\n", policy_to_directive(policy)));
    out.push_str(&format!("// detail: {}\n", detail.replace('\n', "; ")));
    out.push_str(minimized_source);
    if !minimized_source.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Parses a corpus file's directive header.
pub fn parse_entry(path: &Path, text: &str) -> Result<CorpusEntry, String> {
    let mut seed = None;
    let mut oracle = None;
    let mut policy = None;
    let mut detail = String::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else {
            break; // directives end at the first non-comment line
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("seed:") {
            seed = Some(
                v.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("{}: bad seed directive", path.display()))?,
            );
        } else if let Some(v) = rest.strip_prefix("oracle:") {
            oracle = Some(
                OracleKind::from_name(v.trim())
                    .ok_or_else(|| format!("{}: unknown oracle `{}`", path.display(), v.trim()))?,
            );
        } else if let Some(v) = rest.strip_prefix("policy:") {
            policy = Some(
                policy_from_directive(v.trim()).map_err(|e| format!("{}: {e}", path.display()))?,
            );
        } else if let Some(v) = rest.strip_prefix("detail:") {
            detail = v.trim().to_string();
        }
    }
    Ok(CorpusEntry {
        path: path.to_path_buf(),
        seed: seed.ok_or_else(|| format!("{}: missing seed directive", path.display()))?,
        oracle: oracle.ok_or_else(|| format!("{}: missing oracle directive", path.display()))?,
        policy: policy.ok_or_else(|| format!("{}: missing policy directive", path.display()))?,
        detail,
        source: text.to_string(),
    })
}

/// Writes a reproducer into `dir` (created if missing), returning its
/// path. The name embeds the oracle and seed so entries sort usefully.
pub fn write_entry(
    dir: &Path,
    seed: u64,
    oracle: OracleKind,
    policy: SchedPolicy,
    detail: &str,
    minimized_source: &str,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}-seed{}.bfj", oracle.name(), seed));
    let text = render_entry(seed, oracle, policy, detail, minimized_source);
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads every `.bfj` entry in `dir`, sorted by file name. A missing
/// directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("bfj") {
                    paths.push(path);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    }
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(parse_entry(&path, &text)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrips_through_render_and_parse() {
        let policy = SchedPolicy::Random {
            seed: 97,
            switch_inv: 2,
        };
        let text = render_entry(
            42,
            OracleKind::Placement,
            policy,
            "fasttrack vs bigfoot\nsecond line",
            "main { x = 1; }\n",
        );
        let entry = parse_entry(Path::new("x.bfj"), &text).unwrap();
        assert_eq!(entry.seed, 42);
        assert_eq!(entry.oracle, OracleKind::Placement);
        assert_eq!(entry.policy, policy);
        assert_eq!(entry.detail, "fasttrack vs bigfoot; second line");
        // The directives are comments: the whole entry still parses as BFJ.
        bigfoot_bfj::parse_program(&entry.source).unwrap();
    }

    #[test]
    fn roundrobin_policies_roundtrip_too() {
        let policy = SchedPolicy::RoundRobin { quantum: 64 };
        let text = render_entry(7, OracleKind::Replay, policy, "d", "main { x = 1; }\n");
        let entry = parse_entry(Path::new("y.bfj"), &text).unwrap();
        assert_eq!(entry.policy, policy);
    }
}
