//! Seed → fuzz case derivation.
//!
//! Each campaign seed deterministically expands into a generator
//! configuration (program shape) *and* a scheduler policy (interleaving),
//! so a one-word seed reproduces the whole case. The expansion uses
//! splitmix64 so neighbouring seeds decorrelate into very different
//! configurations.

use bigfoot_bfj::{parse_program, Program, SchedPolicy};
use bigfoot_workloads::{random_program, RandomConfig};

/// One generated program plus the schedule it runs under.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The campaign seed this case was derived from.
    pub seed: u64,
    /// The derived generator configuration.
    pub cfg: RandomConfig,
    /// The derived scheduler policy.
    pub policy: SchedPolicy,
    /// The generated source text.
    pub source: String,
    /// The parsed program.
    pub program: Program,
}

/// splitmix64: the standard seed expander.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FuzzCase {
    /// Expands a campaign seed into a full case. Returns `Err` only if
    /// the generator emitted an unparsable program — itself a bug the
    /// campaign reports.
    pub fn from_seed(seed: u64) -> Result<FuzzCase, String> {
        let mut s = seed;
        let cfg = RandomConfig {
            seed: mix(&mut s) | 1,
            size: 4 + (mix(&mut s) % 10) as usize,
            threads: 2 + (mix(&mut s) % 3) as usize,
            // Zero-length arrays are a deliberate corner of the space.
            array_len: match mix(&mut s) % 8 {
                0 => 0,
                k => 4 * k as usize,
            },
            racy: mix(&mut s).is_multiple_of(2),
            locks: 1 + (mix(&mut s) % 2) as usize,
            volatiles: mix(&mut s) % 8 < 3,
            strided: mix(&mut s) % 8 < 3,
            symbolic_bounds: mix(&mut s) % 8 < 3,
            fork_trees: mix(&mut s) % 8 < 3,
        };
        let policy = SchedPolicy::Random {
            seed: mix(&mut s) | 1,
            switch_inv: 2 + (mix(&mut s) % 3) as u32,
        };
        let source = random_program(&cfg);
        let program =
            parse_program(&source).map_err(|e| format!("generated program fails to parse: {e}"))?;
        Ok(FuzzCase {
            seed,
            cfg,
            policy,
            source,
            program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        let a = FuzzCase::from_seed(7).unwrap();
        let b = FuzzCase::from_seed(7).unwrap();
        assert_eq!(a.source, b.source);
        assert_eq!(a.policy, b.policy);
    }

    #[test]
    fn seeds_vary_the_shape() {
        // Across a modest seed window every opt-in knob should appear at
        // least once — otherwise the campaign never explores it.
        let cases: Vec<FuzzCase> = (1..64).map(|s| FuzzCase::from_seed(s).unwrap()).collect();
        assert!(cases.iter().any(|c| c.cfg.locks > 1));
        assert!(cases.iter().any(|c| c.cfg.volatiles));
        assert!(cases.iter().any(|c| c.cfg.strided));
        assert!(cases.iter().any(|c| c.cfg.symbolic_bounds));
        assert!(cases.iter().any(|c| c.cfg.fork_trees));
        assert!(cases.iter().any(|c| c.cfg.array_len == 0));
        assert!(cases.iter().any(|c| c.cfg.racy) && cases.iter().any(|c| !c.cfg.racy));
    }
}
