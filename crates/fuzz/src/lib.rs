//! Differential fuzzing for the BigFoot pipeline.
//!
//! Static check placement is only correct if it is *invisible*: a
//! BigFoot-instrumented program must produce exactly the race verdict the
//! unoptimized detector produces (the paper's precision theorem, §3.5),
//! the parallel replay engine must be bit-identical to serial detection,
//! and the binary trace codec must be lossless. This crate cross-checks
//! all three on seeded random programs *and* schedules:
//!
//! 1. [`FuzzCase::from_seed`] expands one seed into a generator
//!    configuration (threads, nested locks, volatiles, strided loops,
//!    symbolic bounds, fork trees, racy or race-free) plus a scheduler
//!    policy.
//! 2. [`run_oracles`] runs the case through the round-trip, compiled,
//!    placement, replay, and pipeline oracles; any disagreement is a
//!    [`Divergence`].
//! 3. [`shrink`] delta-debugs a diverging case to a minimal deterministic
//!    reproducer, which [`run_campaign`] commits to the corpus
//!    (`crates/fuzz/corpus/`) where `cargo test` replays it forever.
//!
//! The `bfc fuzz` subcommand and `repro fuzz` drive campaigns from the
//! command line; per-oracle counters (`fuzz.cases`, `fuzz.oracle.*`,
//! `fuzz.divergence`) and spans (`fuzz.case`, `fuzz.shrink`) flow through
//! `bigfoot-obs` like every other phase.

mod case;
mod corpus;
mod oracle;
mod shrink;

pub use case::FuzzCase;
pub use corpus::{load_dir, parse_entry, render_entry, write_entry, CorpusEntry};
pub use oracle::{run_oracles, Divergence, OracleKind};
pub use shrink::{shrink, Shrunk};

use bigfoot_bfj::pretty;
use bigfoot_obs::json::Json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// First seed (inclusive).
    pub seed_lo: u64,
    /// Last seed (exclusive).
    pub seed_hi: u64,
    /// Wall-clock budget in seconds; 0 means run the whole seed range.
    pub budget_secs: u64,
    /// Where to write minimized reproducers; `None` skips the write.
    pub corpus_dir: Option<PathBuf>,
    /// Oracle-run budget per shrink.
    pub shrink_budget: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed_lo: 1,
            seed_hi: 501,
            budget_secs: 0,
            corpus_dir: None,
            shrink_budget: 400,
        }
    }
}

/// One divergence found (and minimized) during a campaign.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// The campaign seed that produced it.
    pub seed: u64,
    /// Which oracle fired.
    pub oracle: OracleKind,
    /// Divergence description for the *minimized* program.
    pub detail: String,
    /// The schedule policy of the case.
    pub policy: bigfoot_bfj::SchedPolicy,
    /// Minimized source.
    pub minimized: String,
    /// Where the reproducer was written, when a corpus dir was given.
    pub corpus_file: Option<PathBuf>,
    /// Oracle runs the shrinker spent.
    pub shrink_runs: usize,
}

/// Campaign summary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// First seed actually covered (inclusive).
    pub seed_lo: u64,
    /// Seeds covered before the budget ran out (exclusive bound).
    pub seed_hi: u64,
    /// Cases executed (== seeds covered).
    pub cases: u64,
    /// Times each oracle suite completed (round-trip, compiled,
    /// placement, incremental, replay, compressed, pipeline).
    pub oracle_runs: [u64; 7],
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when the time budget stopped the campaign early.
    pub exhausted_budget: bool,
    /// Every divergence found, minimized.
    pub divergences: Vec<FoundDivergence>,
}

impl CampaignReport {
    /// Machine-readable form (hangs off the `bfc --json` envelope).
    pub fn to_json(&self) -> Json {
        let mut out = Json::object();
        out.set("seed_lo", self.seed_lo);
        out.set("seed_hi", self.seed_hi);
        out.set("cases", self.cases);
        let mut oracles = Json::object();
        oracles.set("roundtrip", self.oracle_runs[0]);
        oracles.set("compiled", self.oracle_runs[1]);
        oracles.set("placement", self.oracle_runs[2]);
        oracles.set("incremental", self.oracle_runs[3]);
        oracles.set("replay", self.oracle_runs[4]);
        oracles.set("compressed", self.oracle_runs[5]);
        oracles.set("pipeline", self.oracle_runs[6]);
        out.set("oracle_runs", oracles);
        out.set("elapsed_ms", self.elapsed.as_secs_f64() * 1e3);
        out.set("exhausted_budget", self.exhausted_budget);
        let mut divs = Json::array();
        for d in &self.divergences {
            let mut j = Json::object();
            j.set("seed", d.seed);
            j.set("oracle", d.oracle.name());
            j.set("detail", d.detail.as_str());
            j.set("minimized", d.minimized.as_str());
            j.set("shrink_runs", d.shrink_runs as u64);
            if let Some(p) = &d.corpus_file {
                j.set("corpus_file", p.display().to_string());
            }
            divs.push(j);
        }
        out.set("divergences", divs);
        out
    }
}

/// Runs a fuzzing campaign over `[seed_lo, seed_hi)`.
///
/// Each seed expands to a program + schedule, runs through every oracle,
/// and — on divergence — is shrunk to a minimal deterministic reproducer
/// and (optionally) committed to the corpus. The campaign keeps going
/// after a divergence: one bug must not mask another.
pub fn run_campaign(opts: &FuzzOptions) -> CampaignReport {
    let start = Instant::now();
    let budget = (opts.budget_secs > 0).then(|| Duration::from_secs(opts.budget_secs));
    let mut report = CampaignReport {
        seed_lo: opts.seed_lo,
        seed_hi: opts.seed_lo,
        cases: 0,
        oracle_runs: [0; 7],
        elapsed: Duration::ZERO,
        exhausted_budget: false,
        divergences: Vec::new(),
    };
    for seed in opts.seed_lo..opts.seed_hi {
        if let Some(b) = budget {
            if start.elapsed() >= b {
                report.exhausted_budget = true;
                break;
            }
        }
        bigfoot_obs::count!("fuzz.cases");
        report.cases += 1;
        report.seed_hi = seed + 1;
        let case = match FuzzCase::from_seed(seed) {
            Ok(c) => c,
            Err(e) => {
                // Generator contract violation: report it like a
                // divergence, but there is no program to shrink.
                bigfoot_obs::count!("fuzz.divergence");
                report.divergences.push(FoundDivergence {
                    seed,
                    oracle: OracleKind::Execution,
                    detail: e,
                    policy: bigfoot_bfj::SchedPolicy::default(),
                    minimized: String::new(),
                    corpus_file: None,
                    shrink_runs: 0,
                });
                continue;
            }
        };
        let Some(div) = run_oracles(&case.program, case.policy) else {
            for run in &mut report.oracle_runs {
                *run += 1;
            }
            continue;
        };
        bigfoot_obs::count!("fuzz.divergence");
        let shrunk = shrink(&case.program, case.policy, div.oracle, opts.shrink_budget);
        let minimized = pretty(&shrunk.program);
        let corpus_file = opts.corpus_dir.as_ref().and_then(|dir| {
            write_entry(
                dir,
                seed,
                div.oracle,
                case.policy,
                &shrunk.divergence.detail,
                &minimized,
            )
            .map_err(|e| eprintln!("fuzz: {e}"))
            .ok()
        });
        report.divergences.push(FoundDivergence {
            seed,
            oracle: div.oracle,
            detail: shrunk.divergence.detail,
            policy: case.policy,
            minimized,
            corpus_file,
            shrink_runs: shrunk.oracle_runs,
        });
    }
    report.elapsed = start.elapsed();
    report
}

/// Replays every corpus entry through all oracles; returns the entries
/// that (still) diverge. An empty result means every past bug stays
/// fixed.
pub fn replay_corpus(dir: &std::path::Path) -> Result<Vec<(CorpusEntry, Divergence)>, String> {
    let mut failures = Vec::new();
    for entry in load_dir(dir)? {
        let program = bigfoot_bfj::parse_program(&entry.source)
            .map_err(|e| format!("{}: {e}", entry.path.display()))?;
        if let Some(d) = run_oracles(&program, entry.policy) {
            failures.push((entry, d));
        }
    }
    Ok(failures)
}
