//! Delta-debugging minimizer for diverging cases.
//!
//! Greedy reduction over the AST: drop whole statements (fork/join pairs
//! as a unit when needed) and halve integer literals, keeping a mutation
//! only when the mutated program still runs *and* still produces the same
//! oracle divergence **twice in a row** — the double run re-validates that
//! the repro is deterministic at every step, so the corpus never collects
//! a flaky case. Invalid mutants (say, a join whose fork was removed)
//! reject themselves by failing to run.

use crate::oracle::{run_oracles, Divergence, OracleKind};
use bigfoot_bfj::ast::{Block, Expr, Program, Stmt, StmtKind};
use bigfoot_bfj::SchedPolicy;

/// Where a statement lives: main, or the body of `classes[c].methods[m]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyId {
    Main,
    Method(usize, usize),
}

/// One candidate reduction.
#[derive(Debug, Clone)]
enum Mutation {
    /// Remove `stmts[idx]` of the body.
    RemoveStmt(BodyId, usize),
    /// Remove a `fork` and the `join` on its handle, as a unit.
    RemoveForkJoin(BodyId, usize, usize),
    /// Halve the `k`-th integer literal (pre-order) in the program.
    HalveLiteral(usize),
}

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized program.
    pub program: Program,
    /// The divergence the minimized program still produces.
    pub divergence: Divergence,
    /// Oracle executions spent.
    pub oracle_runs: usize,
}

/// Greedily minimizes `program` while it keeps diverging on `kind`.
///
/// `max_oracle_runs` bounds total work (each accepted or rejected mutant
/// costs up to two oracle runs). The returned program always reproduces
/// the divergence — at worst it is the input unchanged.
pub fn shrink(
    program: &Program,
    policy: SchedPolicy,
    kind: OracleKind,
    max_oracle_runs: usize,
) -> Shrunk {
    let _span = bigfoot_obs::span!("fuzz.shrink");
    let mut runs = 0usize;
    let mut current = program.clone();
    // The divergence the caller observed; refreshed on every accepted
    // mutant so the reported detail matches the minimized program.
    let mut divergence = match run_oracles(&current, policy) {
        Some(d) => {
            runs += 1;
            d
        }
        None => {
            // Caller misreported; nothing to shrink.
            return Shrunk {
                program: current,
                divergence: Divergence {
                    oracle: kind,
                    detail: "divergence did not reproduce".into(),
                },
                oracle_runs: 1,
            };
        }
    };
    loop {
        let mut improved = false;
        for m in candidates(&current) {
            if runs + 2 > max_oracle_runs {
                return Shrunk {
                    program: current,
                    divergence,
                    oracle_runs: runs,
                };
            }
            let Some(mut next) = apply(&current, &m) else {
                continue;
            };
            next.renumber();
            // Deterministic repro check: the same divergence, twice.
            let first = run_oracles(&next, policy);
            runs += 1;
            let Some(first) = first else { continue };
            if first.oracle != kind {
                continue;
            }
            let second = run_oracles(&next, policy);
            runs += 1;
            if second.as_ref() != Some(&first) {
                continue;
            }
            bigfoot_obs::count!("fuzz.shrink.accepted");
            current = next;
            divergence = first;
            improved = true;
            break;
        }
        if !improved {
            return Shrunk {
                program: current,
                divergence,
                oracle_runs: runs,
            };
        }
    }
}

/// Every body in the program, biggest first (main last so scaffolding
/// like forks and init loops goes only after worker bodies shrank).
fn bodies(p: &Program) -> Vec<BodyId> {
    let mut out = Vec::new();
    for (c, class) in p.classes.iter().enumerate() {
        for (m, _) in class.methods.iter().enumerate() {
            out.push(BodyId::Method(c, m));
        }
    }
    out.push(BodyId::Main);
    out
}

fn body(p: &Program, id: BodyId) -> &Block {
    match id {
        BodyId::Main => &p.main,
        BodyId::Method(c, m) => &p.classes[c].methods[m].body,
    }
}

fn body_mut(p: &mut Program, id: BodyId) -> &mut Block {
    match id {
        BodyId::Main => &mut p.main,
        BodyId::Method(c, m) => &mut p.classes[c].methods[m].body,
    }
}

/// Enumerates candidate mutations for the current program, cheapest and
/// most aggressive first (statement removal before literal halving).
fn candidates(p: &Program) -> Vec<Mutation> {
    let mut out = Vec::new();
    for id in bodies(p) {
        let block = body(p, id);
        for (i, stmt) in block.stmts.iter().enumerate() {
            if let StmtKind::Fork { x, .. } = &stmt.kind {
                // A fork's join (if any) must go with it.
                let join = block
                    .stmts
                    .iter()
                    .position(|s| matches!(&s.kind, StmtKind::Join { t } if t == x));
                match join {
                    Some(j) => out.push(Mutation::RemoveForkJoin(id, i, j)),
                    None => out.push(Mutation::RemoveStmt(id, i)),
                }
            } else {
                out.push(Mutation::RemoveStmt(id, i));
            }
        }
    }
    for k in 0..count_literals(p) {
        out.push(Mutation::HalveLiteral(k));
    }
    out
}

/// Applies a mutation, or `None` when it no longer makes sense (stale
/// index, literal already minimal).
fn apply(p: &Program, m: &Mutation) -> Option<Program> {
    let mut next = p.clone();
    match *m {
        Mutation::RemoveStmt(id, i) => {
            let block = body_mut(&mut next, id);
            if i >= block.stmts.len() {
                return None;
            }
            block.stmts.remove(i);
        }
        Mutation::RemoveForkJoin(id, i, j) => {
            let block = body_mut(&mut next, id);
            if i >= block.stmts.len() || j >= block.stmts.len() {
                return None;
            }
            let (a, b) = if i < j { (j, i) } else { (i, j) };
            block.stmts.remove(a);
            block.stmts.remove(b);
        }
        Mutation::HalveLiteral(k) => {
            let mut seen = 0usize;
            let mut changed = false;
            visit_exprs(&mut next, &mut |e| {
                if let Expr::Int(n) = e {
                    if seen == k && *n >= 2 {
                        *e = Expr::Int(*n / 2);
                        changed = true;
                    }
                    seen += 1;
                }
            });
            if !changed {
                return None;
            }
        }
    }
    Some(next)
}

fn count_literals(p: &Program) -> usize {
    let mut n = 0usize;
    // The visitor needs `&mut Program`; count on a clone.
    let mut q = p.clone();
    visit_exprs(&mut q, &mut |e| {
        if matches!(e, Expr::Int(_)) {
            n += 1;
        }
    });
    n
}

/// Pre-order walk over every expression in the program.
fn visit_exprs(p: &mut Program, f: &mut dyn FnMut(&mut Expr)) {
    for class in &mut p.classes {
        for meth in &mut class.methods {
            visit_block(&mut meth.body, f);
            visit_expr(&mut meth.ret, f);
        }
    }
    visit_block(&mut p.main, f);
}

fn visit_block(b: &mut Block, f: &mut dyn FnMut(&mut Expr)) {
    for s in &mut b.stmts {
        visit_stmt(s, f);
    }
}

fn visit_stmt(s: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::Assign { e, .. } => visit_expr(e, f),
        StmtKind::If {
            cond,
            then_b,
            else_b,
        } => {
            visit_expr(cond, f);
            visit_block(then_b, f);
            visit_block(else_b, f);
        }
        StmtKind::Loop { head, exit, tail } => {
            visit_block(head, f);
            visit_expr(exit, f);
            visit_block(tail, f);
        }
        StmtKind::NewArray { len, .. } => visit_expr(len, f),
        StmtKind::ReadArr { idx, .. } | StmtKind::WriteArr { idx, .. } => visit_expr(idx, f),
        StmtKind::Check { paths } => {
            for cp in paths {
                if let bigfoot_bfj::ast::Path::Arr { range, .. } = &mut cp.path {
                    visit_expr(&mut range.lo, f);
                    visit_expr(&mut range.hi, f);
                }
            }
        }
        StmtKind::Skip
        | StmtKind::Rename { .. }
        | StmtKind::Acquire { .. }
        | StmtKind::Release { .. }
        | StmtKind::New { .. }
        | StmtKind::ReadField { .. }
        | StmtKind::WriteField { .. }
        | StmtKind::Call { .. }
        | StmtKind::Fork { .. }
        | StmtKind::Join { .. }
        | StmtKind::Wait { .. }
        | StmtKind::Notify { .. } => {}
    }
}

fn visit_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Unop(_, a) => visit_expr(a, f),
        Expr::Binop(_, a, b) => {
            visit_expr(a, f);
            visit_expr(b, f);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    fn stmt_total(p: &Program) -> usize {
        p.stmt_count()
    }

    #[test]
    fn candidates_cover_statements_and_literals() {
        let p = parse_program(
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 a = new_array(8);
                 fork t = c.poke(3);
                 join(t);
             }",
        )
        .unwrap();
        let cands = candidates(&p);
        assert!(cands
            .iter()
            .any(|m| matches!(m, Mutation::RemoveForkJoin(..))));
        assert!(cands.iter().any(|m| matches!(m, Mutation::RemoveStmt(..))));
        assert!(cands.iter().any(|m| matches!(m, Mutation::HalveLiteral(_))));
    }

    #[test]
    fn fork_join_removal_keeps_the_program_runnable() {
        let p = parse_program(
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 fork t = c.poke(3);
                 join(t);
             }",
        )
        .unwrap();
        let m = candidates(&p)
            .into_iter()
            .find(|m| matches!(m, Mutation::RemoveForkJoin(..)))
            .unwrap();
        let mut next = apply(&p, &m).unwrap();
        next.renumber();
        assert!(stmt_total(&next) < stmt_total(&p));
        // Both the fork and its join are gone: no dangling `join(t)`.
        use bigfoot_bfj::{Interp, NullSink};
        Interp::new(&next, SchedPolicy::default())
            .run(&mut NullSink)
            .unwrap();
    }

    #[test]
    fn literal_halving_reduces_a_literal() {
        let p = parse_program("main { a = new_array(16); }").unwrap();
        let m = Mutation::HalveLiteral(0);
        let next = apply(&p, &m).unwrap();
        let mut seen = Vec::new();
        let mut q = next.clone();
        visit_exprs(&mut q, &mut |e| {
            if let Expr::Int(n) = e {
                seen.push(*n);
            }
        });
        assert_eq!(seen, vec![8]);
    }

    #[test]
    fn shrink_returns_input_when_nothing_diverges() {
        // `shrink` on a healthy program degrades gracefully.
        let p = parse_program("main { x = 1; }").unwrap();
        let out = shrink(&p, SchedPolicy::default(), OracleKind::Placement, 10);
        assert_eq!(out.program, p);
    }
}
