//! The differential oracles.
//!
//! Every case runs through five independent cross-checks, each of which
//! has a ground truth the others don't:
//!
//! * **round-trip** — the binary trace codec must be lossless: decoding
//!   the recorded bytes yields the recorded events, and re-encoding the
//!   events yields the recorded bytes.
//! * **compiled** — the bytecode compilation tier must be invisible: for
//!   both the unoptimized and the BigFoot-instrumented program, running
//!   the compiled form under the same schedule must produce the same
//!   outcome and a byte-identical BFTR event stream as the interpreter.
//! * **placement** — the precision theorem (§3.5): the BigFoot-placed
//!   checks must be *precise* (`verify_precise_checks`) and must make the
//!   detector report exactly FastTrack's race verdict — same boolean, same
//!   set of racy locations. The theorem is *per trace*: both detectors
//!   consume the **same** recorded execution of the instrumented program
//!   (FastTrack checks at each access and ignores the `check` statements;
//!   BigFoot checks only at them). Comparing two separate executions
//!   would be unsound — the original and instrumented programs interleave
//!   differently under a randomized scheduler, and a racy program's
//!   verdict may legitimately differ between schedules.
//! * **replay** — the sharded parallel replay engine must be bit-identical
//!   to serial detection at every worker count, for both the unoptimized
//!   and the optimized placement.
//! * **compressed** — the grammar-compressed trace layer must be
//!   invisible: the `BFTC` container must round-trip to the exact `BFTR`
//!   bytes, and detection directly on the compressed form (with rule
//!   memoization) must be byte-identical to serial detection, for both
//!   placements at every worker count.
//! * **incremental** — the persistent placement cache must be invisible:
//!   a cold incremental run must equal direct instrumentation, and after
//!   a deterministic single-method mutation (derived from the case), a
//!   warm re-analysis replaying cached placements must be byte-identical
//!   to a cold run of the mutated program.
//! * **pipeline** — handing the same events across the batched SPSC ring
//!   (producer thread → detector thread) must leave every verdict
//!   byte-identical, both for direct pipelined detection and for the
//!   pipelined replay front-end, at every worker count. The oracle uses a
//!   deliberately tiny batch and ring so batch boundaries and
//!   backpressure fire on every case. The same check sweeps the sharded
//!   multi-worker fan-out (`replay_sharded` / `djit_sharded`) across
//!   worker counts, so every ring in the two-stage topology sees batch
//!   boundaries and backpressure too.
//!
//! All oracles are deterministic functions of `(program, policy)`, which
//! is what lets the shrinker re-validate determinism at every step.

use bigfoot::{instrument, instrument_incremental, InstrumentOptions, Instrumented};
use bigfoot_bfj::{
    compile, fingerprint_block, mutate, site_count,
    trace::{read_event, read_header},
    CompiledVm, Event, EventSink, Interp, MutationKind, Program, RecordingSink, RunOutcome,
    SchedPolicy, TraceWriter,
};
use bigfoot_detectors::{
    detect_pipelined, djit_sharded, replay_compressed, replay_pipelined, replay_sharded,
    replay_trace, verify_precise_checks, Detector, DjitDetector, PipelineConfig, ReplayConfig,
    Stats,
};

/// Step bound for generated programs (they terminate well before this;
/// the bound turns a generator bug into an error instead of a hang).
const MAX_STEPS: u64 = 50_000_000;

/// Worker counts the replay oracle exercises (one even divisor of the
/// shard count, one that is not).
const REPLAY_WORKERS: [usize; 2] = [2, 5];

/// Worker counts the sharded-pipeline oracle sweeps: the degenerate
/// single worker, a count that does not divide the shard count, and an
/// even divisor.
const SHARDED_WORKERS: [usize; 3] = [1, 3, 4];

/// Which oracle observed a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// The program failed to run at all (generator contract violation).
    Execution,
    /// Trace encode/decode round-trip mismatch.
    RoundTrip,
    /// Compiled (bytecode VM) run diverges from the interpreted run.
    Compiled,
    /// FastTrack vs BigFoot placement verdict mismatch, or imprecise
    /// checks.
    Placement,
    /// Parallel replay verdict differs from serial detection.
    Replay,
    /// Compressed-trace round trip or compressed-form detection differs
    /// from the uncompressed path.
    Compressed,
    /// Pipelined (batched ring hand-off) verdict differs from serial
    /// detection.
    Pipeline,
    /// Warm incremental re-analysis (persistent placement cache) differs
    /// from a cold run.
    Incremental,
}

impl OracleKind {
    /// Stable lowercase name (used in corpus directives and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::Execution => "execution",
            OracleKind::RoundTrip => "roundtrip",
            OracleKind::Compiled => "compiled",
            OracleKind::Placement => "placement",
            OracleKind::Replay => "replay",
            OracleKind::Compressed => "compressed",
            OracleKind::Pipeline => "pipeline",
            OracleKind::Incremental => "incremental",
        }
    }

    /// Inverse of [`OracleKind::name`].
    pub fn from_name(name: &str) -> Option<OracleKind> {
        Some(match name {
            "execution" => OracleKind::Execution,
            "roundtrip" => OracleKind::RoundTrip,
            "compiled" => OracleKind::Compiled,
            "placement" => OracleKind::Placement,
            "replay" => OracleKind::Replay,
            "compressed" => OracleKind::Compressed,
            "pipeline" => OracleKind::Pipeline,
            "incremental" => OracleKind::Incremental,
            _ => return None,
        })
    }
}

/// A cross-check failure: which oracle fired and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// One-line description of the disagreement.
    pub detail: String,
}

impl Divergence {
    fn new(oracle: OracleKind, detail: impl Into<String>) -> Divergence {
        let detail: String = detail.into();
        // Corpus directives are line-oriented; keep the detail on one.
        let detail = detail.replace('\n', "; ");
        Divergence { oracle, detail }
    }
}

/// Feeds one interpreter run into both the binary trace writer and an
/// in-memory event recording, so the two views come from the *same*
/// execution.
struct Tee<'a> {
    writer: &'a mut TraceWriter,
    rec: &'a mut RecordingSink,
}

impl EventSink for Tee<'_> {
    fn event(&mut self, ev: &Event) {
        self.writer.event(ev);
        self.rec.event(ev);
    }
}

/// Runs `program` once, returning the encoded trace, the event list, and
/// the run outcome (the compiled oracle compares the latter too).
fn record(
    program: &Program,
    policy: SchedPolicy,
) -> Result<(Vec<u8>, Vec<Event>, RunOutcome), String> {
    let mut writer = TraceWriter::new();
    let mut rec = RecordingSink::default();
    let mut tee = Tee {
        writer: &mut writer,
        rec: &mut rec,
    };
    let outcome = Interp::new(program, policy)
        .with_max_steps(MAX_STEPS)
        .run(&mut tee)
        .map_err(|e| format!("runtime error: {e}"))?;
    Ok((writer.into_bytes(), rec.events, outcome))
}

/// The compiled-tier oracle: lowering `program` to bytecode and running
/// it under the same policy must reproduce the interpreter's outcome and
/// its exact trace bytes.
fn compiled_matches(
    label: &str,
    program: &Program,
    policy: SchedPolicy,
    interp_bytes: &[u8],
    interp_outcome: &RunOutcome,
) -> Option<Divergence> {
    let compiled = compile(program);
    let mut writer = TraceWriter::new();
    let outcome = match CompiledVm::new(&compiled, policy)
        .with_max_steps(MAX_STEPS)
        .run(&mut writer)
    {
        Ok(o) => o,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Compiled,
                format!("{label}: compiled run failed where the interpreter succeeded: {e}"),
            ))
        }
    };
    if outcome != *interp_outcome {
        return Some(Divergence::new(
            OracleKind::Compiled,
            format!("{label}: compiled outcome {outcome:?}, interpreted {interp_outcome:?}"),
        ));
    }
    let bytes = writer.into_bytes();
    if bytes != interp_bytes {
        let first = bytes
            .iter()
            .zip(interp_bytes)
            .position(|(a, b)| a != b)
            .unwrap_or(bytes.len().min(interp_bytes.len()));
        return Some(Divergence::new(
            OracleKind::Compiled,
            format!(
                "{label}: compiled trace diverges at byte {first} \
                 ({} compiled bytes vs {} interpreted)",
                bytes.len(),
                interp_bytes.len()
            ),
        ));
    }
    None
}

/// Feeds a recorded trace to a serial detector.
fn serial(events: &[Event], mut det: Detector) -> Stats {
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

/// The round-trip oracle for one (bytes, events) pair.
fn roundtrip(label: &str, bytes: &[u8], events: &[Event]) -> Option<Divergence> {
    // Decode the bytes and compare event-by-event.
    let mut pos = match read_header(bytes) {
        Ok(p) => p,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::RoundTrip,
                format!("{label}: recorded trace has a bad header: {e}"),
            ))
        }
    };
    let mut decoded = 0usize;
    loop {
        match read_event(bytes, &mut pos) {
            Ok(None) => break,
            Ok(Some(ev)) => {
                match events.get(decoded) {
                    Some(expected) if *expected == ev => {}
                    Some(expected) => {
                        return Some(Divergence::new(
                            OracleKind::RoundTrip,
                            format!(
                                "{label}: event {decoded} decodes to {ev:?}, recorded {expected:?}"
                            ),
                        ))
                    }
                    None => {
                        return Some(Divergence::new(
                            OracleKind::RoundTrip,
                            format!("{label}: trace decodes more events than were recorded"),
                        ))
                    }
                }
                decoded += 1;
            }
            Err(e) => {
                return Some(Divergence::new(
                    OracleKind::RoundTrip,
                    format!("{label}: decode error at event {decoded}: {e}"),
                ))
            }
        }
    }
    if decoded != events.len() {
        return Some(Divergence::new(
            OracleKind::RoundTrip,
            format!(
                "{label}: trace decodes {decoded} events, recorder saw {}",
                events.len()
            ),
        ));
    }
    // Re-encode the recorded events and compare the bytes.
    let mut w = TraceWriter::new();
    for ev in events {
        w.event(ev);
    }
    if w.into_bytes() != bytes {
        return Some(Divergence::new(
            OracleKind::RoundTrip,
            format!("{label}: re-encoding the recorded events changes the byte stream"),
        ));
    }
    None
}

/// Compares a replay verdict against the serial ground truth.
fn replay_matches(
    label: &str,
    bytes: &[u8],
    config: &ReplayConfig,
    workers: usize,
    truth: &Stats,
) -> Option<Divergence> {
    let got = match replay_trace(bytes, config) {
        Ok(s) => s,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Replay,
                format!("{label}: replay at {workers} worker(s) failed: {e}"),
            ))
        }
    };
    if got.races != truth.races {
        return Some(Divergence::new(
            OracleKind::Replay,
            format!(
                "{label}: replay at {workers} worker(s) reports races {:?}, serial {:?}",
                got.races, truth.races
            ),
        ));
    }
    let got_json = got.to_json().to_string_compact();
    let truth_json = truth.to_json().to_string_compact();
    if got_json != truth_json {
        return Some(Divergence::new(
            OracleKind::Replay,
            format!(
                "{label}: replay at {workers} worker(s) stats diverge: {got_json} vs {truth_json}"
            ),
        ));
    }
    None
}

/// The compressed-trace oracle for one recorded trace: byte-exact
/// container round trip, then compressed-form detection (memoized
/// grammar walk) against the serial ground truth for each configuration.
fn compressed_matches(
    label: &str,
    bytes: &[u8],
    configs: &[(&str, ReplayConfig, &Stats)],
) -> Option<Divergence> {
    let packed = match bigfoot_bfj::compress(bytes) {
        Ok(p) => p,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Compressed,
                format!("{label}: compressing the recorded trace failed: {e}"),
            ))
        }
    };
    match bigfoot_bfj::decompress(&packed) {
        Ok(back) if back == bytes => {}
        Ok(back) => {
            let first = back
                .iter()
                .zip(bytes)
                .position(|(a, b)| a != b)
                .unwrap_or(back.len().min(bytes.len()));
            return Some(Divergence::new(
                OracleKind::Compressed,
                format!(
                    "{label}: round trip diverges at byte {first} \
                     ({} decompressed bytes vs {} recorded)",
                    back.len(),
                    bytes.len()
                ),
            ));
        }
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Compressed,
                format!("{label}: decompressing the container failed: {e}"),
            ))
        }
    }
    for (name, config, truth) in configs {
        for workers in REPLAY_WORKERS {
            let mut config = config.clone();
            config.workers = workers;
            let got = match replay_compressed(&packed, &config) {
                Ok(s) => s,
                Err(e) => {
                    return Some(Divergence::new(
                        OracleKind::Compressed,
                        format!(
                            "{label}: compressed {name} replay at {workers} worker(s) failed: {e}"
                        ),
                    ))
                }
            };
            let got_json = got.to_json().to_string_compact();
            let truth_json = truth.to_json().to_string_compact();
            if got.races != truth.races || got_json != truth_json {
                return Some(Divergence::new(
                    OracleKind::Compressed,
                    format!(
                        "{label}: compressed {name} detection at {workers} worker(s) \
                         diverges from serial: {got_json} vs {truth_json}"
                    ),
                ));
            }
        }
    }
    None
}

/// Compares a pipelined verdict against the serial ground truth.
fn pipelined_matches(label: &str, what: &str, got: &Stats, truth: &Stats) -> Option<Divergence> {
    let got_json = got.to_json().to_string_compact();
    let truth_json = truth.to_json().to_string_compact();
    if got_json != truth_json {
        return Some(Divergence::new(
            OracleKind::Pipeline,
            format!("{label}: {what} diverges from serial: {got_json} vs {truth_json}"),
        ));
    }
    None
}

/// Runs every oracle over one case. `None` means all cross-checks agree.
///
/// Deterministic in `(program, policy)`: calling this twice on the same
/// inputs yields the same answer (the shrinker relies on that).
pub fn run_oracles(program: &Program, policy: SchedPolicy) -> Option<Divergence> {
    let _span = bigfoot_obs::span!("fuzz.case");

    // One execution per placement; every oracle below reuses these.
    let (ft_bytes, ft_events, ft_outcome) = match record(program, policy) {
        Ok(x) => x,
        Err(e) => return Some(Divergence::new(OracleKind::Execution, e)),
    };
    let inst = instrument(program);
    let (bf_bytes, bf_events, bf_outcome) = match record(&inst.program, policy) {
        Ok(x) => x,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Execution,
                format!("instrumented program: {e}"),
            ))
        }
    };

    bigfoot_obs::count!("fuzz.oracle.roundtrip");
    if let Some(d) = roundtrip("unoptimized", &ft_bytes, &ft_events) {
        return Some(d);
    }
    if let Some(d) = roundtrip("instrumented", &bf_bytes, &bf_events) {
        return Some(d);
    }

    // The compiled tier must be invisible for both placements: same
    // outcome, byte-identical trace. Running it right after round-trip
    // means a codec bug cannot masquerade as a compilation bug.
    bigfoot_obs::count!("fuzz.oracle.compiled");
    if let Some(d) = compiled_matches("unoptimized", program, policy, &ft_bytes, &ft_outcome) {
        return Some(d);
    }
    if let Some(d) = compiled_matches(
        "instrumented",
        &inst.program,
        policy,
        &bf_bytes,
        &bf_outcome,
    ) {
        return Some(d);
    }

    // Per-trace comparison: both detectors read the instrumented run.
    bigfoot_obs::count!("fuzz.oracle.placement");
    let ft = serial(&bf_events, Detector::fasttrack());
    let bf = serial(&bf_events, Detector::bigfoot(inst.proxies.clone()));
    if let Err(e) = verify_precise_checks(&bf_events) {
        return Some(Divergence::new(
            OracleKind::Placement,
            format!("imprecise checks: {e}"),
        ));
    }
    if ft.has_races() != bf.has_races() || ft.racy_locations() != bf.racy_locations() {
        return Some(Divergence::new(
            OracleKind::Placement,
            format!(
                "fasttrack sees races at {:?}, bigfoot at {:?}",
                ft.racy_locations(),
                bf.racy_locations()
            ),
        ));
    }

    // The persistent placement cache must be invisible: cold incremental
    // == direct instrumentation, and a warm replay after a deterministic
    // mutation == a cold run of the mutated program, byte for byte.
    bigfoot_obs::count!("fuzz.oracle.incremental");
    if let Some(d) = incremental_matches(program, policy, &inst) {
        return Some(d);
    }

    bigfoot_obs::count!("fuzz.oracle.replay");
    let ft_truth = serial(&ft_events, Detector::fasttrack());
    for workers in REPLAY_WORKERS {
        if let Some(d) = replay_matches(
            "unoptimized",
            &ft_bytes,
            &ReplayConfig::fasttrack(workers),
            workers,
            &ft_truth,
        ) {
            return Some(d);
        }
        if let Some(d) = replay_matches(
            "instrumented",
            &bf_bytes,
            &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            workers,
            &bf,
        ) {
            return Some(d);
        }
    }

    // Detection straight off the grammar-compressed container must be
    // invisible: both engines on the raw trace (fine FastTrack, which
    // stresses fallback, and footprint SlimState, which stresses memoized
    // extrapolation) plus BigFoot on the instrumented trace.
    bigfoot_obs::count!("fuzz.oracle.compressed");
    let ss_truth = serial(&ft_events, Detector::slimstate());
    if let Some(d) = compressed_matches(
        "unoptimized",
        &ft_bytes,
        &[
            ("fasttrack", ReplayConfig::fasttrack(1), &ft_truth),
            ("slimstate", ReplayConfig::slimstate(1), &ss_truth),
        ],
    ) {
        return Some(d);
    }
    if let Some(d) = compressed_matches(
        "instrumented",
        &bf_bytes,
        &[(
            "bigfoot",
            ReplayConfig::bigfoot(inst.proxies.clone(), 1),
            &bf,
        )],
    ) {
        return Some(d);
    }

    // Pipelined hand-off must be invisible too. A three-event batch and a
    // two-slot ring force batch boundaries, partial final batches, and
    // producer backpressure even on small generated programs.
    bigfoot_obs::count!("fuzz.oracle.pipeline");
    let pcfg = PipelineConfig {
        batch_events: 3,
        ring_slots: 2,
    };
    let (_, got) = detect_pipelined(
        &pcfg,
        |sink| {
            for ev in &ft_events {
                sink.event(ev);
            }
        },
        Detector::fasttrack(),
    );
    if let Some(d) = pipelined_matches("unoptimized", "pipelined detection", &got, &ft_truth) {
        return Some(d);
    }
    let (_, got) = detect_pipelined(
        &pcfg,
        |sink| {
            for ev in &bf_events {
                sink.event(ev);
            }
        },
        Detector::bigfoot(inst.proxies.clone()),
    );
    if let Some(d) = pipelined_matches("instrumented", "pipelined detection", &got, &bf) {
        return Some(d);
    }
    for workers in REPLAY_WORKERS {
        let (_, got) = replay_pipelined(&pcfg, &ReplayConfig::fasttrack(workers), |sink| {
            for ev in &ft_events {
                sink.event(ev);
            }
        });
        if let Some(d) = pipelined_matches(
            "unoptimized",
            &format!("pipelined replay at {workers} worker(s)"),
            &got,
            &ft_truth,
        ) {
            return Some(d);
        }
        let (_, got) = replay_pipelined(
            &pcfg,
            &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            |sink| {
                for ev in &bf_events {
                    sink.event(ev);
                }
            },
        );
        if let Some(d) = pipelined_matches(
            "instrumented",
            &format!("pipelined replay at {workers} worker(s)"),
            &got,
            &bf,
        ) {
            return Some(d);
        }
    }

    // Sharded multi-worker pipelined detection must also be invisible,
    // at every worker count — including DJIT+, which has no offline
    // replay path and goes through its dedicated router.
    let djit_truth = serial_djit(&ft_events);
    for workers in SHARDED_WORKERS {
        let (_, got) = replay_sharded(&pcfg, &ReplayConfig::fasttrack(workers), |sink| {
            for ev in &ft_events {
                sink.event(ev);
            }
        });
        if let Some(d) = pipelined_matches(
            "unoptimized",
            &format!("sharded detection at {workers} worker(s)"),
            &got,
            &ft_truth,
        ) {
            return Some(d);
        }
        let (_, got) = replay_sharded(
            &pcfg,
            &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            |sink| {
                for ev in &bf_events {
                    sink.event(ev);
                }
            },
        );
        if let Some(d) = pipelined_matches(
            "instrumented",
            &format!("sharded detection at {workers} worker(s)"),
            &got,
            &bf,
        ) {
            return Some(d);
        }
        let (_, got) = djit_sharded(&pcfg, workers, |sink| {
            for ev in &ft_events {
                sink.event(ev);
            }
        });
        if let Some(d) = pipelined_matches(
            "unoptimized",
            &format!("sharded djit at {workers} worker(s)"),
            &got,
            &djit_truth,
        ) {
            return Some(d);
        }
    }
    None
}

/// The incremental-placement oracle: run the cold incremental pipeline
/// into a throwaway cache, apply a single-method mutation derived
/// deterministically from the case, then check that the warm re-analysis
/// (replaying cached placements for clean methods) is byte-identical to
/// a cold run of the mutated program.
///
/// The mutation choice is a pure function of `(program, policy)` — via
/// the stable body fingerprint and the policy's scheduling parameters —
/// so the whole oracle stays deterministic and shrinkable.
fn incremental_matches(
    program: &Program,
    policy: SchedPolicy,
    inst: &Instrumented,
) -> Option<Divergence> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bigfoot-fuzz-inc-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = InstrumentOptions::default();

    let diverge = |detail: String| {
        let _ = std::fs::remove_dir_all(&dir);
        Some(Divergence::new(OracleKind::Incremental, detail))
    };

    let (cold, cold_stats) = instrument_incremental(program, opts, &dir);
    if cold.program != inst.program {
        return diverge(format!(
            "cold incremental placement differs from direct instrumentation \
             ({} hit(s) on an empty cache)",
            cold_stats.hits
        ));
    }

    // Deterministic mutation: body fingerprints are stable across runs,
    // and the policy folds in so different schedules of the same program
    // explore different edits.
    let fp = fingerprint_block(&program.main)
        ^ match policy {
            SchedPolicy::RoundRobin { quantum } => quantum as u64,
            SchedPolicy::Random { seed, switch_inv } => seed.rotate_left(7) ^ switch_inv as u64,
        };
    let sites = site_count(program);
    let site = (fp % sites as u64) as usize;
    let kind = MutationKind::ALL[(fp >> 8) as usize % MutationKind::ALL.len()];
    let salt = (fp % 97) as i64;
    let mut edited = program.clone();
    let Some(edited_name) = mutate(&mut edited, site, kind, salt) else {
        let _ = std::fs::remove_dir_all(&dir);
        return None;
    };

    let direct = instrument(&edited);
    let (warm, warm_stats) = instrument_incremental(&edited, opts, &dir);
    if !warm_stats.warm {
        return diverge("the cache written by the cold run was not usable on the warm run".into());
    }
    if warm_stats.hits + warm_stats.misses != sites {
        return diverge(format!(
            "warm run accounted for {} site(s), program has {sites}",
            warm_stats.hits + warm_stats.misses
        ));
    }
    if warm.program != direct.program {
        return diverge(format!(
            "warm replay after a {} edit to {edited_name} diverges from a cold run \
             ({} hit(s), {} miss(es))",
            kind.name(),
            warm_stats.hits,
            warm_stats.misses
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    None
}

/// Feeds a recorded trace to the serial DJIT+ detector.
fn serial_djit(events: &[Event]) -> Stats {
    let mut det = DjitDetector::new();
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    #[test]
    fn agreeing_program_passes_every_oracle() {
        let p = parse_program(
            "class C { field x; meth poke(l, v) { acq(l); this.x = v; rel(l); return 0; } }
             class L { }
             main {
                 c = new C; l = new L;
                 fork t1 = c.poke(l, 1);
                 fork t2 = c.poke(l, 2);
                 join(t1); join(t2);
             }",
        )
        .unwrap();
        assert_eq!(run_oracles(&p, SchedPolicy::default()), None);
    }

    #[test]
    fn racy_program_still_passes_because_all_sides_agree() {
        // Divergence means *disagreement between* detectors, not races.
        let p = parse_program(
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 fork t1 = c.poke(1);
                 fork t2 = c.poke(2);
                 join(t1); join(t2);
             }",
        )
        .unwrap();
        assert_eq!(
            run_oracles(
                &p,
                SchedPolicy::Random {
                    seed: 3,
                    switch_inv: 2
                }
            ),
            None
        );
    }

    #[test]
    fn corrupt_codec_would_be_caught() {
        // Sanity-check the round-trip comparator itself: flipping one
        // payload byte in a recorded trace must register as a divergence.
        let p = parse_program("main { a = new_array(4); a[1] = 2; x = a[1]; }").unwrap();
        let (mut bytes, events, _) = record(&p, SchedPolicy::default()).unwrap();
        assert!(roundtrip("ok", &bytes, &events).is_none());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x7;
        assert!(roundtrip("bad", &bytes, &events).is_some());
    }
}
