//! `bfc` — the BigFoot compiler/checker command line.
//!
//! ```text
//! bfc instrument <file.bfj> [--mode bigfoot|redcard|naive]
//! bfc analyze <file.bfj> [--incremental [--cache-dir DIR]] [--out FILE] [--json]
//! bfc mutate <file.bfj> [--site N] [--kind arith|field-write|lock]
//!                       [--salt K] [--out FILE] [--json]
//! bfc check <file.bfj> [--detector bigfoot|fasttrack|redcard|slimstate|slimcard|djit]
//!                      [--seed N] [--schedules N] [--replay-workers N]
//!                      [--pipeline [--detect-workers N]] [--compiled]
//!                      [--record-out FILE [--compress-trace]] [--json]
//! bfc run <file.bfj>
//! bfc stats <file.bfj> [--json]
//! bfc trace <file.bfj> [--seed N] [--limit N]
//! bfc profile <file.bfj> [--detector NAME] [--pipeline [--detect-workers N]] [--compiled]
//!                        [--record-out FILE [--compress-trace]] [--json]
//! bfc replay <trace> [--detector NAME] [--replay-workers N] [--json]
//! bfc compress <trace.bftr> <out.bftc>
//! bfc decompress <trace.bftc> <out.bftr>
//! bfc fuzz [--seed-range A..B] [--budget SECS] [--corpus DIR] [--json]
//! ```
//!
//! * `instrument` prints the instrumented program.
//! * `analyze` runs the static analysis and reports the placement: the
//!   stable per-site body fingerprints, the number of checks inserted,
//!   and — with `--incremental` — the persistent placement cache's
//!   hit/miss/skip accounting against `--cache-dir` (default
//!   `.bigfoot-cache`). `--out FILE` writes the instrumented program, so
//!   two invocations can be diffed for byte-identity. Fingerprints are
//!   process-independent: running `analyze` twice in separate processes
//!   prints the same digests.
//! * `mutate` applies one deterministic source edit (the incremental
//!   pipeline's differential-test mutations) to the `--site`-th method
//!   and prints the edited program — the driver for cold/warm cache
//!   experiments from the shell.
//! * `check` executes the program under a detector (optionally across
//!   several random schedules) and reports any data races. With
//!   `--replay-workers N` the run is recorded to an in-memory trace and
//!   detection replays it through the sharded parallel engine — the
//!   verdicts are identical to the serial detector's at any `N`. With
//!   `--pipeline` the interpreter produces into a batched SPSC ring and
//!   the detector (or, combined with `--replay-workers`, the replay
//!   annotator) consumes on its own thread — verdicts again identical,
//!   byte for byte. `--pipeline --detect-workers N` fans the detection
//!   stage out to `N` sharded workers (every detector, including djit);
//!   the report stays byte-identical at any `N`. `--compiled` swaps the
//!   tree-walking interpreter for the bytecode compilation tier
//!   (`bigfoot-bfj`'s `CompiledVm`) as the event producer — verdicts
//!   stay byte-identical to the interpreted run, and the flag composes
//!   with `--pipeline`, `--detect-workers`, and `--replay-workers`.
//!   `--record-out FILE` additionally records the schedule's event
//!   stream to a binary trace file: raw `BFTR`, or — with
//!   `--compress-trace` — the grammar-compressed `BFTC` container.
//!   (`--trace-out` is taken by the flight recorder's Chrome trace, so
//!   event-stream recording uses `--record-out`.)
//! * `run` executes the program uninstrumented and prints `main`'s
//!   final integer variables.
//! * `stats` prints the static-analysis summary and per-detector work for
//!   one run.
//! * `profile` runs the full pipeline with `bigfoot-obs` collection on
//!   and prints the per-phase time/count breakdown (static-analysis
//!   spans, entailment share, shadow transitions, detector counters).
//!   With `--record-out`/`--compress-trace` the recording happens inside
//!   the profiled region, so the `trace.compressed_bytes`/`trace.rules`/
//!   `trace.rule_hits` counters and the compression-ratio gauge show up
//!   in the metrics snapshot.
//! * `replay` detects races on a previously recorded trace file. The
//!   container format is auto-detected from the magic bytes: raw `BFTR`
//!   traces replay through the standard engine, `BFTC` containers run
//!   the memoizing compressed-replay engine directly on the grammar —
//!   verdicts are byte-identical either way. Field-proxy groupings are
//!   not part of the trace, so replay uses the identity table; record
//!   from the matching `--detector` to get the check events you expect.
//! * `compress` / `decompress` convert between the raw `BFTR` encoding
//!   and the `BFTC` grammar-compressed container (both directions are
//!   lossless; feeding the wrong format is a typed error).
//! * `fuzz` runs the differential fuzzing campaign: each seed in the
//!   range becomes a random program + schedule cross-checked between the
//!   unoptimized and BigFoot-optimized placements, the interpreted and
//!   compiled execution tiers, cold and warm incremental re-analysis,
//!   serial and sharded replay, and the trace codec round-trip.
//!   Divergences are shrunk to
//!   minimal reproducers and written to the corpus directory; the exit
//!   code is non-zero if any were found.
//! * `--json` on `check`, `stats`, `profile`, and `fuzz` emits a
//!   machine-readable report with a stable schema (see
//!   `docs/OBSERVABILITY.md`).

use bigfoot::{
    instrument, instrument_incremental, naive_instrument, redcard_instrument, InstrumentOptions,
};
use bigfoot_bfj::{
    compile, compress, decompress, fingerprint_block, fingerprint_method, is_compressed,
    mutate as mutate_site, parse_program, pretty, site_count, trace::TraceWriter, CompiledVm,
    CompressedTraceWriter, EventSink, Interp, MutationKind, NullSink, Program, RunOutcome,
    RuntimeError, SchedPolicy, Tid, Value,
};
use bigfoot_detectors::{
    detect_pipelined, djit_sharded, replay_compressed_report, replay_pipelined, replay_sharded,
    replay_trace, run_pipelined, Detector, DjitDetector, PipelineConfig, ProxyTable, ReplayConfig,
    Stats,
};
use bigfoot_fuzz::{run_campaign, FuzzOptions};
use bigfoot_obs::cli::CliArgs;
use bigfoot_obs::json::Json;
use std::io::Write;
use std::process::ExitCode;

/// `outln!` that tolerates a closed stdout (e.g. piping into `head`):
/// on a broken pipe the process exits quietly instead of panicking.
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if writeln!(out, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// `print!` variant of [`outln!`].
macro_rules! outp {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if write!(out, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// Schema version stamped into every `bfc --json` report.
/// v2: `metrics.timers.*` carry `p50`/`p90`/`p99` percentile fields and
/// the snapshot gained a `gauges` section (`pipeline.depth_max` moved
/// there from `counters`).
const SCHEMA_VERSION: u64 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bfc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  bfc instrument <file.bfj> [--mode bigfoot|redcard|naive]");
            eprintln!(
                "  bfc analyze <file.bfj> [--incremental [--cache-dir DIR]] [--out FILE] [--json]"
            );
            eprintln!(
                "  bfc mutate <file.bfj> [--site N] [--kind arith|field-write|lock] [--salt K] \
                 [--out FILE] [--json]"
            );
            eprintln!(
                "  bfc check <file.bfj> [--detector NAME] [--seed N] [--schedules N] \
                 [--replay-workers N] [--pipeline [--detect-workers N]] [--compiled] \
                 [--record-out FILE [--compress-trace]] [--trace-out FILE] [--json]"
            );
            eprintln!("  bfc run <file.bfj>");
            eprintln!("  bfc stats <file.bfj> [--json]");
            eprintln!("  bfc trace <file.bfj> [--seed N] [--limit N]");
            eprintln!(
                "  bfc profile <file.bfj> [--detector NAME] [--pipeline [--detect-workers N]] \
                 [--compiled] [--record-out FILE [--compress-trace]] [--trace-out FILE] [--json]"
            );
            eprintln!("  bfc replay <trace.bftr|trace.bftc> [--detector NAME] [--replay-workers N] [--json]");
            eprintln!("  bfc compress <trace.bftr> <out.bftc>");
            eprintln!("  bfc decompress <trace.bftc> <out.bftr>");
            eprintln!("  bfc fuzz [--seed-range A..B] [--budget SECS] [--corpus DIR] [--json]");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

/// Stable per-site fingerprints for `bfc analyze`: every class method
/// (keyed `Class.method#ordinal`, matching the placement cache) plus
/// `main`. The digests come from `bigfoot-bfj`'s structural hasher, so
/// they are identical across processes and machines.
fn site_fingerprints(p: &Program) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for c in &p.classes {
        for (mi, m) in c.methods.iter().enumerate() {
            let ordinal = c.methods[..mi].iter().filter(|o| o.name == m.name).count();
            out.push((
                format!("{}.{}#{}", c.name, m.name, ordinal),
                fingerprint_method(m),
            ));
        }
    }
    out.push(("main".to_owned(), fingerprint_block(&p.main)));
    out
}

/// The common envelope of every `bfc --json` report.
fn envelope(command: &str, file: &str) -> Json {
    let mut out = Json::object();
    out.set("schema_version", SCHEMA_VERSION);
    out.set("tool", "bfc");
    out.set("command", command);
    out.set("file", file);
    out
}

fn races_json(stats: &Stats) -> Json {
    let mut races = Json::array();
    for race in &stats.races {
        let mut r = Json::object();
        r.set("target", race.target.to_string());
        r.set("info", race.info.to_string());
        races.push(r);
    }
    races
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let args = CliArgs::parse(
        args,
        &[
            "--mode",
            "--detector",
            "--seed",
            "--schedules",
            "--limit",
            "--replay-workers",
            "--detect-workers",
            "--seed-range",
            "--budget",
            "--corpus",
            "--trace-out",
            "--record-out",
            "--cache-dir",
            "--site",
            "--kind",
            "--salt",
            "--out",
        ],
        &[
            "--json",
            "--pipeline",
            "--compiled",
            "--compress-trace",
            "--incremental",
        ],
    )?;
    let cmd = args.positional(0).ok_or("missing command")?.to_owned();
    if cmd == "fuzz" {
        return fuzz_cmd(&args);
    }
    // Trace-file commands take a recorded trace, not a `.bfj` program.
    if matches!(cmd.as_str(), "replay" | "compress" | "decompress") {
        return trace_file_cmd(&cmd, &args);
    }
    let file = args.positional(1).ok_or("missing input file")?.to_owned();
    let program = load(&file)?;
    let json = args.has("--json");
    match cmd.as_str() {
        "instrument" => {
            let mode = args.one_of("--mode", &["bigfoot", "redcard", "naive"])?;
            let out = match mode {
                "redcard" => redcard_instrument(&program).0,
                "naive" => naive_instrument(&program),
                _ => instrument(&program).program,
            };
            outp!("{}", pretty(&out));
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let incremental = args.has("--incremental");
            let cache_dir = args.value("--cache-dir").unwrap_or(".bigfoot-cache");
            let out_file = args.value("--out");
            let (inst, inc) = if incremental {
                let (inst, stats) = instrument_incremental(
                    &program,
                    InstrumentOptions::default(),
                    std::path::Path::new(cache_dir),
                );
                (inst, Some(stats))
            } else {
                (instrument(&program), None)
            };
            if let Some(path) = out_file {
                std::fs::write(path, pretty(&inst.program))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            let fps = site_fingerprints(&program);
            if json {
                let mut report = envelope("analyze", &file);
                report.set("incremental", incremental);
                let mut stat = Json::object();
                stat.set("methods", inst.stats.methods as u64);
                stat.set("checks_inserted", inst.stats.checks_inserted as u64);
                stat.set("total_ms", inst.stats.total_time.as_secs_f64() * 1e3);
                report.set("static", stat);
                if let Some(stats) = &inc {
                    let mut c = Json::object();
                    c.set("warm", stats.warm);
                    c.set("hits", stats.hits as u64);
                    c.set("misses", stats.misses as u64);
                    c.set("invalid", stats.cache_invalid);
                    c.set("skip_rate", stats.skip_rate());
                    report.set("cache", c);
                }
                // Hex strings, not numbers: the JSON layer stores numbers
                // as f64, which cannot carry a full 64-bit digest.
                let mut sites = Json::array();
                for (key, fp) in &fps {
                    let mut s = Json::object();
                    s.set("site", key.as_str());
                    s.set("fingerprint", format!("{fp:016x}"));
                    sites.push(s);
                }
                report.set("fingerprints", sites);
                outln!("{}", report.to_string_pretty());
            } else {
                outln!(
                    "{file}: {} site(s), {} check(s) inserted",
                    fps.len(),
                    inst.stats.checks_inserted
                );
                for (key, fp) in &fps {
                    outln!("  {key:<32} {fp:016x}");
                }
                if let Some(stats) = &inc {
                    outln!(
                        "cache: {} — {} hit(s), {} miss(es), {:.1}% skipped{}",
                        if stats.warm { "warm" } else { "cold" },
                        stats.hits,
                        stats.misses,
                        stats.skip_rate() * 100.0,
                        if stats.cache_invalid {
                            " (previous cache was malformed)"
                        } else {
                            ""
                        }
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "mutate" => {
            let site: usize = args.parsed("--site")?.unwrap_or(0);
            let kind_name = args.one_of("--kind", &["arith", "field-write", "lock"])?;
            let kind = match kind_name {
                "field-write" => MutationKind::AddFieldWrite,
                "lock" => MutationKind::AddLock,
                _ => MutationKind::ArithTweak,
            };
            let salt: i64 = args.parsed("--salt")?.unwrap_or(1);
            let mut edited = program.clone();
            let sites = site_count(&edited);
            let name = mutate_site(&mut edited, site, kind, salt).ok_or_else(|| {
                format!("--site {site} out of range (program has {sites} site(s))")
            })?;
            let text = pretty(&edited);
            let out_file = args.value("--out");
            if let Some(path) = out_file {
                std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            if json {
                let mut report = envelope("mutate", &file);
                report.set("site", site as u64);
                report.set("kind", kind_name);
                report.set("salt", salt);
                report.set("edited", name.as_str());
                report.set("sites", sites as u64);
                // Without --out the edited program rides in the report.
                if out_file.is_none() {
                    report.set("program", text.as_str());
                }
                outln!("{}", report.to_string_pretty());
            } else if out_file.is_some() {
                outln!("edited {name} ({kind_name}, salt {salt})");
            } else {
                outp!("{text}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let mut interp = Interp::new(&program, SchedPolicy::default());
            interp
                .run(&mut NullSink)
                .map_err(|e| format!("runtime error: {e}"))?;
            if let Some(env) = interp.final_env(Tid(0)) {
                let mut vars: Vec<_> = env
                    .iter()
                    .filter_map(|(k, v)| match v {
                        Value::Int(n) => Some((k.as_str(), *n)),
                        _ => None,
                    })
                    .collect();
                vars.sort();
                for (k, v) in vars {
                    if !k.contains('$') && !k.contains('\'') {
                        outln!("{k} = {v}");
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let which = args.one_of(
                "--detector",
                &[
                    "bigfoot",
                    "fasttrack",
                    "redcard",
                    "slimstate",
                    "slimcard",
                    "djit",
                ],
            )?;
            let seed: u64 = args.parsed("--seed")?.unwrap_or(1);
            let schedules: u64 = args.parsed("--schedules")?.unwrap_or(1);
            let replay_workers: Option<usize> = args.parsed("--replay-workers")?;
            let pipelined = args.has("--pipeline");
            let compiled = args.has("--compiled");
            let detect_workers: Option<usize> = args.parsed("--detect-workers")?;
            validate_workers(detect_workers, pipelined, replay_workers)?;
            let record_out = args.value("--record-out");
            let compress_trace = args.has("--compress-trace");
            validate_recording(record_out, compress_trace, schedules)?;
            // Enables the flight recorder for the whole run; the guard
            // writes the Chrome trace on drop too, so a panicking
            // detector still leaves a partial trace on disk.
            let trace_guard = args
                .value("--trace-out")
                .map(bigfoot_obs::TraceOutGuard::new);
            if let Some(path) = record_out {
                // `validate_recording` pinned schedules to 1, so this is
                // the same policy the detection loop below will use.
                let policy = if seed == 1 {
                    SchedPolicy::default()
                } else {
                    SchedPolicy::Random {
                        seed,
                        switch_inv: 2,
                    }
                };
                let bytes = record_trace(&program, which, policy, compiled, compress_trace)?;
                std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            let mut any_race = false;
            let mut schedule_reports = Json::array();
            for i in 0..schedules {
                let policy = if schedules == 1 && seed == 1 {
                    SchedPolicy::default()
                } else {
                    SchedPolicy::Random {
                        seed: seed + i,
                        switch_inv: 2,
                    }
                };
                let stats = check_once(
                    &program,
                    which,
                    policy,
                    replay_workers,
                    pipelined,
                    detect_workers,
                    compiled,
                )?;
                if stats.has_races() {
                    any_race = true;
                }
                if json {
                    let mut sched = Json::object();
                    sched.set("schedule", i + 1);
                    sched.set("races", races_json(&stats));
                    sched.set("stats", stats.to_json());
                    schedule_reports.push(sched);
                } else if stats.has_races() {
                    outln!("schedule {}: {} race(s)", i + 1, stats.races.len());
                    for race in &stats.races {
                        outln!("  {} — {}", race.target, race.info);
                    }
                } else {
                    outln!(
                        "schedule {}: no races ({} accesses, {} checks, {} shadow ops)",
                        i + 1,
                        stats.accesses(),
                        stats.checks,
                        stats.shadow_ops
                    );
                }
            }
            if json {
                let mut report = envelope("check", &file);
                report.set("detector", which);
                report.set("seed", seed);
                report.set("schedules", schedules);
                if let Some(workers) = replay_workers {
                    report.set("replay_workers", workers as u64);
                }
                if pipelined {
                    report.set("pipeline", true);
                }
                if let Some(workers) = detect_workers {
                    report.set("detect_workers", workers as u64);
                }
                if compiled {
                    report.set("compiled", true);
                }
                report.set("any_race", any_race);
                report.set("runs", schedule_reports);
                outln!("{}", report.to_string_pretty());
            }
            if let Some(guard) = trace_guard {
                let path = guard.path().display().to_string();
                guard
                    .finish()
                    .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
            }
            Ok(if any_race {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "stats" => {
            let inst = instrument(&program);
            let mut bf = Detector::bigfoot(inst.proxies.clone());
            Interp::new(&inst.program, SchedPolicy::default())
                .run(&mut bf)
                .map_err(|e| format!("runtime error: {e}"))?;
            let bf = bf.finish();
            let mut ft = Detector::fasttrack();
            Interp::new(&program, SchedPolicy::default())
                .run(&mut ft)
                .map_err(|e| format!("runtime error: {e}"))?;
            let ft = ft.finish();
            if json {
                let mut report = envelope("stats", &file);
                let mut stat = Json::object();
                stat.set("methods", inst.stats.methods as u64);
                stat.set("checks_inserted", inst.stats.checks_inserted as u64);
                stat.set("total_ms", inst.stats.total_time.as_secs_f64() * 1e3);
                stat.set("sec_per_method", inst.stats.time_per_method().as_secs_f64());
                report.set("static", stat);
                let mut dets = Json::object();
                dets.set("fasttrack", ft.to_json());
                dets.set("bigfoot", bf.to_json());
                report.set("detectors", dets);
                outln!("{}", report.to_string_pretty());
                return Ok(ExitCode::SUCCESS);
            }
            outln!(
                "static analysis: {} methods, {:.3} ms/method, {} checks inserted",
                inst.stats.methods,
                inst.stats.time_per_method().as_secs_f64() * 1e3,
                inst.stats.checks_inserted
            );
            outln!("{:<20} {:>12} {:>12}", "", "FastTrack", "BigFoot");
            outln!(
                "{:<20} {:>12} {:>12}",
                "accesses",
                ft.accesses(),
                bf.accesses()
            );
            outln!("{:<20} {:>12} {:>12}", "checks", ft.checks, bf.checks);
            outln!(
                "{:<20} {:>12.3} {:>12.3}",
                "check ratio",
                ft.check_ratio(),
                bf.check_ratio()
            );
            outln!(
                "{:<20} {:>12} {:>12}",
                "shadow ops",
                ft.shadow_ops,
                bf.shadow_ops
            );
            outln!(
                "{:<20} {:>12} {:>12}",
                "shadow space",
                ft.shadow_space_end,
                bf.shadow_space_end
            );
            outln!(
                "{:<20} {:>12} {:>12}",
                "races",
                ft.races.len(),
                bf.races.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "trace" => {
            // Print the instrumented program's event stream — the exact
            // view a dynamic detector gets.
            let seed: u64 = args.parsed("--seed")?.unwrap_or(0);
            let limit: usize = args.parsed("--limit")?.unwrap_or(200);
            let inst = instrument(&program);
            let policy = if seed == 0 {
                SchedPolicy::default()
            } else {
                SchedPolicy::Random {
                    seed,
                    switch_inv: 2,
                }
            };
            let mut sink = bigfoot_bfj::RecordingSink::default();
            Interp::new(&inst.program, policy)
                .run(&mut sink)
                .map_err(|e| format!("runtime error: {e}"))?;
            let total = sink.events.len();
            for ev in sink.events.iter().take(limit) {
                outln!("{ev:?}");
            }
            if total > limit {
                outln!(
                    "… {} more events (raise --limit to see them)",
                    total - limit
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "profile" => {
            let which = args.one_of(
                "--detector",
                &[
                    "bigfoot",
                    "fasttrack",
                    "redcard",
                    "slimstate",
                    "slimcard",
                    "djit",
                ],
            )?;
            let replay_workers: Option<usize> = args.parsed("--replay-workers")?;
            let pipelined = args.has("--pipeline");
            let compiled = args.has("--compiled");
            let detect_workers: Option<usize> = args.parsed("--detect-workers")?;
            validate_workers(detect_workers, pipelined, replay_workers)?;
            let record_out = args.value("--record-out");
            let compress_trace = args.has("--compress-trace");
            validate_recording(record_out, compress_trace, 1)?;
            let trace_guard = args
                .value("--trace-out")
                .map(bigfoot_obs::TraceOutGuard::new);
            bigfoot_obs::set_enabled(true);
            bigfoot_obs::reset();
            // Record inside the profiled region: the compressor flushes
            // `trace.compressed_bytes`/`trace.rules`/`trace.rule_hits`
            // and the compression-ratio gauge into this snapshot.
            if let Some(path) = record_out {
                let bytes = record_trace(
                    &program,
                    which,
                    SchedPolicy::default(),
                    compiled,
                    compress_trace,
                )?;
                std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            // A runtime error does not discard the profile: the detector
            // flushes its aggregated counters on drop, so the snapshot
            // below still describes the partial run. The report carries
            // the error and the exit code is non-zero.
            let (stats, run_error) = match check_once(
                &program,
                which,
                SchedPolicy::default(),
                replay_workers,
                pipelined,
                detect_workers,
                compiled,
            ) {
                Ok(stats) => (Some(stats), None),
                Err(e) => (None, Some(e)),
            };
            // Fold recorder totals (`trace.events`/`trace.dropped`) into
            // the snapshot the report is built from.
            bigfoot_obs::trace::publish_counters();
            let snap = bigfoot_obs::snapshot();
            if let Some(guard) = trace_guard {
                let path = guard.path().display().to_string();
                guard
                    .finish()
                    .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
            }
            let exit = if run_error.is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
            if json {
                let mut report = envelope("profile", &file);
                report.set("detector", which);
                if pipelined {
                    report.set("pipeline", true);
                }
                if let Some(workers) = detect_workers {
                    report.set("detect_workers", workers as u64);
                }
                if compiled {
                    report.set("compiled", true);
                }
                if let Some(stats) = &stats {
                    report.set("stats", stats.to_json());
                }
                if let Some(e) = &run_error {
                    report.set("error", e.as_str());
                }
                report.set("metrics", snap.to_json());
                outln!("{}", report.to_string_pretty());
                return Ok(exit);
            }
            outln!("== profile: {file} ({which}) ==");
            if let Some(e) = &run_error {
                outln!("!! {e} — profiling the partial run");
            }
            outln!();
            outln!("-- phases (wall clock) --");
            outln!(
                "{:<32} {:>8} {:>12} {:>12} {:>10} {:>10}",
                "span",
                "count",
                "total ms",
                "mean µs",
                "p50 µs",
                "p99 µs"
            );
            for t in &snap.timers {
                // `observe!` histograms are unit-less; keep them separate.
                if t.name.starts_with("shadow.commit") || t.name.starts_with("detector.") {
                    continue;
                }
                outln!(
                    "{:<32} {:>8} {:>12.3} {:>12.2} {:>10.2} {:>10.2}",
                    t.name,
                    t.count,
                    t.total as f64 / 1e6,
                    t.mean() / 1e3,
                    t.percentile(0.50) / 1e3,
                    t.percentile(0.99) / 1e3
                );
            }
            let analysis = snap.timer_total("static.instrument");
            let entail = snap.timer_total("entail.query");
            if analysis > 0 {
                outln!();
                outln!(
                    "entailment share of static analysis: {:.1}%",
                    entail as f64 / analysis as f64 * 100.0
                );
            }
            outln!();
            outln!("-- distributions --");
            for t in &snap.timers {
                if !(t.name.starts_with("shadow.commit") || t.name.starts_with("detector.")) {
                    continue;
                }
                outln!(
                    "{:<32} {:>8} obs, mean {:.1}, log2 buckets {:?}",
                    t.name,
                    t.count,
                    t.mean(),
                    t.buckets
                );
            }
            outln!();
            outln!("-- counters --");
            outln!("{:<32} {:>12}", "counter", "value");
            for c in &snap.counters {
                outln!("{:<32} {:>12}", c.name, c.value);
            }
            if !snap.gauges.is_empty() {
                outln!();
                outln!("-- gauges --");
                outln!("{:<32} {:>12}", "gauge", "value");
                for g in &snap.gauges {
                    outln!("{:<32} {:>12}", g.name, g.value);
                }
            }
            Ok(exit)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// The `bfc fuzz` subcommand: a differential fuzzing campaign.
fn fuzz_cmd(args: &CliArgs) -> Result<ExitCode, String> {
    let json = args.has("--json");
    let range = args.value("--seed-range").unwrap_or("1..501");
    let (lo, hi) = range
        .split_once("..")
        .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<u64>().ok()?)))
        .filter(|(a, b)| a < b)
        .ok_or_else(|| format!("--seed-range wants `A..B` with A < B, got `{range}`"))?;
    let budget_secs: u64 = args.parsed("--budget")?.unwrap_or(0);
    // Default the corpus next to the fuzz crate when run from the repo
    // root; otherwise a local directory.
    let corpus_dir = match args.value("--corpus") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let in_repo = std::path::Path::new("crates/fuzz/corpus");
            if in_repo.parent().is_some_and(|p| p.is_dir()) {
                in_repo.to_path_buf()
            } else {
                std::path::PathBuf::from("fuzz-corpus")
            }
        }
    };
    bigfoot_obs::set_enabled(true);
    bigfoot_obs::reset();
    let opts = FuzzOptions {
        seed_lo: lo,
        seed_hi: hi,
        budget_secs,
        corpus_dir: Some(corpus_dir),
        ..FuzzOptions::default()
    };
    let report = run_campaign(&opts);
    let snap = bigfoot_obs::snapshot();
    if json {
        let mut out = envelope("fuzz", "-");
        out.set("report", report.to_json());
        out.set("metrics", snap.to_json());
        outln!("{}", out.to_string_pretty());
    } else {
        outln!(
            "fuzzed {} case(s) over seeds {}..{} in {:.1}s{} — oracles: roundtrip {}, compiled {}, placement {}, incremental {}, replay {}, compressed {}, pipeline {}",
            report.cases,
            report.seed_lo,
            report.seed_hi,
            report.elapsed.as_secs_f64(),
            if report.exhausted_budget {
                " (budget exhausted)"
            } else {
                ""
            },
            report.oracle_runs[0],
            report.oracle_runs[1],
            report.oracle_runs[2],
            report.oracle_runs[3],
            report.oracle_runs[4],
            report.oracle_runs[5],
            report.oracle_runs[6],
        );
        for d in &report.divergences {
            outln!();
            outln!(
                "DIVERGENCE seed {} [{}] {}",
                d.seed,
                d.oracle.name(),
                d.detail
            );
            if let Some(p) = &d.corpus_file {
                outln!("  reproducer written to {}", p.display());
            }
            outp!("{}", d.minimized);
        }
        if report.divergences.is_empty() {
            outln!("no divergences");
        }
    }
    Ok(if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Worker-count sanity checks, applied at parse time so a bad flag fails
/// before any work starts. Zero workers is always a contradiction — both
/// engines need at least one worker thread to consume anything.
/// `--detect-workers` additionally only makes sense for the online
/// pipeline: without `--pipeline` there is no detection stage to shard,
/// and `--replay-workers` already parallelizes the offline replay engine.
fn validate_workers(
    detect_workers: Option<usize>,
    pipelined: bool,
    replay_workers: Option<usize>,
) -> Result<(), String> {
    if replay_workers == Some(0) {
        return Err("--replay-workers wants at least 1 worker".into());
    }
    match detect_workers {
        None => Ok(()),
        Some(0) => Err("--detect-workers wants at least 1 worker".into()),
        Some(_) if !pipelined => Err("--detect-workers requires --pipeline".into()),
        Some(_) if replay_workers.is_some() => {
            Err("--detect-workers and --replay-workers are mutually exclusive".into())
        }
        Some(_) => Ok(()),
    }
}

/// Recording-flag sanity checks, applied at parse time like
/// [`validate_workers`]. `--compress-trace` only selects the container
/// `--record-out` writes, so on its own it is a contradiction; and a
/// recording covers exactly one schedule, so a multi-schedule sweep has
/// no single event stream to write.
fn validate_recording(
    record_out: Option<&str>,
    compress_trace: bool,
    schedules: u64,
) -> Result<(), String> {
    if compress_trace && record_out.is_none() {
        return Err("--compress-trace requires --record-out FILE to write the container to".into());
    }
    if record_out.is_some() && schedules != 1 {
        return Err("--record-out records exactly one schedule; drop --schedules".into());
    }
    Ok(())
}

/// Records one schedule of `program` — instrumented the same way the
/// `which` detector would see it — to the binary trace encoding: raw
/// `BFTR`, or the grammar-compressed `BFTC` container with `compress`
/// set. Recording is a separate execution from the detection run, but
/// the scheduler is deterministic per policy, so both observe the same
/// interleaving.
fn record_trace(
    program: &Program,
    which: &str,
    policy: SchedPolicy,
    compiled: bool,
    compress: bool,
) -> Result<Vec<u8>, String> {
    let rec = |prog: &Program| -> Result<Vec<u8>, String> {
        if compress {
            let mut w = CompressedTraceWriter::new();
            execute(prog, policy, compiled, &mut w).map_err(|e| format!("runtime error: {e}"))?;
            Ok(w.into_bytes())
        } else {
            let mut w = TraceWriter::new();
            execute(prog, policy, compiled, &mut w).map_err(|e| format!("runtime error: {e}"))?;
            Ok(w.into_bytes())
        }
    };
    match which {
        "bigfoot" => rec(&instrument(program).program),
        "redcard" | "slimcard" => rec(&redcard_instrument(program).0),
        // fasttrack / slimstate / djit detect on the raw event stream.
        _ => rec(program),
    }
}

/// The trace-file subcommands: `replay` detects races directly on a
/// recorded trace (raw or compressed, auto-detected from the magic
/// bytes), `compress`/`decompress` convert between the two encodings.
fn trace_file_cmd(cmd: &str, args: &CliArgs) -> Result<ExitCode, String> {
    let input = args.positional(1).ok_or("missing input trace file")?;
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    match cmd {
        "compress" => {
            let output = args.positional(2).ok_or("missing output file")?;
            if is_compressed(&bytes) {
                return Err(format!("{input}: already a BFTC container"));
            }
            let packed = compress(&bytes).map_err(|e| format!("{input}: {e}"))?;
            std::fs::write(output, &packed).map_err(|e| format!("cannot write {output}: {e}"))?;
            outln!(
                "{output}: {} -> {} bytes ({:.2}x)",
                bytes.len(),
                packed.len(),
                bytes.len() as f64 / packed.len().max(1) as f64
            );
            Ok(ExitCode::SUCCESS)
        }
        "decompress" => {
            let output = args.positional(2).ok_or("missing output file")?;
            if !is_compressed(&bytes) {
                return Err(format!(
                    "{input}: not a BFTC container (raw BFTR traces need no decompression)"
                ));
            }
            let raw = decompress(&bytes).map_err(|e| format!("{input}: {e}"))?;
            std::fs::write(output, &raw).map_err(|e| format!("cannot write {output}: {e}"))?;
            outln!("{output}: {} -> {} bytes", bytes.len(), raw.len());
            Ok(ExitCode::SUCCESS)
        }
        _ => replay_file_cmd(input, &bytes, args),
    }
}

/// `bfc replay`: race detection on a recorded trace file. `BFTC`
/// containers run the memoizing compressed-replay engine directly on
/// the grammar; raw `BFTR` traces go through the standard replay path —
/// verdicts are byte-identical either way.
fn replay_file_cmd(input: &str, bytes: &[u8], args: &CliArgs) -> Result<ExitCode, String> {
    let which = args.one_of(
        "--detector",
        &["bigfoot", "fasttrack", "redcard", "slimstate", "slimcard"],
    )?;
    let workers: usize = args.parsed("--replay-workers")?.unwrap_or(1);
    if workers == 0 {
        return Err("--replay-workers wants at least 1 worker".into());
    }
    // Proxy groupings are a static-analysis artifact, not part of the
    // trace; the identity table keeps field checks ungrouped.
    let config = match which {
        "bigfoot" => ReplayConfig::bigfoot(ProxyTable::identity(), workers),
        "fasttrack" => ReplayConfig::fasttrack(workers),
        "slimstate" => ReplayConfig::slimstate(workers),
        "redcard" => ReplayConfig::redcard(ProxyTable::identity(), workers),
        _ => ReplayConfig::slimcard(ProxyTable::identity(), workers),
    };
    let compressed = is_compressed(bytes);
    let (stats, memo) = if compressed {
        let (stats, report) =
            replay_compressed_report(bytes, &config).map_err(|e| format!("{input}: {e}"))?;
        (stats, Some(report))
    } else {
        let stats = replay_trace(bytes, &config).map_err(|e| format!("{input}: {e}"))?;
        (stats, None)
    };
    if args.has("--json") {
        let mut report = envelope("replay", input);
        report.set("detector", which);
        report.set("replay_workers", workers as u64);
        report.set("compressed", compressed);
        report.set("trace_bytes", bytes.len() as u64);
        if let Some(m) = memo {
            let mut j = Json::object();
            j.set("runs", m.memo_runs);
            j.set("fallbacks", m.memo_fallbacks);
            j.set("skipped_events", m.skipped_events);
            j.set("total_events", m.total_events);
            report.set("memo", j);
        }
        report.set("any_race", stats.has_races());
        report.set("races", races_json(&stats));
        report.set("stats", stats.to_json());
        outln!("{}", report.to_string_pretty());
    } else {
        outln!(
            "{input}: {} trace, {} bytes, detector {which}, {} worker(s)",
            if compressed { "BFTC" } else { "BFTR" },
            bytes.len(),
            workers
        );
        if let Some(m) = memo {
            outln!(
                "memoized {} rule run(s) ({} fallback(s)), skipped {} of {} events",
                m.memo_runs,
                m.memo_fallbacks,
                m.skipped_events,
                m.total_events
            );
        }
        if stats.has_races() {
            outln!("{} race(s)", stats.races.len());
            for race in &stats.races {
                outln!("  {} — {}", race.target, race.info);
            }
        } else {
            outln!(
                "no races ({} accesses, {} checks, {} shadow ops)",
                stats.accesses(),
                stats.checks,
                stats.shadow_ops
            );
        }
    }
    Ok(if stats.has_races() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Runs `program` to completion on the selected execution tier,
/// streaming its events into `sink`. With `compiled` set the program is
/// lowered to flat bytecode once and executed on [`CompiledVm`] — the
/// event stream is byte-identical to the interpreter's, so everything
/// downstream (detectors, rings, replay) is oblivious to the swap.
fn execute<S: EventSink>(
    program: &Program,
    policy: SchedPolicy,
    compiled: bool,
    sink: &mut S,
) -> Result<RunOutcome, RuntimeError> {
    if compiled {
        let lowered = compile(program);
        CompiledVm::new(&lowered, policy).run(sink)
    } else {
        Interp::new(program, policy).run(sink)
    }
}

/// Runs one schedule under the named detector configuration. With
/// `replay_workers` set, the schedule is recorded to an in-memory trace and
/// detection runs through the parallel sharded replay engine instead of
/// inline — same verdicts, record-once/detect-many. With `pipelined` set,
/// the interpreter produces into the batched SPSC ring and the detector
/// (or the replay annotator) consumes on its own thread — same verdicts,
/// byte for byte. With `pipelined` plus `detect_workers`, the detection
/// stage itself fans out to that many sharded workers — same verdicts at
/// every worker count.
fn check_once(
    program: &Program,
    which: &str,
    policy: SchedPolicy,
    replay_workers: Option<usize>,
    pipelined: bool,
    detect_workers: Option<usize>,
    compiled: bool,
) -> Result<Stats, String> {
    if let Some(workers) = detect_workers {
        return check_sharded(program, which, policy, workers, compiled);
    }
    if let Some(workers) = replay_workers {
        return check_replay(program, which, policy, workers, pipelined, compiled);
    }
    let run_detector = |prog: &Program, mut det: Detector| -> Result<Stats, String> {
        if pipelined {
            let (run, stats) = detect_pipelined(
                &PipelineConfig::default(),
                |sink| execute(prog, policy, compiled, sink),
                det,
            );
            run.map_err(|e| format!("runtime error: {e}"))?;
            return Ok(stats);
        }
        execute(prog, policy, compiled, &mut det).map_err(|e| format!("runtime error: {e}"))?;
        Ok(det.finish())
    };
    match which {
        "bigfoot" => {
            let inst = instrument(program);
            run_detector(&inst.program, Detector::bigfoot(inst.proxies.clone()))
        }
        "fasttrack" => run_detector(program, Detector::fasttrack()),
        "slimstate" => run_detector(program, Detector::slimstate()),
        "redcard" => {
            let (rc, proxies) = redcard_instrument(program);
            run_detector(&rc, Detector::redcard(proxies))
        }
        "slimcard" => {
            let (rc, proxies) = redcard_instrument(program);
            run_detector(&rc, Detector::slimcard(proxies))
        }
        "djit" => {
            if pipelined {
                let (run, det) = run_pipelined(
                    &PipelineConfig::default(),
                    |sink| execute(program, policy, compiled, sink),
                    DjitDetector::new(),
                );
                run.map_err(|e| format!("runtime error: {e}"))?;
                return Ok(det.finish());
            }
            let mut det = DjitDetector::new();
            execute(program, policy, compiled, &mut det)
                .map_err(|e| format!("runtime error: {e}"))?;
            Ok(det.finish())
        }
        other => Err(format!("unknown detector `{other}`")),
    }
}

/// Sharded multi-worker pipelined variant of [`check_once`]: the
/// interpreter produces into the event ring, a router thread runs the
/// sync-order stage, and `workers` detection workers apply shard-routed
/// checks concurrently. Every detector is supported — djit goes through
/// its dedicated router since it has no replay configuration.
fn check_sharded(
    program: &Program,
    which: &str,
    policy: SchedPolicy,
    workers: usize,
    compiled: bool,
) -> Result<Stats, String> {
    let pipeline = PipelineConfig::default();
    if which == "djit" {
        let (run, stats) = djit_sharded(&pipeline, workers, |sink| {
            execute(program, policy, compiled, sink)
        });
        run.map_err(|e| format!("runtime error: {e}"))?;
        return Ok(stats);
    }
    let sharded = |prog: &Program, config: ReplayConfig| -> Result<Stats, String> {
        let (run, stats) = replay_sharded(&pipeline, &config, |sink| {
            execute(prog, policy, compiled, sink)
        });
        run.map_err(|e| format!("runtime error: {e}"))?;
        Ok(stats)
    };
    match which {
        "bigfoot" => {
            let inst = instrument(program);
            sharded(
                &inst.program,
                ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            )
        }
        "fasttrack" => sharded(program, ReplayConfig::fasttrack(workers)),
        "slimstate" => sharded(program, ReplayConfig::slimstate(workers)),
        "redcard" => {
            let (rc, proxies) = redcard_instrument(program);
            sharded(&rc, ReplayConfig::redcard(proxies, workers))
        }
        "slimcard" => {
            let (rc, proxies) = redcard_instrument(program);
            sharded(&rc, ReplayConfig::slimcard(proxies, workers))
        }
        other => Err(format!("unknown detector `{other}`")),
    }
}

/// Record-then-replay variant of [`check_once`]. With `pipelined` set,
/// the trace file is skipped entirely: the interpreter streams into the
/// replay annotator over the batched ring.
fn check_replay(
    program: &Program,
    which: &str,
    policy: SchedPolicy,
    workers: usize,
    pipelined: bool,
    compiled: bool,
) -> Result<Stats, String> {
    let record = |prog: &Program| -> Result<Vec<u8>, String> {
        let mut w = TraceWriter::new();
        execute(prog, policy, compiled, &mut w).map_err(|e| format!("runtime error: {e}"))?;
        Ok(w.into_bytes())
    };
    let replay = |prog: &Program, config: ReplayConfig| -> Result<Stats, String> {
        if pipelined {
            let (run, stats) = replay_pipelined(&PipelineConfig::default(), &config, |sink| {
                execute(prog, policy, compiled, sink)
            });
            run.map_err(|e| format!("runtime error: {e}"))?;
            return Ok(stats);
        }
        replay_trace(&record(prog)?, &config).map_err(|e| format!("replay error: {e}"))
    };
    match which {
        "bigfoot" => {
            let inst = instrument(program);
            replay(
                &inst.program,
                ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            )
        }
        "fasttrack" => replay(program, ReplayConfig::fasttrack(workers)),
        "slimstate" => replay(program, ReplayConfig::slimstate(workers)),
        "redcard" => {
            let (rc, proxies) = redcard_instrument(program);
            replay(&rc, ReplayConfig::redcard(proxies, workers))
        }
        "slimcard" => {
            let (rc, proxies) = redcard_instrument(program);
            replay(&rc, ReplayConfig::slimcard(proxies, workers))
        }
        "djit" => Err("--replay-workers is not supported for --detector djit".into()),
        other => Err(format!("unknown detector `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::{validate_recording, validate_workers};

    #[test]
    fn zero_workers_is_rejected_for_both_engines() {
        assert!(validate_workers(Some(0), true, None)
            .unwrap_err()
            .contains("--detect-workers wants at least 1"));
        assert!(validate_workers(None, false, Some(0))
            .unwrap_err()
            .contains("--replay-workers wants at least 1"));
        // The zero check fires even when another validation would too.
        assert!(validate_workers(Some(2), true, Some(0))
            .unwrap_err()
            .contains("--replay-workers wants at least 1"));
    }

    #[test]
    fn detect_workers_needs_the_pipeline_and_excludes_replay() {
        assert!(validate_workers(Some(2), false, None)
            .unwrap_err()
            .contains("requires --pipeline"));
        assert!(validate_workers(Some(2), true, Some(2))
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn valid_combinations_pass() {
        assert!(validate_workers(None, false, None).is_ok());
        assert!(validate_workers(None, true, None).is_ok());
        assert!(validate_workers(Some(4), true, None).is_ok());
        assert!(validate_workers(None, false, Some(3)).is_ok());
        assert!(validate_workers(None, true, Some(3)).is_ok());
    }

    #[test]
    fn compress_trace_without_record_out_is_rejected() {
        assert!(validate_recording(None, true, 1)
            .unwrap_err()
            .contains("requires --record-out"));
    }

    #[test]
    fn record_out_excludes_multi_schedule_sweeps() {
        assert!(validate_recording(Some("t.bftr"), false, 3)
            .unwrap_err()
            .contains("exactly one schedule"));
        // The missing-output contradiction is reported first.
        assert!(validate_recording(None, true, 3)
            .unwrap_err()
            .contains("requires --record-out"));
    }

    #[test]
    fn valid_recording_combinations_pass() {
        assert!(validate_recording(None, false, 5).is_ok());
        assert!(validate_recording(Some("t.bftr"), false, 1).is_ok());
        assert!(validate_recording(Some("t.bftc"), true, 1).is_ok());
    }
}
