//! Seeded random BFJ program generation, for property-based testing of the
//! analysis and detectors.
//!
//! Generated programs always parse, terminate, stay in array bounds, and
//! use a single properly-nested lock (no deadlocks). The `racy` knob
//! decides whether shared accesses may happen outside the lock.

use std::fmt::Write;

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// RNG seed (same seed, same program).
    pub seed: u64,
    /// Rough number of statements per worker method.
    pub size: usize,
    /// Number of worker threads forked from main.
    pub threads: usize,
    /// Shared array length.
    pub array_len: usize,
    /// If false, every shared access is lock-protected or on a
    /// thread-private partition (the program is race-free by
    /// construction). If true, some accesses go unprotected.
    pub racy: bool,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            seed: 1,
            size: 12,
            threads: 2,
            array_len: 24,
            racy: false,
        }
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, pct: u32) -> bool {
        self.next() % 100 < pct as u64
    }
}

/// Generates the source text of a random BFJ program.
pub fn random_program(cfg: &RandomConfig) -> String {
    let mut rng = Rng(cfg.seed | 1);
    let mut src = String::new();
    let n = cfg.array_len;
    src.push_str("class Shared { field f0; field f1; field f2; }\nclass Lk { }\nclass Worker {\n");
    for w in 0..cfg.threads {
        let _ = writeln!(src, "    meth work{w}(s, a, l, me) {{");
        let mut tmp = 0usize;
        for _ in 0..cfg.size {
            gen_stmt(&mut rng, cfg, &mut src, &mut tmp, w, n);
        }
        src.push_str("        return 0;\n    }\n");
    }
    src.push_str("}\nmain {\n    s = new Shared;\n    l = new Lk;\n");
    let _ = writeln!(src, "    a = new_array({n});");
    let _ = writeln!(src, "    for (i = 0; i < {n}; i = i + 1) {{ a[i] = 0; }}");
    src.push_str("    w = new Worker;\n");
    for t in 0..cfg.threads {
        let _ = writeln!(src, "    fork t{t} = w.work{t}(s, a, l, {t});");
    }
    for t in 0..cfg.threads {
        let _ = writeln!(src, "    join(t{t});");
    }
    src.push_str("}\n");
    src
}

fn gen_stmt(
    rng: &mut Rng,
    cfg: &RandomConfig,
    src: &mut String,
    tmp: &mut usize,
    worker: usize,
    n: usize,
) {
    let indent = "        ";
    let protected = !cfg.racy || rng.chance(60);
    let field = rng.below(3);
    match rng.below(6) {
        // Lock-protected field read-modify-write.
        0 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(src, "{indent}s.f{field} = s.f{field} + 1;");
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Field read into a local.
        1 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(src, "{indent}v{worker}x{v} = s.f{field};");
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Loop over a contiguous partition of the array. In race-free
        // mode this must hold the lock: other statements (the whole-array
        // scan) touch every index.
        2 | 3 => {
            let t = cfg.threads.max(1);
            let chunk = n / t;
            let lo = worker * chunk;
            let hi = lo + chunk;
            let v = *tmp;
            *tmp += 1;
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(
                src,
                "{indent}for (i{v} = {lo}; i{v} < {hi}; i{v} = i{v} + 1) {{ a[i{v}] = a[i{v}] + 1; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Whole-array read under the lock (or unprotected when racy).
        4 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(
                src,
                "{indent}acc{worker}x{v} = 0;\n{indent}for (j{v} = 0; j{v} < {n}; j{v} = j{v} + 1) {{ acc{worker}x{v} = acc{worker}x{v} + a[j{v}]; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Conditional access.
        _ => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(
                src,
                "{indent}c{worker}x{v} = s.f{field};\n{indent}if (c{worker}x{v} > 2) {{ s.f{field} = c{worker}x{v} - 1; }} else {{ s.f{field} = c{worker}x{v} + 1; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, Interp, NullSink, SchedPolicy};

    #[test]
    fn random_programs_parse_and_run() {
        for seed in 1..20 {
            for racy in [false, true] {
                let cfg = RandomConfig {
                    seed,
                    racy,
                    ..RandomConfig::default()
                };
                let src = random_program(&cfg);
                let p = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
                Interp::new(&p, SchedPolicy::default())
                    .with_max_steps(2_000_000)
                    .run(&mut NullSink)
                    .unwrap_or_else(|e| panic!("{e}\n{src}"));
            }
        }
    }

    #[test]
    fn same_seed_same_program() {
        let cfg = RandomConfig::default();
        assert_eq!(random_program(&cfg), random_program(&cfg));
    }

    #[test]
    fn race_free_programs_have_no_races() {
        use bigfoot_detectors::Detector;
        for seed in 1..10 {
            let cfg = RandomConfig {
                seed,
                racy: false,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap();
            let mut ft = Detector::fasttrack();
            Interp::new(
                &p,
                SchedPolicy::Random {
                    seed: seed * 7 + 1,
                    switch_inv: 4,
                },
            )
            .run(&mut ft)
            .unwrap();
            let stats = ft.finish();
            assert!(
                !stats.has_races(),
                "seed {seed} raced: {:?}\n{src}",
                stats.races
            );
        }
    }
}
