//! Seeded random BFJ program generation, for property-based testing of the
//! analysis and detectors.
//!
//! Generated programs always parse, terminate, stay in array bounds, and
//! acquire locks in a fixed nesting order (no deadlocks). The `racy` knob
//! decides whether shared accesses may happen outside the lock; the
//! remaining knobs opt into additional program shapes — volatile fields,
//! a second (nested) lock, strided loops, `a.length` symbolic bounds, and
//! worker-local fork/join subtrees — that the differential fuzzer uses to
//! widen coverage. All default to off, preserving the classic shapes.

use std::fmt::Write;

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// RNG seed (same seed, same program).
    pub seed: u64,
    /// Rough number of statements per worker method.
    pub size: usize,
    /// Number of worker threads forked from main.
    pub threads: usize,
    /// Shared array length (0 is allowed: loops become vacuous).
    pub array_len: usize,
    /// If false, every shared access is lock-protected or on a
    /// thread-private partition (the program is race-free by
    /// construction). If true, some accesses go unprotected.
    pub racy: bool,
    /// Number of lock objects (1 or 2). With 2, some critical sections
    /// nest `l` then `l2`; in racy mode a statement may guard a shared
    /// field with *only* the inner lock — the classic wrong-lock race.
    pub locks: usize,
    /// Declare a `volatile` field on the shared object and emit
    /// publish/consume statements through it (synchronization, never
    /// themselves racy).
    pub volatiles: bool,
    /// Emit strided loops (`for (i = off; i < n; i = i + k)`) over the
    /// shared array.
    pub strided: bool,
    /// Use the symbolic `a.length` bound instead of the literal length
    /// where the shape allows it.
    pub symbolic_bounds: bool,
    /// Workers may fork a helper method and join it (fork/join trees
    /// deeper than main's flat fork list). In racy mode the join is
    /// sometimes skipped, letting the helper run unsynchronized.
    pub fork_trees: bool,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            seed: 1,
            size: 12,
            threads: 2,
            array_len: 24,
            racy: false,
            locks: 1,
            volatiles: false,
            strided: false,
            symbolic_bounds: false,
            fork_trees: false,
        }
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Unbiased draw from `0..n` (Lemire multiply-shift with rejection);
    /// `next() % n` would over-select low residues for most `n`.
    fn below(&mut self, n: usize) -> usize {
        let n = n.max(1) as u64;
        let mut m = self.next() as u128 * n as u128;
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = self.next() as u128 * n as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct as usize
    }
}

/// Generates the source text of a random BFJ program.
pub fn random_program(cfg: &RandomConfig) -> String {
    let mut rng = Rng(cfg.seed | 1);
    let mut src = String::new();
    let n = cfg.array_len;
    let two_locks = cfg.locks > 1;
    if cfg.volatiles {
        src.push_str("class Shared { field f0; field f1; field f2; volatile v0; }\n");
    } else {
        src.push_str("class Shared { field f0; field f1; field f2; }\n");
    }
    src.push_str("class Lk { }\nclass Worker {\n");
    let params = if two_locks {
        "s, a, l, l2, me"
    } else {
        "s, a, l, me"
    };
    for w in 0..cfg.threads {
        if cfg.fork_trees {
            // Helper forked from `work{w}`; never forks further itself,
            // so the tree depth is bounded at two.
            let _ = writeln!(src, "    meth help{w}({params}) {{");
            let mut tmp = 0usize;
            let body = 1 + rng.below(2);
            for _ in 0..body {
                gen_stmt(&mut rng, cfg, &mut src, &mut tmp, w, n, false);
            }
            src.push_str("        return 0;\n    }\n");
        }
        let _ = writeln!(src, "    meth work{w}({params}) {{");
        let mut tmp = 0usize;
        for _ in 0..cfg.size {
            gen_stmt(&mut rng, cfg, &mut src, &mut tmp, w, n, cfg.fork_trees);
        }
        src.push_str("        return 0;\n    }\n");
    }
    src.push_str("}\nmain {\n    s = new Shared;\n    l = new Lk;\n");
    if two_locks {
        src.push_str("    l2 = new Lk;\n");
    }
    let _ = writeln!(src, "    a = new_array({n});");
    let init_hi = if cfg.symbolic_bounds {
        "a.length".to_string()
    } else {
        n.to_string()
    };
    let _ = writeln!(
        src,
        "    for (i = 0; i < {init_hi}; i = i + 1) {{ a[i] = 0; }}"
    );
    src.push_str("    w = new Worker;\n");
    for t in 0..cfg.threads {
        if two_locks {
            let _ = writeln!(src, "    fork t{t} = w.work{t}(s, a, l, l2, {t});");
        } else {
            let _ = writeln!(src, "    fork t{t} = w.work{t}(s, a, l, {t});");
        }
    }
    for t in 0..cfg.threads {
        let _ = writeln!(src, "    join(t{t});");
    }
    src.push_str("}\n");
    src
}

fn gen_stmt(
    rng: &mut Rng,
    cfg: &RandomConfig,
    src: &mut String,
    tmp: &mut usize,
    worker: usize,
    n: usize,
    allow_fork: bool,
) {
    let indent = "        ";
    let protected = !cfg.racy || rng.chance(60);
    let field = rng.below(3);
    // The classic six shapes always participate; the opt-in shapes are
    // appended so existing seeds keep their statement streams only when
    // every knob is off (each knob also consumes extra RNG draws).
    let mut shapes: Vec<u8> = vec![0, 1, 2, 2, 3, 4];
    if cfg.volatiles {
        shapes.push(5);
    }
    if cfg.strided {
        shapes.push(6);
    }
    if cfg.locks > 1 {
        shapes.push(7);
    }
    if allow_fork {
        shapes.push(8);
    }
    match shapes[rng.below(shapes.len())] {
        // Lock-protected field read-modify-write.
        0 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(src, "{indent}s.f{field} = s.f{field} + 1;");
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Field read into a local.
        1 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(src, "{indent}v{worker}x{v} = s.f{field};");
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Loop over a contiguous partition of the array. In race-free
        // mode this must hold the lock: other statements (the whole-array
        // scan) touch every index.
        2 => {
            let t = cfg.threads.max(1);
            let chunk = n / t;
            let lo = worker * chunk;
            let hi = lo + chunk;
            let v = *tmp;
            *tmp += 1;
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(
                src,
                "{indent}for (i{v} = {lo}; i{v} < {hi}; i{v} = i{v} + 1) {{ a[i{v}] = a[i{v}] + 1; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Whole-array read under the lock (or unprotected when racy).
        3 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let hi = bound(cfg, rng, n);
            let _ = writeln!(
                src,
                "{indent}acc{worker}x{v} = 0;\n{indent}for (j{v} = 0; j{v} < {hi}; j{v} = j{v} + 1) {{ acc{worker}x{v} = acc{worker}x{v} + a[j{v}]; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Conditional access.
        4 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(
                src,
                "{indent}c{worker}x{v} = s.f{field};\n{indent}if (c{worker}x{v} > 2) {{ s.f{field} = c{worker}x{v} - 1; }} else {{ s.f{field} = c{worker}x{v} + 1; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Volatile publish/consume: synchronization, never racy itself,
        // and a kill point for check motion past it.
        5 => {
            let v = *tmp;
            *tmp += 1;
            let _ = writeln!(src, "{indent}s.v0 = me + {v};");
            let _ = writeln!(src, "{indent}p{worker}x{v} = s.v0;");
        }
        // Strided loop over the shared array. Whole-array footprint on a
        // residue class, so it must hold the lock in race-free mode.
        6 => {
            let stride = 2 + rng.below(2);
            let off = rng.below(stride);
            let v = *tmp;
            *tmp += 1;
            let hi = bound(cfg, rng, n);
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(
                src,
                "{indent}for (q{v} = {off}; q{v} < {hi}; q{v} = q{v} + {stride}) {{ a[q{v}] = a[q{v}] + 1; }}"
            );
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Nested critical section: `l` then `l2`, always in that order
        // (no deadlocks). In racy mode an unprotected statement holds
        // *only* the inner lock — the classic wrong-lock race against
        // `l`-guarded accesses of the same field.
        7 => {
            if protected {
                let _ = writeln!(src, "{indent}acq(l);");
            }
            let _ = writeln!(src, "{indent}acq(l2);");
            let _ = writeln!(src, "{indent}s.f{field} = s.f{field} + 1;");
            let _ = writeln!(src, "{indent}rel(l2);");
            if protected {
                let _ = writeln!(src, "{indent}rel(l);");
            }
        }
        // Fork a helper. Race-free mode joins immediately, so the helper
        // only overlaps other workers (whose conflicting accesses share
        // the lock). Racy mode may leave it unjoined.
        _ => {
            let v = *tmp;
            *tmp += 1;
            let args = if cfg.locks > 1 {
                "s, a, l, l2, me"
            } else {
                "s, a, l, me"
            };
            let _ = writeln!(
                src,
                "{indent}fork h{worker}x{v} = this.help{worker}({args});"
            );
            let skip_join = cfg.racy && rng.chance(40);
            if !skip_join {
                let _ = writeln!(src, "{indent}join(h{worker}x{v});");
            }
        }
    }
}

/// Upper bound for a whole-array loop: the literal length, or the
/// symbolic `a.length` when that knob is on.
fn bound(cfg: &RandomConfig, rng: &mut Rng, n: usize) -> String {
    if cfg.symbolic_bounds && rng.chance(50) {
        "a.length".to_string()
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, Interp, NullSink, SchedPolicy};

    #[test]
    fn random_programs_parse_and_run() {
        for seed in 1..20 {
            for racy in [false, true] {
                let cfg = RandomConfig {
                    seed,
                    racy,
                    ..RandomConfig::default()
                };
                let src = random_program(&cfg);
                let p = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
                Interp::new(&p, SchedPolicy::default())
                    .with_max_steps(2_000_000)
                    .run(&mut NullSink)
                    .unwrap_or_else(|e| panic!("{e}\n{src}"));
            }
        }
    }

    #[test]
    fn same_seed_same_program() {
        let cfg = RandomConfig::default();
        assert_eq!(random_program(&cfg), random_program(&cfg));
    }

    /// Every opt-in shape at once still parses, runs, and terminates.
    #[test]
    fn extended_shapes_parse_and_run() {
        for seed in 1..20 {
            for racy in [false, true] {
                let cfg = RandomConfig {
                    seed,
                    racy,
                    size: 10,
                    locks: 2,
                    volatiles: true,
                    strided: true,
                    symbolic_bounds: true,
                    fork_trees: true,
                    ..RandomConfig::default()
                };
                let src = random_program(&cfg);
                let p = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
                Interp::new(&p, SchedPolicy::default())
                    .with_max_steps(2_000_000)
                    .run(&mut NullSink)
                    .unwrap_or_else(|e| panic!("{e}\n{src}"));
            }
        }
    }

    /// With every knob on but `racy` off the program must stay race-free:
    /// nested locks order `l` before `l2`, volatiles synchronize, helpers
    /// are joined before the worker continues.
    #[test]
    fn extended_race_free_programs_have_no_races() {
        use bigfoot_detectors::Detector;
        for seed in 1..10 {
            let cfg = RandomConfig {
                seed,
                racy: false,
                size: 8,
                locks: 2,
                volatiles: true,
                strided: true,
                symbolic_bounds: true,
                fork_trees: true,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap();
            let mut ft = Detector::fasttrack();
            Interp::new(
                &p,
                SchedPolicy::Random {
                    seed: seed * 13 + 1,
                    switch_inv: 3,
                },
            )
            .run(&mut ft)
            .unwrap();
            let stats = ft.finish();
            assert!(
                !stats.has_races(),
                "seed {seed} raced: {:?}\n{src}",
                stats.races
            );
        }
    }

    /// Zero-length arrays must not break any shape (loops become vacuous).
    #[test]
    fn zero_length_arrays_are_tolerated() {
        for seed in 1..6 {
            let cfg = RandomConfig {
                seed,
                racy: true,
                array_len: 0,
                locks: 2,
                volatiles: true,
                strided: true,
                symbolic_bounds: true,
                fork_trees: true,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            Interp::new(&p, SchedPolicy::default())
                .with_max_steps(2_000_000)
                .run(&mut NullSink)
                .unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn race_free_programs_have_no_races() {
        use bigfoot_detectors::Detector;
        for seed in 1..10 {
            let cfg = RandomConfig {
                seed,
                racy: false,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap();
            let mut ft = Detector::fasttrack();
            Interp::new(
                &p,
                SchedPolicy::Random {
                    seed: seed * 7 + 1,
                    switch_inv: 4,
                },
            )
            .run(&mut ft)
            .unwrap();
            let stats = ft.finish();
            assert!(
                !stats.has_races(),
                "seed {seed} raced: {:?}\n{src}",
                stats.races
            );
        }
    }
}
