//! The 19 evaluation programs of Table 1, reconstructed in BFJ.
//!
//! The original JavaGrande and DaCapo benchmarks cannot run on the BFJ
//! interpreter, so each program here reproduces its namesake's
//! *access-pattern signature* — the property that determines its row in
//! the paper's results:
//!
//! * block array traversals (`crypt`, `montecarlo`, `lusearch`) reward
//!   check coalescing and coarse array shadows;
//! * compute-dominated code (`series`) gives every detector little to do;
//! * triangular traversals (`lufact`) coalesce statically but defeat the
//!   dynamic array compression;
//! * field-vector code (`raytracer`, `sunflow`, `moldyn`) rewards field
//!   proxies;
//! * data-dependent indices (`sparse`, `luindex`, `jython`) defeat static
//!   coalescing;
//! * synchronization-dominated code (`tomcat`, `avrora`, `h2`, `xalan`)
//!   caps every detector's possible improvement;
//! * pointer-chasing object code (`pmd`, `fop`, `batik`) sits in between.
//!
//! All programs are race-free (the paper fixed the racy JavaGrande
//! barriers), fork workers from `main`, and join before exit.

use bigfoot_bfj::{parse_program, Program};

/// A named benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (matches Table 1).
    pub name: &'static str,
    /// The parsed program.
    pub program: Program,
}

/// Problem-size selector: `Small` for tests, `Full` for the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for the test suite.
    Small,
    /// Evaluation sizes for the `repro` harness and criterion benches.
    Full,
}

impl Scale {
    fn pick(self, small: usize, full: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// The names of all 19 benchmarks, in the paper's order.
pub const NAMES: [&str; 19] = [
    "crypt",
    "series",
    "lufact",
    "moldyn",
    "montecarlo",
    "sparse",
    "sor",
    "batik",
    "raytracer",
    "tomcat",
    "sunflow",
    "luindex",
    "pmd",
    "fop",
    "lusearch",
    "avrora",
    "jython",
    "xalan",
    "h2",
];

/// Builds every benchmark at the given scale.
pub fn benchmarks(scale: Scale) -> Vec<Benchmark> {
    NAMES
        .iter()
        .map(|n| benchmark(n, scale).expect("known benchmark"))
        .collect()
}

/// Builds one benchmark by name.
pub fn benchmark(name: &str, scale: Scale) -> Option<Benchmark> {
    let src = source(name, scale)?;
    let program = parse_program(&src)
        .unwrap_or_else(|e| panic!("benchmark {name} does not parse: {e}\n{src}"));
    Some(Benchmark {
        name: NAMES.iter().find(|n| **n == name)?,
        program,
    })
}

/// The BFJ source of one benchmark.
pub fn source(name: &str, scale: Scale) -> Option<String> {
    Some(match name {
        "crypt" => crypt(scale),
        "series" => series(scale),
        "lufact" => lufact(scale),
        "moldyn" => moldyn(scale),
        "montecarlo" => montecarlo(scale),
        "sparse" => sparse(scale),
        "sor" => sor(scale),
        "batik" => batik(scale),
        "raytracer" => raytracer(scale),
        "tomcat" => tomcat(scale),
        "sunflow" => sunflow(scale),
        "luindex" => luindex(scale),
        "pmd" => pmd(scale),
        "fop" => fop(scale),
        "lusearch" => lusearch(scale),
        "avrora" => avrora(scale),
        "jython" => jython(scale),
        "xalan" => xalan(scale),
        "h2" => h2(scale),
        _ => return None,
    })
}

/// Emits `fork`/`join` scaffolding for `threads` workers calling `meth`
/// with the given argument template (`{w}` is replaced by the worker id).
fn fork_join(threads: usize, recv: &str, meth: &str, args: &str) -> String {
    let mut s = String::new();
    for w in 0..threads {
        let a = args.replace("{w}", &w.to_string());
        s.push_str(&format!("    fork t{w} = {recv}.{meth}({a});\n"));
    }
    for w in 0..threads {
        s.push_str(&format!("    join(t{w});\n"));
    }
    s
}

/// IDEA-style encryption: three sequential whole-block passes over large
/// arrays, workers on disjoint contiguous blocks. The signature rewarding
/// BigFoot most: enormous access counts, perfectly coalescible.
fn crypt(scale: Scale) -> String {
    let n = scale.pick(256, 16384);
    let threads = 4;
    let chunk = n / threads;
    format!(
        "class Crypt {{
             meth encrypt(text, crypt, lo, hi, key) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     crypt[i] = (text[i] * key + text[i] % 7 + 17) % 256;
                 }}
                 for (i = lo; i < hi; i = i + 1) {{
                     crypt[i] = (crypt[i] * 3 + crypt[i] % 5 + key) % 256;
                 }}
                 return 0;
             }}
             meth decrypt(crypt, plain, lo, hi, key) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     plain[i] = (crypt[i] + 256 - key) % 256;
                 }}
                 return 0;
             }}
             meth run(text, crypt, plain, lo, hi, key) {{
                 r = this.encrypt(text, crypt, lo, hi, key);
                 r = this.decrypt(crypt, plain, lo, hi, key);
                 return 0;
             }}
         }}
         main {{
             text = new_array({n});
             crypt = new_array({n});
             plain = new_array({n});
             for (i = 0; i < {n}; i = i + 1) {{ text[i] = i % 251; }}
             c = new Crypt;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "c",
            "run",
            &format!("text, crypt, plain, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}, 7")
        ),
    )
}

/// Fourier-series coefficients: almost all work is local arithmetic; one
/// result write per coefficient. Negligible overhead for every detector.
fn series(scale: Scale) -> String {
    let n = scale.pick(16, 256);
    let inner = scale.pick(40, 400);
    let threads = 4;
    let chunk = n / threads;
    format!(
        "class Series {{
             meth coeff(res, lo, hi) {{
                 for (k = lo; k < hi; k = k + 1) {{
                     acc = 0;
                     x = k + 1;
                     for (j = 0; j < {inner}; j = j + 1) {{
                         term = (x * j) % 97;
                         sq = term * term;
                         acc = acc + sq % 31;
                         x = (x * 13 + 7) % 101;
                     }}
                     res[k] = acc;
                 }}
                 return 0;
             }}
         }}
         main {{
             res = new_array({n});
             s = new Series;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "s",
            "coeff",
            &format!("res, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// LU factorization: a triangular sweep over a flattened matrix. Rows
/// coalesce statically (low check ratio) but each commit starts at a
/// different column, so the dynamic array representation degrades to
/// fine-grained — BigFoot's worst case (§6.2).
fn lufact(scale: Scale) -> String {
    let n = scale.pick(12, 64);
    format!(
        "class Lu {{
             meth factor(m, n, lock) {{
                 for (k = 0; k < n - 1; k = k + 1) {{
                     acq(lock);
                     pivot = m[k * n + k];
                     if (pivot == 0) {{ m[k * n + k] = 1; pivot = 1; }}
                     for (i = k + 1; i < n; i = i + 1) {{
                         scalef = m[i * n + k] / pivot;
                         for (j = k; j < n; j = j + 1) {{
                             m[i * n + j] = m[i * n + j] - scalef * m[k * n + j];
                         }}
                     }}
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             n = {n};
             m = new_array({nn});
             for (i = 0; i < {nn}; i = i + 1) {{ m[i] = (i * 7 + 3) % 19 + 1; }}
             lock = new Lk;
             lu = new Lu;
             fork t0 = lu.factor(m, n, lock);
             join(t0);
         }}",
        nn = n * n,
    )
}

/// Molecular dynamics: particles as objects whose coordinate fields are
/// always updated together — the field-proxy showcase — plus O(N²)
/// pairwise force reads. Phases are serialized by a global lock (the
/// paper's fixed barriers).
fn moldyn(scale: Scale) -> String {
    let n = scale.pick(24, 128);
    let steps = scale.pick(2, 8);
    let threads = 4;
    let chunk = n / threads;
    format!(
        "class Particle {{
             field x; field y; field z;
             field fx; field fy; field fz;
         }}
         class Sim {{
             meth force(ps, lo, hi, n) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     p = ps[i];
                     ax = 0; ay = 0; az = 0;
                     for (j = 0; j < n; j = j + 1) {{
                         q = ps[j];
                         dx = p.x - q.x;
                         dy = p.y - q.y;
                         dz = p.z - q.z;
                         d2 = dx * dx + dy * dy + dz * dz + 1;
                         ax = ax + dx / d2;
                         ay = ay + dy / d2;
                         az = az + dz / d2;
                     }}
                     p.fx = ax;
                     p.fy = ay;
                     p.fz = az;
                 }}
                 return 0;
             }}
             meth advance(ps, lo, hi) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     p = ps[i];
                     p.x = p.x + p.fx / 16;
                     p.y = p.y + p.fy / 16;
                     p.z = p.z + p.fz / 16;
                 }}
                 return 0;
             }}
             meth run(ps, lo, hi, n, steps, barrier) {{
                 for (s = 0; s < steps; s = s + 1) {{
                     acq(barrier);
                     r = this.force(ps, lo, hi, n);
                     rel(barrier);
                     acq(barrier);
                     r = this.advance(ps, lo, hi);
                     rel(barrier);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             n = {n};
             ps = new_array(n);
             for (i = 0; i < n; i = i + 1) {{
                 p = new Particle;
                 p.x = i; p.y = i * 2; p.z = i * 3;
                 ps[i] = p;
             }}
             barrier = new Lk;
             sim = new Sim;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "sim",
            "run",
            &format!("ps, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}, {n}, {steps}, barrier")
        ),
    )
}

/// Monte Carlo pricing: every task fills a *private* path array and
/// reduces it; only the final result lands in a disjoint shared slot. The
/// private arrays stay coarse — BigFoot's second-best case.
fn montecarlo(scale: Scale) -> String {
    let tasks = scale.pick(8, 64);
    let path = scale.pick(64, 512);
    let threads = 4;
    let chunk = tasks / threads;
    format!(
        "class Mc {{
             meth sample(results, lo, hi) {{
                 for (t = lo; t < hi; t = t + 1) {{
                     walk = new_array({path});
                     v = t * 31 + 7;
                     for (i = 0; i < {path}; i = i + 1) {{
                         v = (v * 137 + 11) % 10007;
                         walk[i] = v % 200 - 100;
                     }}
                     sum = 0;
                     for (i = 0; i < {path}; i = i + 1) {{
                         sum = sum + walk[i];
                     }}
                     results[t] = sum / {path};
                 }}
                 return 0;
             }}
         }}
         main {{
             results = new_array({tasks});
             mc = new Mc;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "mc",
            "sample",
            &format!("results, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Sparse matrix-vector multiply: indirect indices (`y[row[k]]`) defeat
/// static coalescing, but the direct streams over `row`/`col`/`val`
/// coalesce, and repeated outer iterations make many checks redundant.
fn sparse(scale: Scale) -> String {
    let nz = scale.pick(64, 2048);
    let n = scale.pick(16, 256);
    let iters = scale.pick(3, 10);
    let threads = 4;
    let chunk = nz / threads;
    format!(
        "class Spmv {{
             meth mult(row, col, val, x, y, lo, hi, iters, lock) {{
                 for (it = 0; it < iters; it = it + 1) {{
                     acq(lock);
                     for (k = lo; k < hi; k = k + 1) {{
                         r = row[k];
                         c = col[k];
                         y[r] = y[r] + val[k] * x[c] + val[k] % 3;
                     }}
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             row = new_array({nz});
             col = new_array({nz});
             val = new_array({nz});
             x = new_array({n});
             y = new_array({n});
             for (k = 0; k < {nz}; k = k + 1) {{
                 row[k] = (k * 17 + 3) % {n};
                 col[k] = (k * 29 + 5) % {n};
                 val[k] = k % 9 + 1;
             }}
             for (i = 0; i < {n}; i = i + 1) {{ x[i] = i % 13; }}
             lock = new Lk;
             sp = new Spmv;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "sp",
            "mult",
            &format!(
                "row, col, val, x, y, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}, {iters}, lock"
            )
        ),
    )
}

/// Red-black SOR: stencil sweeps over a flattened grid with neighbor
/// reads; rows coalesce into overlapping ranges. Sweeps serialize on the
/// barrier lock.
fn sor(scale: Scale) -> String {
    let n = scale.pick(12, 64);
    let iters = scale.pick(2, 8);
    let threads = 2;
    let rows = n - 2;
    let chunk = rows / threads;
    format!(
        "class Sor {{
             meth sweep(g, n, rlo, rhi, iters, barrier) {{
                 for (it = 0; it < iters; it = it + 1) {{
                     acq(barrier);
                     for (i = rlo; i < rhi; i = i + 1) {{
                         for (j = 1; j < n - 1; j = j + 1) {{
                             up = g[(i - 1) * n + j];
                             down = g[(i + 1) * n + j];
                             left = g[i * n + j - 1];
                             right = g[i * n + j + 1];
                             g[i * n + j] = (up + down + left + right) / 4;
                         }}
                     }}
                     rel(barrier);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             n = {n};
             g = new_array({nn});
             for (i = 0; i < {nn}; i = i + 1) {{ g[i] = i % 100; }}
             barrier = new Lk;
             s = new Sor;
         {forks}
         }}",
        nn = n * n,
        forks = fork_join(
            threads,
            "s",
            "sweep",
            &format!(
                "g, {n}, 1 + {{w}} * {chunk}, 1 + {{w}} * {chunk} + {chunk}, {iters}, barrier"
            )
        ),
    )
}

/// SVG-rendering stand-in: builds many small shape objects and walks them
/// a few times; moderate coalescing on fields, small arrays.
fn batik(scale: Scale) -> String {
    let shapes = scale.pick(32, 4096);
    let threads = 2;
    let chunk = shapes / threads;
    format!(
        "class Shape {{
             field x0; field y0; field x1; field y1;
         }}
         class Render {{
             meth build(shapes, lo, hi) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     s = new Shape;
                     s.x0 = i; s.y0 = i * 2;
                     s.x1 = i + 10; s.y1 = i * 2 + 10;
                     shapes[i] = s;
                 }}
                 return 0;
             }}
             meth area(shapes, lo, hi, out) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     s = shapes[i];
                     w = s.x1 - s.x0;
                     h = s.y1 - s.y0;
                     out[i] = w * h;
                 }}
                 return 0;
             }}
             meth run(shapes, out, lo, hi) {{
                 r = this.build(shapes, lo, hi);
                 r = this.area(shapes, lo, hi, out);
                 r = this.area(shapes, lo, hi, out);
                 return 0;
             }}
         }}
         main {{
             shapes = new_array({shapes});
             out = new_array({shapes});
             r = new Render;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "r",
            "run",
            &format!("shapes, out, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Ray tracer: vector objects whose x/y/z are always touched together —
/// over half the win comes from field compression (§6.2).
fn raytracer(scale: Scale) -> String {
    let pixels = scale.pick(32, 2048);
    let depth = scale.pick(4, 16);
    let threads = 4;
    let chunk = pixels / threads;
    format!(
        "class Vec {{
             field x; field y; field z;
         }}
         class Tracer {{
             meth shade(img, lo, hi) {{
                 for (p = lo; p < hi; p = p + 1) {{
                     dir = new Vec;
                     dir.x = p % 17; dir.y = p % 23; dir.z = 1;
                     hit = new Vec;
                     hit.x = 0; hit.y = 0; hit.z = 0;
                     for (d = 0; d < {depth}; d = d + 1) {{
                         dot = dir.x * hit.x + dir.y * hit.y + dir.z * hit.z;
                         hit.x = hit.x + dir.x + dot % 5;
                         hit.y = hit.y + dir.y + dot % 7;
                         hit.z = hit.z + dir.z + dot % 3;
                     }}
                     img[p] = hit.x + hit.y + hit.z;
                 }}
                 return 0;
             }}
         }}
         main {{
             img = new_array({pixels});
             t = new Tracer;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "t",
            "shade",
            &format!("img, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Servlet-container stand-in: tiny critical sections dominate; the
/// footprint bookkeeping at each sync point can even cost BigFoot a
/// little (the paper reports 1.19x of FastTrack's overhead here).
fn tomcat(scale: Scale) -> String {
    let requests = scale.pick(32, 16384);
    let threads = 4;
    let chunk = requests / threads;
    format!(
        "class Session {{
             field hits; field last; field state;
             volatile shuttingDown;
         }}
         class Server {{
             meth handle(session, queue, lock, lo, hi) {{
                 for (r = lo; r < hi; r = r + 1) {{
                     down = session.shuttingDown;
                     if (down == 0) {{
                         acq(lock);
                         session.hits = session.hits + 1;
                         if (session.hits % 64 == 0) {{ session.state = session.hits / 64; }}
                         session.last = r;
                         queue[r % queue.length] = r;
                         rel(lock);
                     }}
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             session = new Session;
             queue = new_array(16);
             lock = new Lk;
             srv = new Server;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "srv",
            "handle",
            &format!("session, queue, lock, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Sunflow-style renderer: raytracer vectors plus per-worker sample
/// buffers (private arrays, whole-buffer passes).
fn sunflow(scale: Scale) -> String {
    let pixels = scale.pick(32, 384);
    let samples = scale.pick(16, 64);
    let threads = 4;
    let chunk = pixels / threads;
    format!(
        "class Vec {{
             field x; field y; field z;
         }}
         class Render {{
             meth trace(img, lo, hi) {{
                 buf = new_array({samples});
                 for (p = lo; p < hi; p = p + 1) {{
                     v = new Vec;
                     v.x = p; v.y = p * 3 % 11; v.z = p % 7;
                     for (s = 0; s < {samples}; s = s + 1) {{
                         buf[s] = v.x * s + v.y + v.z;
                     }}
                     acc = 0;
                     for (s = 0; s < {samples}; s = s + 1) {{
                         acc = acc + buf[s];
                     }}
                     img[p] = acc / {samples};
                 }}
                 return 0;
             }}
         }}
         main {{
             img = new_array({pixels});
             r = new Render;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "r",
            "trace",
            &format!("img, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Text indexing: hash-scattered writes into a shared table (locked) plus
/// sequential document buffers.
fn luindex(scale: Scale) -> String {
    let docs = scale.pick(8, 128);
    let words = scale.pick(24, 128);
    let tsize = 64;
    let threads = 2;
    let chunk = docs / threads;
    format!(
        "class Index {{
             meth add(tab, lock, lo, hi) {{
                 for (d = lo; d < hi; d = d + 1) {{
                     doc = new_array({words});
                     for (w = 0; w < {words}; w = w + 1) {{
                         doc[w] = (d * 131 + w * 31) % 9973;
                     }}
                     acq(lock);
                     for (w = 0; w < {words}; w = w + 1) {{
                         h = doc[w] % {tsize};
                         tab[h] = tab[h] + 1;
                     }}
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             tab = new_array({tsize});
             lock = new Lk;
             idx = new Index;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "idx",
            "add",
            &format!("tab, lock, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Source-analysis stand-in: pointer chasing over a linked AST with
/// conditional field accesses; little for coalescing to do.
fn pmd(scale: Scale) -> String {
    let nodes = scale.pick(32, 1024);
    let passes = scale.pick(2, 16);
    let threads = 2;
    format!(
        "class Node {{
             field kind; field weight; field next;
         }}
         class Analyzer {{
             meth scan(head, passes, lock, acc) {{
                 for (p = 0; p < passes; p = p + 1) {{
                     acq(lock);
                     cur = head;
                     steps = 0;
                     while (steps < {nodes}) {{
                         k = cur.kind;
                         if (k % 3 == 0) {{
                             cur.weight = cur.weight + 1;
                         }} else {{
                             w = cur.weight;
                             acc.total = acc.total + w;
                         }}
                         cur = cur.next;
                         steps = steps + 1;
                     }}
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Acc {{ field total; }}
         class Lk {{ }}
         main {{
             head = new Node;
             head.kind = 0;
             cur = head;
             for (i = 1; i < {nodes}; i = i + 1) {{
                 nx = new Node;
                 nx.kind = i;
                 nx.weight = i % 5;
                 cur.next = nx;
                 cur = nx;
             }}
             cur.next = head;
             acc = new Acc;
             lock = new Lk;
             an = new Analyzer;
         {forks}
         }}",
        forks = fork_join(threads, "an", "scan", &format!("head, {passes}, lock, acc")),
    )
}

/// Formatter stand-in: builds a tree of block objects and lays them out;
/// object-heavy with small helper methods.
fn fop(scale: Scale) -> String {
    let blocks = scale.pick(48, 8192);
    let threads = 2;
    let chunk = blocks / threads;
    format!(
        "class Blockk {{
             field width; field height; field offset;
         }}
         class Layout {{
             meth measure(b, i) {{
                 b.width = i % 40 + 10;
                 b.height = i % 12 + 2;
                 return b.width;
             }}
             meth place(bs, lo, hi) {{
                 off = 0;
                 for (i = lo; i < hi; i = i + 1) {{
                     b = new Blockk;
                     w = this.measure(b, i);
                     b.offset = off;
                     off = off + w;
                     bs[i] = b;
                 }}
                 total = 0;
                 for (i = lo; i < hi; i = i + 1) {{
                     b = bs[i];
                     total = total + b.offset + b.height;
                 }}
                 return total;
             }}
         }}
         main {{
             bs = new_array({blocks});
             l = new Layout;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "l",
            "place",
            &format!("bs, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Search stand-in: shared read-only index scanned per query plus private
/// score buffers.
fn lusearch(scale: Scale) -> String {
    let index = scale.pick(64, 1024);
    let queries = scale.pick(8, 48);
    let threads = 4;
    let chunk = queries / threads;
    format!(
        "class Search {{
             meth query(index, lo, hi) {{
                 for (q = lo; q < hi; q = q + 1) {{
                     scores = new_array(16);
                     for (i = 0; i < index.length; i = i + 1) {{
                         term = index[i];
                         if (term % 16 == q % 16) {{
                             scores[q % 16] = scores[q % 16] + term;
                         }}
                     }}
                     best = 0;
                     for (s = 0; s < 16; s = s + 1) {{
                         if (scores[s] > best) {{ best = scores[s]; }}
                     }}
                 }}
                 return 0;
             }}
         }}
         main {{
             index = new_array({index});
             for (i = 0; i < {index}; i = i + 1) {{ index[i] = (i * 37 + 11) % 211; }}
             s = new Search;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "s",
            "query",
            &format!("index, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// AVR simulator stand-in: an event loop with fine-grained locking around
/// a tiny device state — sync bookkeeping dominates.
fn avrora(scale: Scale) -> String {
    let events = scale.pick(64, 32768);
    let threads = 4;
    let chunk = events / threads;
    format!(
        "class Device {{
             field reg0; field reg1; field clock;
         }}
         class SimCore {{
             meth step(dev, lock, lo, hi) {{
                 for (e = lo; e < hi; e = e + 1) {{
                     acq(lock);
                     dev.clock = dev.clock + 1;
                     if (e % 2 == 0) {{
                         dev.reg0 = dev.reg0 + e % 7;
                     }} else {{
                         dev.reg1 = dev.reg1 + e % 5;
                     }}
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             dev = new Device;
             lock = new Lk;
             core = new SimCore;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "core",
            "step",
            &format!("dev, lock, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Interpreter stand-in: dispatch over a bytecode array with a computed
/// (data-dependent) operand stack index — hostile to static reasoning.
fn jython(scale: Scale) -> String {
    let code = scale.pick(64, 8192);
    let threads = 2;
    format!(
        "class Frame {{
             field sp; field acc;
         }}
         class Vm {{
             meth exec(code, stack, lock) {{
                 f = new Frame;
                 f.sp = 0;
                 acq(lock);
                 for (pc = 0; pc < code.length; pc = pc + 1) {{
                     op = code[pc];
                     sp = f.sp;
                     if (op % 4 == 0) {{
                         stack[sp % stack.length] = op;
                         f.sp = sp + 1;
                     }} else {{
                         if (op % 4 == 1) {{
                             if (sp > 0) {{ f.sp = sp - 1; }}
                             v = stack[f.sp % stack.length];
                             f.acc = f.acc + v;
                         }} else {{
                             f.acc = f.acc + op % 3;
                         }}
                     }}
                 }}
                 rel(lock);
                 return f.acc;
             }}
         }}
         class Lk {{ }}
         main {{
             code = new_array({code});
             for (i = 0; i < {code}; i = i + 1) {{ code[i] = (i * 41 + 13) % 17; }}
             stack = new_array(32);
             lock = new Lk;
             vm = new Vm;
         {forks}
         }}",
        forks = fork_join(threads, "vm", "exec", "code, stack, lock"),
    )
}

/// XSLT stand-in: tree transformation writing an output buffer, with
/// per-item synchronization on a shared output cursor.
fn xalan(scale: Scale) -> String {
    let items = scale.pick(48, 8192);
    let threads = 4;
    let chunk = items / threads;
    format!(
        "class Cursor {{ field pos; }}
         class Transform {{
             meth apply(input, output, cur, lock, lo, hi) {{
                 for (i = lo; i < hi; i = i + 1) {{
                     v = input[i];
                     t = v * 3 % 97 + v % 5;
                     acq(lock);
                     p = cur.pos;
                     output[p % output.length] = t;
                     cur.pos = p + 1;
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Lk {{ }}
         main {{
             input = new_array({items});
             for (i = 0; i < {items}; i = i + 1) {{ input[i] = i * 19 % 83; }}
             output = new_array({items});
             cur = new Cursor;
             lock = new Lk;
             tr = new Transform;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "tr",
            "apply",
            &format!("input, output, cur, lock, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

/// Database stand-in: transactions under a table lock touching a few rows
/// each — the most synchronization-bound program in the suite.
fn h2(scale: Scale) -> String {
    let txns = scale.pick(48, 16384);
    let rows = 64;
    let threads = 4;
    let chunk = txns / threads;
    format!(
        "class Db {{
             meth txn(rows, meta, lock, lo, hi) {{
                 for (t = lo; t < hi; t = t + 1) {{
                     acq(lock);
                     r1 = (t * 7) % {rows};
                     r2 = (t * 13 + 5) % {rows};
                     v = rows[r1];
                     rows[r2] = v + 1;
                     meta.commits = meta.commits + 1;
                     rel(lock);
                 }}
                 return 0;
             }}
         }}
         class Meta {{ field commits; }}
         class Lk {{ }}
         main {{
             rows = new_array({rows});
             meta = new Meta;
             lock = new Lk;
             db = new Db;
         {forks}
         }}",
        forks = fork_join(
            threads,
            "db",
            "txn",
            &format!("rows, meta, lock, {{w}} * {chunk}, {{w}} * {chunk} + {chunk}")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{Interp, NullSink, SchedPolicy};
    use bigfoot_detectors::Detector;

    #[test]
    fn all_benchmarks_parse_and_run_small() {
        for b in benchmarks(Scale::Small) {
            Interp::new(&b.program, SchedPolicy::default())
                .with_max_steps(20_000_000)
                .run(&mut NullSink)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn all_benchmarks_are_race_free() {
        for b in benchmarks(Scale::Small) {
            let mut ft = Detector::fasttrack();
            Interp::new(
                &b.program,
                SchedPolicy::Random {
                    seed: 11,
                    switch_inv: 8,
                },
            )
            .with_max_steps(20_000_000)
            .run(&mut ft)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let stats = ft.finish();
            assert!(!stats.has_races(), "{} races: {:?}", b.name, stats.races);
        }
    }

    #[test]
    fn names_cover_all_builders() {
        for n in NAMES {
            assert!(benchmark(n, Scale::Small).is_some(), "{n}");
        }
        assert!(benchmark("nosuch", Scale::Small).is_none());
    }
}
