//! Workload programs for the BigFoot evaluation: the 19 JavaGrande/DaCapo
//! stand-ins of Table 1 and a seeded random-program generator for property
//! tests.

pub mod random;
pub mod suite;

pub use random::{random_program, RandomConfig};
pub use suite::{benchmark, benchmarks, source, Benchmark, Scale, NAMES};
