//! The end-to-end S TATIC BF pipeline: freshen → forward pre-pass →
//! backward anticipation → placement → cleanup → field-proxy analysis.

use crate::backward::anticipate_body;
use crate::cleanup::cleanup_program;
use crate::forward::{forward_pass_opts, PlacementOptions};
use crate::killset::{volatile_fields, KillSets};
use crate::proxy::field_proxies;
use crate::rename::freshen_body;
use bigfoot_bfj::{AccessKind, Block, CheckPath, Program, Stmt, StmtKind};
use bigfoot_detectors::ProxyTable;
use std::time::{Duration, Instant};

/// Timing and size statistics for one static-analysis run (the data
/// behind Table 1's S TATIC BF columns).
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Methods analyzed (including `main`).
    pub methods: usize,
    /// Total wall-clock analysis time.
    pub total_time: Duration,
    /// Per-method analysis time.
    pub per_method: Vec<(String, Duration)>,
    /// `check(C)` statements in the instrumented output.
    pub checks_inserted: usize,
}

impl AnalysisStats {
    /// Mean analysis time per method.
    pub fn time_per_method(&self) -> Duration {
        if self.methods == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.methods as u32
        }
    }
}

/// An instrumented program plus everything the dynamic side needs.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The program with `check(C)` statements inserted.
    pub program: Program,
    /// Field-proxy compression table for the detector.
    pub proxies: ProxyTable,
    /// Static-analysis statistics.
    pub stats: AnalysisStats,
}

/// Runs the full BigFoot static analysis on a program.
///
/// # Examples
///
/// ```
/// let p = bigfoot_bfj::parse_program(
///     "main {
///          a = new_array(10);
///          for (i = 0; i < 10; i = i + 1) { a[i] = i; }
///      }",
/// )?;
/// let inst = bigfoot::instrument(&p);
/// let text = bigfoot_bfj::pretty(&inst.program);
/// // The loop's writes are covered by one coalesced check after the loop
/// // (the bound is expressed via the renamed counter, `i' + 1 == i`).
/// assert!(text.contains("check(w: a[0.."), "{text}");
/// assert_eq!(text.matches("check(").count(), 1, "{text}");
/// # Ok::<(), bigfoot_bfj::ParseError>(())
/// ```
pub fn instrument(p: &Program) -> Instrumented {
    instrument_with(p, InstrumentOptions::default())
}

/// Knobs for the ablation study (`repro ablation`): each disables one of
/// the paper's ingredients while keeping placement sound.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentOptions {
    /// Backward anticipation pass (disabling forces checks before every
    /// release and at branch merges even when a later access would cover).
    pub anticipation: bool,
    /// §4 path coalescing.
    pub coalescing: bool,
    /// Loop-invariant inference / check motion out of loops.
    pub loop_invariants: bool,
    /// Static field-proxy compression.
    pub field_proxies: bool,
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        }
    }
}

/// Runs the BigFoot static analysis with explicit [`InstrumentOptions`].
pub fn instrument_with(p: &Program, options: InstrumentOptions) -> Instrumented {
    let _span_total = bigfoot_obs::span!("static.instrument");
    let t_start = Instant::now();
    let mut out = p.clone();
    {
        let _span = bigfoot_obs::span!("static.freshen");
        // Freshen every body first, then renumber so statement ids are
        // program-unique (the analysis tables are keyed by them).
        for c in &mut out.classes {
            for m in &mut c.methods {
                freshen_body(&mut m.body, &m.params);
            }
        }
        let mut main = std::mem::take(&mut out.main);
        freshen_body(&mut main, &[]);
        out.main = main;
        out.renumber();
    }

    let kills = {
        let _span = bigfoot_obs::span!("static.killsets");
        KillSets::compute(&out)
    };
    let volatiles = volatile_fields(&out);
    let mut stats = AnalysisStats::default();

    let popts = PlacementOptions {
        coalescing: options.coalescing,
        loop_invariants: options.loop_invariants,
    };
    // Per-method: record → anticipate → place.
    let analyze = |body: &Block, kills: &KillSets| -> (Block, Duration) {
        let _span = bigfoot_obs::span!("static.method");
        let t0 = Instant::now();
        let at = if options.anticipation {
            let _span = bigfoot_obs::span!("static.backward");
            let (_, tables) = forward_pass_opts(body, kills, &volatiles, None, popts);
            Some(anticipate_body(body, kills, &volatiles, &tables.h_pre))
        } else {
            None
        };
        let placed = {
            let _span = bigfoot_obs::span!("static.forward");
            let (placed, _) = forward_pass_opts(body, kills, &volatiles, at.as_ref(), popts);
            placed
        };
        (placed, t0.elapsed())
    };

    for ci in 0..out.classes.len() {
        for mi in 0..out.classes[ci].methods.len() {
            let body = std::mem::take(&mut out.classes[ci].methods[mi].body);
            let (placed, dt) = analyze(&body, &kills);
            out.classes[ci].methods[mi].body = placed;
            let name = format!(
                "{}.{}",
                out.classes[ci].name, out.classes[ci].methods[mi].name
            );
            stats.per_method.push((name, dt));
            stats.methods += 1;
            // Progress counter track in the flight recorder: in Perfetto
            // this renders analysis throughput over the method loop.
            bigfoot_obs::trace_counter!("static.methods_done", stats.methods);
        }
    }
    let body = std::mem::take(&mut out.main);
    let (placed, dt) = analyze(&body, &kills);
    out.main = placed;
    stats.per_method.push(("main".to_owned(), dt));
    stats.methods += 1;

    {
        let _span = bigfoot_obs::span!("static.cleanup");
        cleanup_program(&mut out);
    }
    stats.checks_inserted = count_checks(&out);
    stats.total_time = t_start.elapsed();
    let proxies = if options.field_proxies {
        let _span = bigfoot_obs::span!("static.proxy");
        field_proxies(&out)
    } else {
        bigfoot_detectors::ProxyTable::identity()
    };
    bigfoot_obs::count!("static.methods", stats.methods);
    bigfoot_obs::count!("static.checks_inserted", stats.checks_inserted);
    Instrumented {
        program: out,
        proxies,
        stats,
    }
}

/// Instruments every access with an adjacent check (the unoptimized
/// placement a standard detector implies; used for verifier baselines).
pub fn naive_instrument(p: &Program) -> Program {
    let mut out = p.clone();
    let volatiles = volatile_fields(p);
    for c in &mut out.classes {
        for m in &mut c.methods {
            let stmts = std::mem::take(&mut m.body.stmts);
            m.body.stmts = naive_block(stmts, &volatiles);
        }
    }
    let stmts = std::mem::take(&mut out.main.stmts);
    out.main.stmts = naive_block(stmts, &volatiles);
    out.renumber();
    out
}

fn naive_block(
    stmts: Vec<Stmt>,
    volatiles: &std::collections::HashSet<bigfoot_bfj::Sym>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len() * 2);
    for mut s in stmts {
        let check = match &s.kind {
            StmtKind::ReadField { obj, field, .. } if !volatiles.contains(field) => {
                Some(CheckPath {
                    kind: AccessKind::Read,
                    path: bigfoot_bfj::Path::field(*obj, *field),
                })
            }
            StmtKind::WriteField { obj, field, .. } if !volatiles.contains(field) => {
                Some(CheckPath {
                    kind: AccessKind::Write,
                    path: bigfoot_bfj::Path::field(*obj, *field),
                })
            }
            StmtKind::ReadArr { arr, idx, .. } => Some(CheckPath {
                kind: AccessKind::Read,
                path: bigfoot_bfj::Path::index(*arr, idx.clone()),
            }),
            StmtKind::WriteArr { arr, idx, .. } => Some(CheckPath {
                kind: AccessKind::Write,
                path: bigfoot_bfj::Path::index(*arr, idx.clone()),
            }),
            _ => None,
        };
        if let Some(cp) = check {
            out.push(Stmt::new(StmtKind::Check { paths: vec![cp] }));
        }
        match &mut s.kind {
            StmtKind::If { then_b, else_b, .. } => {
                then_b.stmts = naive_block(std::mem::take(&mut then_b.stmts), volatiles);
                else_b.stmts = naive_block(std::mem::take(&mut else_b.stmts), volatiles);
            }
            StmtKind::Loop { head, tail, .. } => {
                head.stmts = naive_block(std::mem::take(&mut head.stmts), volatiles);
                tail.stmts = naive_block(std::mem::take(&mut tail.stmts), volatiles);
            }
            _ => {}
        }
        out.push(s);
    }
    out
}

/// Counts `check(C)` statements in a program.
pub fn count_checks(p: &Program) -> usize {
    fn walk(b: &Block) -> usize {
        b.stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Check { .. } => 1,
                StmtKind::If { then_b, else_b, .. } => walk(then_b) + walk(else_b),
                StmtKind::Loop { head, tail, .. } => walk(head) + walk(tail),
                _ => 0,
            })
            .sum()
    }
    p.methods().map(|(_, m)| walk(&m.body)).sum::<usize>() + walk(&p.main)
}
