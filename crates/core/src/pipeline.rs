//! The end-to-end S TATIC BF pipeline: freshen → forward pre-pass →
//! backward anticipation → placement → cleanup → field-proxy analysis.

use crate::backward::{anticipate_body, anticipate_body_view};
use crate::cache::{CacheEntry, PlacementCache, CACHE_VERSION};
use crate::cleanup::cleanup_program;
use crate::forward::{forward_pass_opts, forward_pass_view, PlacementOptions};
use crate::killset::{scan_method_body, volatile_fields, KillSets, KillSummary};
use crate::proxy::field_proxies;
use crate::readset::{FactView, ReadSet, READSET_VERSION};
use crate::rename::freshen_body;
use bigfoot_bfj::{AccessKind, Block, CheckPath, Program, Stmt, StmtKind, Sym};
use bigfoot_detectors::ProxyTable;
use bigfoot_obs::stable::{StableHasher, STABLE_HASH_VERSION};
use std::cell::RefCell;
use std::collections::HashSet;
use std::path::Path as FsPath;
use std::time::{Duration, Instant};

/// Timing and size statistics for one static-analysis run (the data
/// behind Table 1's S TATIC BF columns).
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Methods analyzed (including `main`).
    pub methods: usize,
    /// Total wall-clock analysis time.
    pub total_time: Duration,
    /// Per-method analysis time.
    pub per_method: Vec<(String, Duration)>,
    /// `check(C)` statements in the instrumented output.
    pub checks_inserted: usize,
}

impl AnalysisStats {
    /// Mean analysis time per method.
    pub fn time_per_method(&self) -> Duration {
        if self.methods == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.methods as u32
        }
    }
}

/// An instrumented program plus everything the dynamic side needs.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The program with `check(C)` statements inserted.
    pub program: Program,
    /// Field-proxy compression table for the detector.
    pub proxies: ProxyTable,
    /// Static-analysis statistics.
    pub stats: AnalysisStats,
}

/// Runs the full BigFoot static analysis on a program.
///
/// # Examples
///
/// ```
/// let p = bigfoot_bfj::parse_program(
///     "main {
///          a = new_array(10);
///          for (i = 0; i < 10; i = i + 1) { a[i] = i; }
///      }",
/// )?;
/// let inst = bigfoot::instrument(&p);
/// let text = bigfoot_bfj::pretty(&inst.program);
/// // The loop's writes are covered by one coalesced check after the loop
/// // (the bound is expressed via the renamed counter, `i' + 1 == i`).
/// assert!(text.contains("check(w: a[0.."), "{text}");
/// assert_eq!(text.matches("check(").count(), 1, "{text}");
/// # Ok::<(), bigfoot_bfj::ParseError>(())
/// ```
pub fn instrument(p: &Program) -> Instrumented {
    instrument_with(p, InstrumentOptions::default())
}

/// Knobs for the ablation study (`repro ablation`): each disables one of
/// the paper's ingredients while keeping placement sound.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentOptions {
    /// Backward anticipation pass (disabling forces checks before every
    /// release and at branch merges even when a later access would cover).
    pub anticipation: bool,
    /// §4 path coalescing.
    pub coalescing: bool,
    /// Loop-invariant inference / check motion out of loops.
    pub loop_invariants: bool,
    /// Static field-proxy compression.
    pub field_proxies: bool,
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        }
    }
}

/// Runs the BigFoot static analysis with explicit [`InstrumentOptions`].
pub fn instrument_with(p: &Program, options: InstrumentOptions) -> Instrumented {
    let _span_total = bigfoot_obs::span!("static.instrument");
    let t_start = Instant::now();
    let mut out = p.clone();
    freshen_program(&mut out);

    let kills = {
        let _span = bigfoot_obs::span!("static.killsets");
        KillSets::compute(&out)
    };
    let volatiles = volatile_fields(&out);
    let mut stats = AnalysisStats::default();

    let popts = PlacementOptions {
        coalescing: options.coalescing,
        loop_invariants: options.loop_invariants,
    };
    // Per-method: record → anticipate → place.
    let analyze = |body: &Block, kills: &KillSets| -> (Block, Duration) {
        let _span = bigfoot_obs::span!("static.method");
        let t0 = Instant::now();
        let at = if options.anticipation {
            let _span = bigfoot_obs::span!("static.backward");
            let (_, tables) = forward_pass_opts(body, kills, &volatiles, None, popts);
            Some(anticipate_body(body, kills, &volatiles, &tables.h_pre))
        } else {
            None
        };
        let placed = {
            let _span = bigfoot_obs::span!("static.forward");
            let (placed, _) = forward_pass_opts(body, kills, &volatiles, at.as_ref(), popts);
            placed
        };
        (placed, t0.elapsed())
    };

    for ci in 0..out.classes.len() {
        for mi in 0..out.classes[ci].methods.len() {
            let body = std::mem::take(&mut out.classes[ci].methods[mi].body);
            let (placed, dt) = analyze(&body, &kills);
            out.classes[ci].methods[mi].body = placed;
            let name = format!(
                "{}.{}",
                out.classes[ci].name, out.classes[ci].methods[mi].name
            );
            stats.per_method.push((name, dt));
            stats.methods += 1;
            // Progress counter track in the flight recorder: in Perfetto
            // this renders analysis throughput over the method loop.
            bigfoot_obs::trace_counter!("static.methods_done", stats.methods);
        }
    }
    let body = std::mem::take(&mut out.main);
    let (placed, dt) = analyze(&body, &kills);
    out.main = placed;
    stats.per_method.push(("main".to_owned(), dt));
    stats.methods += 1;

    {
        let _span = bigfoot_obs::span!("static.cleanup");
        cleanup_program(&mut out);
    }
    stats.checks_inserted = count_checks(&out);
    stats.total_time = t_start.elapsed();
    let proxies = if options.field_proxies {
        let _span = bigfoot_obs::span!("static.proxy");
        field_proxies(&out)
    } else {
        bigfoot_detectors::ProxyTable::identity()
    };
    bigfoot_obs::count!("static.methods", stats.methods);
    bigfoot_obs::count!("static.checks_inserted", stats.checks_inserted);
    Instrumented {
        program: out,
        proxies,
        stats,
    }
}

/// Freshens every body and renumbers so statement ids are program-unique
/// (the analysis tables are keyed by them). Deterministic, so cold and
/// warm runs see identical freshened programs.
fn freshen_program(out: &mut Program) {
    let _span = bigfoot_obs::span!("static.freshen");
    for c in &mut out.classes {
        for m in &mut c.methods {
            freshen_body(&mut m.body, &m.params);
        }
    }
    let mut main = std::mem::take(&mut out.main);
    freshen_body(&mut main, &[]);
    out.main = main;
    out.renumber();
}

/// Version of the placement pipeline's observable output (freshening,
/// pass order, cleanup). Folded into [`config_fingerprint`]; bump when a
/// pipeline change can alter placements for an unchanged input.
const PLACEMENT_VERSION: u32 = 1;

/// Stable fingerprint of everything configuration-shaped that placement
/// output depends on: the [`InstrumentOptions`] knobs plus the version
/// constants of every analysis layer (entailment semantics included). A
/// persistent cache whose `config_fp` differs is ignored wholesale.
pub fn config_fingerprint(options: InstrumentOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u32(STABLE_HASH_VERSION);
    h.write_u32(CACHE_VERSION);
    h.write_u32(bigfoot_bfj::FINGERPRINT_VERSION);
    h.write_u32(READSET_VERSION);
    h.write_u32(bigfoot_entail::ENTAIL_VERSION);
    h.write_u32(PLACEMENT_VERSION);
    h.write_bool(options.anticipation);
    h.write_bool(options.coalescing);
    h.write_bool(options.loop_invariants);
    h.write_bool(options.field_proxies);
    h.finish()
}

fn volatiles_fingerprint(volatiles: &HashSet<Sym>) -> u64 {
    let mut names: Vec<&'static str> = volatiles.iter().map(|s| s.as_str()).collect();
    names.sort_unstable();
    let mut h = StableHasher::new();
    h.write_u32(STABLE_HASH_VERSION);
    h.write_usize(names.len());
    for n in names {
        h.write_str(n);
    }
    h.finish()
}

/// Cache behavior observed during one [`instrument_incremental`] run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalStats {
    /// Sites whose cached placement was replayed (analysis skipped).
    pub hits: usize,
    /// Sites analyzed from scratch.
    pub misses: usize,
    /// A cache file existed but was malformed (typed decode error); the
    /// run fell back to cold analysis.
    pub cache_invalid: bool,
    /// A decodable cache with a matching analysis config was found.
    pub warm: bool,
}

impl IncrementalStats {
    /// Fraction of sites skipped: `hits / (hits + misses)`.
    pub fn skip_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One analyzable site of the program: a class method or `main`.
struct Site {
    /// Cache key: `"Class.method#ordinal"` (ordinal among same-named
    /// methods of the class, so inserting an unrelated method does not
    /// shift other keys), or `"main"`.
    key: String,
    /// Human name for [`AnalysisStats::per_method`].
    label: String,
    /// Bare method name (kill sets are name-keyed); `"main"` for main.
    method_name: Sym,
    /// `Some((class_idx, method_idx))`, or `None` for main.
    loc: Option<(usize, usize)>,
    /// Structural fingerprint of the freshened body.
    body_fp: u64,
}

fn sites_of(out: &Program) -> Vec<Site> {
    let mut sites = Vec::new();
    for (ci, c) in out.classes.iter().enumerate() {
        for (mi, m) in c.methods.iter().enumerate() {
            let ordinal = c.methods[..mi].iter().filter(|o| o.name == m.name).count();
            sites.push(Site {
                key: format!("{}.{}#{}", c.name, m.name, ordinal),
                label: format!("{}.{}", c.name, m.name),
                method_name: m.name,
                loc: Some((ci, mi)),
                body_fp: bigfoot_bfj::fingerprint_body(&m.params, &m.body, &m.ret),
            });
        }
    }
    sites.push(Site {
        key: "main".to_owned(),
        label: "main".to_owned(),
        method_name: Sym::intern("main"),
        loc: None,
        body_fp: bigfoot_bfj::fingerprint_block(&out.main),
    });
    sites
}

/// [`instrument_with`] plus a persistent per-method placement cache in
/// `cache_dir` (the `.bigfoot-cache/` layout).
///
/// A cold run (no cache, malformed cache, or changed analysis config)
/// behaves exactly like [`instrument_with`] while recording, per method,
/// the body fingerprint, the cross-method fact read-set, the kill-scan
/// summary, and the placed body. A warm run replays cached placements
/// for every site whose body fingerprint and fact read-set digest still
/// match, re-analyzes only the rest, and rebuilds the kill-set fixpoint
/// from cached scan summaries (rescanning only edited bodies) — so the
/// cross-method fixpoint is recomputed only over the dirtied dependency
/// cone. The instrumented output is byte-identical to a cold run.
pub fn instrument_incremental(
    p: &Program,
    options: InstrumentOptions,
    cache_dir: &FsPath,
) -> (Instrumented, IncrementalStats) {
    let _span_total = bigfoot_obs::span!("static.instrument");
    let t_start = Instant::now();
    let config_fp = config_fingerprint(options);
    let mut inc = IncrementalStats::default();

    let cache = match PlacementCache::load(cache_dir) {
        Ok(Some(c)) if c.config_fp == config_fp => {
            inc.warm = true;
            Some(c)
        }
        // A cache from a different analysis config is not *invalid*,
        // just unusable for this run; overwrite it below.
        Ok(Some(_)) | Ok(None) => None,
        Err(_) => {
            inc.cache_invalid = true;
            bigfoot_obs::count!("static.cache.invalid");
            None
        }
    };

    let mut out = p.clone();
    freshen_program(&mut out);

    let volatiles = volatile_fields(&out);
    let volatiles_fp = volatiles_fingerprint(&volatiles);
    let sites = sites_of(&out);

    // Kill sets: rescan only bodies whose fingerprint changed (or all,
    // when the volatile set — which scanning depends on — changed).
    let kills = {
        let _span = bigfoot_obs::span!("static.killsets");
        let kill_reusable = cache
            .as_ref()
            .map(|c| c.volatiles_fp == volatiles_fp)
            .unwrap_or(false);
        let summaries: Vec<(Sym, KillSummary)> = sites
            .iter()
            .filter_map(|site| {
                let (ci, mi) = site.loc?;
                let cached = if kill_reusable {
                    cache.as_ref().and_then(|c| {
                        let e = c.entries.get(&site.key)?;
                        (e.body_fp == site.body_fp).then(|| e.kill.clone())
                    })
                } else {
                    None
                };
                let summary = cached.unwrap_or_else(|| {
                    scan_method_body(&out.classes[ci].methods[mi].body.stmts, &volatiles)
                });
                Some((site.method_name, summary))
            })
            .collect();
        KillSets::from_summaries(summaries)
    };

    let popts = PlacementOptions {
        coalescing: options.coalescing,
        loop_invariants: options.loop_invariants,
    };
    let mut stats = AnalysisStats::default();
    let mut new_entries = std::collections::BTreeMap::new();

    for site in &sites {
        let body = match site.loc {
            Some((ci, mi)) => std::mem::take(&mut out.classes[ci].methods[mi].body),
            None => std::mem::take(&mut out.main),
        };
        let t0 = Instant::now();
        let hit = cache.as_ref().and_then(|c| {
            let e = c.entries.get(&site.key)?;
            (e.body_fp == site.body_fp
                && e.readset.fingerprint_against(&kills, &volatiles) == e.facts_fp)
                .then_some(e)
        });
        let (placed, entry) = match hit {
            Some(e) => {
                bigfoot_obs::count!("static.cache.hits");
                inc.hits += 1;
                (e.placed.clone(), e.clone())
            }
            None => {
                bigfoot_obs::count!("static.cache.misses");
                inc.misses += 1;
                let _span = bigfoot_obs::span!("static.method");
                let log = RefCell::new(ReadSet::default());
                let view = FactView::tracked(&kills, &volatiles, &log);
                let at = if options.anticipation {
                    let _span = bigfoot_obs::span!("static.backward");
                    let (_, tables) = forward_pass_view(&body, view, None, popts);
                    Some(anticipate_body_view(&body, view, &tables.h_pre))
                } else {
                    None
                };
                let placed = {
                    let _span = bigfoot_obs::span!("static.forward");
                    let (placed, _) = forward_pass_view(&body, view, at.as_ref(), popts);
                    placed
                };
                let readset = log.into_inner();
                let facts_fp = readset.fingerprint();
                let kill = scan_method_body(&body.stmts, &volatiles);
                let entry = CacheEntry {
                    method_name: site.method_name.as_str(),
                    body_fp: site.body_fp,
                    facts_fp,
                    readset,
                    kill,
                    placed: placed.clone(),
                };
                (placed, entry)
            }
        };
        match site.loc {
            Some((ci, mi)) => out.classes[ci].methods[mi].body = placed,
            None => out.main = placed,
        }
        new_entries.insert(site.key.clone(), entry);
        stats.per_method.push((site.label.clone(), t0.elapsed()));
        stats.methods += 1;
        bigfoot_obs::trace_counter!("static.methods_done", stats.methods);
    }
    bigfoot_obs::gauge_max_named("static.incremental.skipped_methods", inc.hits as u64);

    {
        let _span = bigfoot_obs::span!("static.cleanup");
        cleanup_program(&mut out);
    }
    stats.checks_inserted = count_checks(&out);
    stats.total_time = t_start.elapsed();
    let proxies = if options.field_proxies {
        let _span = bigfoot_obs::span!("static.proxy");
        field_proxies(&out)
    } else {
        bigfoot_detectors::ProxyTable::identity()
    };
    bigfoot_obs::count!("static.methods", stats.methods);
    bigfoot_obs::count!("static.checks_inserted", stats.checks_inserted);

    // Best-effort persist; a read-only cache dir degrades to cold runs.
    let _ = PlacementCache {
        config_fp,
        volatiles_fp,
        entries: new_entries,
    }
    .store(cache_dir);

    (
        Instrumented {
            program: out,
            proxies,
            stats,
        },
        inc,
    )
}

/// Instruments every access with an adjacent check (the unoptimized
/// placement a standard detector implies; used for verifier baselines).
pub fn naive_instrument(p: &Program) -> Program {
    let mut out = p.clone();
    let volatiles = volatile_fields(p);
    for c in &mut out.classes {
        for m in &mut c.methods {
            let stmts = std::mem::take(&mut m.body.stmts);
            m.body.stmts = naive_block(stmts, &volatiles);
        }
    }
    let stmts = std::mem::take(&mut out.main.stmts);
    out.main.stmts = naive_block(stmts, &volatiles);
    out.renumber();
    out
}

fn naive_block(
    stmts: Vec<Stmt>,
    volatiles: &std::collections::HashSet<bigfoot_bfj::Sym>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len() * 2);
    for mut s in stmts {
        let check = match &s.kind {
            StmtKind::ReadField { obj, field, .. } if !volatiles.contains(field) => {
                Some(CheckPath {
                    kind: AccessKind::Read,
                    path: bigfoot_bfj::Path::field(*obj, *field),
                })
            }
            StmtKind::WriteField { obj, field, .. } if !volatiles.contains(field) => {
                Some(CheckPath {
                    kind: AccessKind::Write,
                    path: bigfoot_bfj::Path::field(*obj, *field),
                })
            }
            StmtKind::ReadArr { arr, idx, .. } => Some(CheckPath {
                kind: AccessKind::Read,
                path: bigfoot_bfj::Path::index(*arr, idx.clone()),
            }),
            StmtKind::WriteArr { arr, idx, .. } => Some(CheckPath {
                kind: AccessKind::Write,
                path: bigfoot_bfj::Path::index(*arr, idx.clone()),
            }),
            _ => None,
        };
        if let Some(cp) = check {
            out.push(Stmt::new(StmtKind::Check { paths: vec![cp] }));
        }
        match &mut s.kind {
            StmtKind::If { then_b, else_b, .. } => {
                then_b.stmts = naive_block(std::mem::take(&mut then_b.stmts), volatiles);
                else_b.stmts = naive_block(std::mem::take(&mut else_b.stmts), volatiles);
            }
            StmtKind::Loop { head, tail, .. } => {
                head.stmts = naive_block(std::mem::take(&mut head.stmts), volatiles);
                tail.stmts = naive_block(std::mem::take(&mut tail.stmts), volatiles);
            }
            _ => {}
        }
        out.push(s);
    }
    out
}

/// Counts `check(C)` statements in a program.
pub fn count_checks(p: &Program) -> usize {
    fn walk(b: &Block) -> usize {
        b.stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Check { .. } => 1,
                StmtKind::If { then_b, else_b, .. } => walk(then_b) + walk(else_b),
                StmtKind::Loop { head, tail, .. } => walk(head) + walk(tail),
                _ => 0,
            })
            .sum()
    }
    p.methods().map(|(_, m)| walk(&m.body)).sum::<usize>() + walk(&p.main)
}
