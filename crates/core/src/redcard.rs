//! The R ED C ARD baseline instrumenter (Flanagan & Freund, ECOOP 2013).
//!
//! RedCard eliminates exactly one form of redundancy: a check on an access
//! whose location was already checked *within the same release-free span*
//! (with a covering kind). Unlike BigFoot it performs no check motion, no
//! anticipation, and no coalescing — every retained check sits immediately
//! before its access. Its field-proxy analysis groups fields that are
//! always accessed together within a span.

use crate::facts::{APath, History, PathFact};
use crate::killset::KillSets;
use crate::proxy::grouping_from_sets;
use bigfoot_bfj::{AccessKind, Block, CheckPath, Expr, Program, Stmt, StmtKind, Sym};
use bigfoot_detectors::ProxyTable;
use bigfoot_entail::{linearize, AliasRhs, SymRange};
use std::collections::HashSet;

/// Instruments a program in RedCard style; returns the instrumented
/// program and its field-proxy table.
pub fn redcard_instrument(p: &Program) -> (Program, ProxyTable) {
    let kills = KillSets::compute(p);
    let volatiles = crate::killset::volatile_fields(p);
    let mut out = p.clone();
    let mut spans: Vec<Vec<Sym>> = Vec::new();
    for c in &mut out.classes {
        for m in &mut c.methods {
            let mut rc = RedCard {
                kills: &kills,
                volatiles: &volatiles,
                spans: &mut spans,
                span_fields: HashSet::new(),
            };
            let (stmts, _) = rc.block(&m.body.stmts, History::new());
            rc.end_span();
            m.body = Block { stmts };
        }
    }
    let mut rc = RedCard {
        kills: &kills,
        volatiles: &volatiles,
        spans: &mut spans,
        span_fields: HashSet::new(),
    };
    let (stmts, _) = rc.block(&out.main.stmts, History::new());
    rc.end_span();
    out.main = Block { stmts };
    out.renumber();
    let proxies = grouping_from_sets(&out, &spans);
    (out, proxies)
}

struct RedCard<'a> {
    kills: &'a KillSets,
    volatiles: &'a HashSet<Sym>,
    /// Completed release-free-span field sets (for the proxy analysis).
    spans: &'a mut Vec<Vec<Sym>>,
    /// Fields accessed in the current span.
    span_fields: HashSet<Sym>,
}

impl RedCard<'_> {
    fn end_span(&mut self) {
        if !self.span_fields.is_empty() {
            let mut v: Vec<Sym> = self.span_fields.drain().collect();
            v.sort_by_key(|s| s.as_str());
            self.spans.push(v);
        }
    }

    fn block(&mut self, stmts: &[Stmt], mut h: History) -> (Vec<Stmt>, History) {
        let mut out = Vec::new();
        for s in stmts {
            h = self.stmt(s, h, &mut out);
        }
        (out, h)
    }

    /// Emits a check for `fact` unless a covering check exists in the
    /// current span.
    fn check_access(&mut self, h: &mut History, fact: PathFact, out: &mut Vec<Stmt>) {
        let mut kb = h.kb();
        if !h.covered_by_check(&mut kb, &fact) {
            out.push(Stmt::new(StmtKind::Check {
                paths: vec![CheckPath {
                    kind: fact.kind,
                    path: fact.path.to_ast(),
                }],
            }));
            h.add_check(fact);
        }
    }

    fn stmt(&mut self, s: &Stmt, mut h: History, out: &mut Vec<Stmt>) -> History {
        match &s.kind {
            StmtKind::ReadField { x, obj, field } => {
                if self.volatiles.contains(field) {
                    // Acquire-like; not checked.
                    h.aliases.clear();
                    h.kill_var(*x);
                    out.push(s.clone());
                    return h;
                }
                self.span_fields.insert(*field);
                h.kill_var(*x);
                self.check_access(
                    &mut h,
                    PathFact {
                        path: APath::Field {
                            base: *obj,
                            field: *field,
                        },
                        kind: AccessKind::Read,
                    },
                    out,
                );
                h.add_alias(
                    *x,
                    AliasRhs::Field {
                        base: *obj,
                        field: *field,
                    },
                );
                out.push(s.clone());
                h
            }
            StmtKind::WriteField { obj, field, .. } => {
                if self.volatiles.contains(field) {
                    // Release-like; ends the span, not checked.
                    self.end_span();
                    h.forget_accesses_and_checks();
                    out.push(s.clone());
                    return h;
                }
                self.span_fields.insert(*field);
                let fld = *field;
                h.aliases.retain(
                    |(_, rhs)| !matches!(rhs, AliasRhs::Field { field, .. } if *field == fld),
                );
                self.check_access(
                    &mut h,
                    PathFact {
                        path: APath::Field {
                            base: *obj,
                            field: *field,
                        },
                        kind: AccessKind::Write,
                    },
                    out,
                );
                out.push(s.clone());
                h
            }
            StmtKind::ReadArr { x, arr, idx } => {
                h.kill_var(*x);
                if let Some(l) = linearize(idx) {
                    self.check_access(
                        &mut h,
                        PathFact {
                            path: APath::Arr {
                                base: *arr,
                                range: SymRange::singleton(l),
                            },
                            kind: AccessKind::Read,
                        },
                        out,
                    );
                } else {
                    out.push(check_singleton(*arr, idx, AccessKind::Read));
                }
                out.push(s.clone());
                h
            }
            StmtKind::WriteArr { arr, idx, .. } => {
                h.aliases
                    .retain(|(_, rhs)| !matches!(rhs, AliasRhs::Elem { .. }));
                if let Some(l) = linearize(idx) {
                    self.check_access(
                        &mut h,
                        PathFact {
                            path: APath::Arr {
                                base: *arr,
                                range: SymRange::singleton(l),
                            },
                            kind: AccessKind::Write,
                        },
                        out,
                    );
                } else {
                    out.push(check_singleton(*arr, idx, AccessKind::Write));
                }
                out.push(s.clone());
                h
            }
            StmtKind::Assign { x, e } => {
                h.kill_var(*x);
                if !e.mentions(*x) {
                    h.add_bool(crate::forward_eq_fact(*x, e));
                }
                out.push(s.clone());
                h
            }
            StmtKind::Rename { fresh, old } => {
                h.kill_var(*fresh);
                h.rename(*old, *fresh);
                out.push(s.clone());
                h
            }
            StmtKind::New { x, .. } | StmtKind::NewArray { x, .. } => {
                h.kill_var(*x);
                out.push(s.clone());
                h
            }
            StmtKind::Acquire { .. } | StmtKind::Join { .. } => {
                // Checks survive acquires (spans end at releases); alias
                // facts die.
                h.aliases.clear();
                out.push(s.clone());
                h
            }
            StmtKind::Release { .. } | StmtKind::Fork { .. } | StmtKind::Wait { .. } => {
                self.end_span();
                h.aliases.clear();
                h.forget_accesses_and_checks();
                if let StmtKind::Fork { x, .. } = &s.kind {
                    h.kill_var(*x);
                }
                out.push(s.clone());
                h
            }
            StmtKind::Call { x, meth, .. } => {
                let eff = self.kills.effects(*meth);
                if eff.releases {
                    self.end_span();
                    h.forget_accesses_and_checks();
                }
                if eff.acquires || eff.writes_heap {
                    h.aliases.clear();
                }
                h.kill_var(*x);
                out.push(s.clone());
                h
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let mut h1 = h.clone();
                h1.add_bool(cond.clone());
                let mut h2 = h;
                h2.add_bool(Expr::Unop(bigfoot_bfj::Unop::Not, Box::new(cond.clone())));
                let (rb1, h1p) = self.block(&then_b.stmts, h1);
                let (rb2, h2p) = self.block(&else_b.stmts, h2);
                // Keep checks present on both sides.
                let mut kb1 = h1p.kb();
                let mut kb2 = h2p.kb();
                let mut merged = History::new();
                for b in h1p.bools.iter().chain(h2p.bools.iter()) {
                    if kb1.entails(b) && kb2.entails(b) {
                        merged.add_bool(b.clone());
                    }
                }
                for al in &h1p.aliases {
                    if h2p.aliases.contains(al) {
                        merged.add_alias(al.0, al.1.clone());
                    }
                }
                for c in h1p.checks.iter().chain(h2p.checks.iter()) {
                    if h1p.covered_by_check(&mut kb1, c) && h2p.covered_by_check(&mut kb2, c) {
                        merged.add_check(c.clone());
                    }
                }
                out.push(Stmt::new(StmtKind::If {
                    cond: cond.clone(),
                    then_b: Block { stmts: rb1 },
                    else_b: Block { stmts: rb2 },
                }));
                merged
            }
            StmtKind::Loop { head, exit, tail } => {
                // Conservative: no check facts survive into the loop head.
                let assigned: Vec<Sym> = {
                    let mut set = HashSet::new();
                    collect_assigned(head, &mut set);
                    collect_assigned(tail, &mut set);
                    set.into_iter().collect()
                };
                let mut h_head = History::new();
                for b in &h.bools {
                    if !assigned.iter().any(|x| b.mentions(*x)) {
                        h_head.add_bool(b.clone());
                    }
                }
                let (rhead, hj) = self.block(&head.stmts, h_head);
                let mut hback = hj.clone();
                hback.add_bool(Expr::Unop(bigfoot_bfj::Unop::Not, Box::new(exit.clone())));
                let (rtail, _) = self.block(&tail.stmts, hback);
                let mut hout = hj;
                hout.add_bool(exit.clone());
                out.push(Stmt::new(StmtKind::Loop {
                    head: Block { stmts: rhead },
                    exit: exit.clone(),
                    tail: Block { stmts: rtail },
                }));
                hout
            }
            _ => {
                out.push(s.clone());
                h
            }
        }
    }
}

fn check_singleton(arr: Sym, idx: &Expr, kind: AccessKind) -> Stmt {
    Stmt::new(StmtKind::Check {
        paths: vec![CheckPath {
            kind,
            path: bigfoot_bfj::Path::index(arr, idx.clone()),
        }],
    })
}

fn collect_assigned(b: &Block, out: &mut HashSet<Sym>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Assign { x, .. }
            | StmtKind::New { x, .. }
            | StmtKind::NewArray { x, .. }
            | StmtKind::ReadField { x, .. }
            | StmtKind::ReadArr { x, .. }
            | StmtKind::Call { x, .. }
            | StmtKind::Fork { x, .. } => {
                out.insert(*x);
            }
            StmtKind::Rename { fresh, .. } => {
                out.insert(*fresh);
            }
            _ => {}
        }
        match &s.kind {
            StmtKind::If { then_b, else_b, .. } => {
                collect_assigned(then_b, out);
                collect_assigned(else_b, out);
            }
            StmtKind::Loop { head, tail, .. } => {
                collect_assigned(head, out);
                collect_assigned(tail, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, pretty};

    fn instrument(src: &str) -> String {
        let p = parse_program(src).unwrap();
        let (out, _) = redcard_instrument(&p);
        pretty(&out)
    }

    #[test]
    fn duplicate_read_check_eliminated() {
        let out = instrument(
            "class C { field f; }
             main { c = new C; x = c.f; y = c.f; }",
        );
        assert_eq!(out.matches("check(").count(), 1, "{out}");
    }

    #[test]
    fn write_check_not_covered_by_read_check() {
        let out = instrument(
            "class C { field f; }
             main { c = new C; x = c.f; c.f = 1; }",
        );
        // read check + write check (read does not cover write).
        assert_eq!(out.matches("check(").count(), 2, "{out}");
    }

    #[test]
    fn write_then_read_single_check() {
        let out = instrument(
            "class C { field f; }
             main { c = new C; v = 3; c.f = v; x = c.f; }",
        );
        assert_eq!(out.matches("check(").count(), 1, "{out}");
    }

    #[test]
    fn release_resets_the_span() {
        let out = instrument(
            "class C { field f; }
             class L { }
             main { c = new C; l = new L; x = c.f; acq(l); rel(l); y = c.f; }",
        );
        assert_eq!(out.matches("check(").count(), 2, "{out}");
    }

    #[test]
    fn checks_stay_adjacent_to_accesses() {
        let out = instrument(
            "main {
                 a = new_array(10);
                 for (i = 0; i < 10; i = i + 1) { a[i] = i; }
             }",
        );
        // RedCard cannot move the check out of the loop.
        assert!(out.contains("check(w: a[i])"), "{out}");
    }
}
