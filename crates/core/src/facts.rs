//! Analysis contexts `H • A` (§3.2): history and anticipated fact sets.
//!
//! History facts:
//!   * boolean expressions `be` (branch tests, assignment equalities),
//!   * heap-alias expressions `x = y.f` / `x = y[i]` (§5),
//!   * past accesses `p✁` (read/write tagged) whose checks are pending,
//!   * past checks `p√` (read/write tagged).
//!
//! Anticipated facts are future accesses `p✸` (read/write tagged) that are
//! guaranteed on every path to the next acquire.

use bigfoot_bfj::{pretty_expr, AccessKind, Expr, Path, Sym};
use bigfoot_entail::{linearize, AliasRhs, Kb, Lin, SymRange};

/// An analysis path: a single object field or a symbolic array range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum APath {
    /// `base.field`
    Field {
        /// The designator variable.
        base: Sym,
        /// The field.
        field: Sym,
    },
    /// `base[range]`
    Arr {
        /// The designator variable.
        base: Sym,
        /// The symbolic strided range.
        range: SymRange,
    },
}

impl APath {
    /// The designator variable.
    pub fn base(&self) -> Sym {
        match self {
            APath::Field { base, .. } | APath::Arr { base, .. } => *base,
        }
    }

    /// Builds from a syntactic check path. Returns `None` when the range
    /// bounds are not linearizable.
    pub fn from_ast(p: &Path) -> Option<Vec<APath>> {
        match p {
            Path::Fields { base, fields } => Some(
                fields
                    .iter()
                    .map(|f| APath::Field {
                        base: *base,
                        field: *f,
                    })
                    .collect(),
            ),
            Path::Arr { base, range } => Some(vec![APath::Arr {
                base: *base,
                range: SymRange::from_ast(range)?,
            }]),
        }
    }

    /// Converts to a syntactic path.
    pub fn to_ast(&self) -> Path {
        match self {
            APath::Field { base, field } => Path::field(*base, *field),
            APath::Arr { base, range } => Path::Arr {
                base: *base,
                range: range.to_ast(),
            },
        }
    }

    /// True if the path mentions variable `x` (as designator or in range
    /// bounds).
    pub fn mentions(&self, x: Sym) -> bool {
        match self {
            APath::Field { base, .. } => *base == x,
            APath::Arr { base, range } => {
                *base == x
                    || range.lo.atoms().any(|a| atom_mentions(a, x))
                    || range.hi.atoms().any(|a| atom_mentions(a, x))
            }
        }
    }

    /// Substitutes variable `from` by expression `to` in range bounds and,
    /// when `to` is a variable, in the designator. Returns `None` if the
    /// path would become ill-formed (non-variable designator).
    pub fn subst(&self, from: Sym, to: &Expr) -> Option<APath> {
        let new_base = |base: Sym| -> Option<Sym> {
            if base == from {
                match to {
                    Expr::Var(y) => Some(*y),
                    _ => None,
                }
            } else {
                Some(base)
            }
        };
        match self {
            APath::Field { base, field } => Some(APath::Field {
                base: new_base(*base)?,
                field: *field,
            }),
            APath::Arr { base, range } => {
                let to_lin = linearize(to)?;
                Some(APath::Arr {
                    base: new_base(*base)?,
                    range: range.map_bounds(|l| subst_lin(l, from, &to_lin)),
                })
            }
        }
    }
}

fn atom_mentions(a: bigfoot_entail::Atom, x: Sym) -> bool {
    match a {
        bigfoot_entail::Atom::Var(v) | bigfoot_entail::Atom::Len(v) => v == x,
        // Opaque atoms are keyed by their rendering, which parses back to
        // the original term, so we can resolve their variable sets
        // precisely (memoized). Unparseable atoms conservatively mention
        // everything.
        bigfoot_entail::Atom::Opaque(s) => match opaque_vars(s) {
            Some(vs) => vs.contains(&x),
            None => true,
        },
    }
}

/// The variable set of an opaque atom, memoized; `None` if the rendering
/// does not parse back (never the case for atoms we generate, but callers
/// must stay conservative).
fn opaque_vars(s: Sym) -> Option<&'static [Sym]> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Memo = Mutex<HashMap<Sym, Option<&'static [Sym]>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut memo = memo.lock().expect("opaque memo poisoned");
    if let Some(v) = memo.get(&s) {
        return *v;
    }
    let entry = match bigfoot_bfj::parse_expr(s.as_str()) {
        Ok(e) => {
            let mut vs = Vec::new();
            e.vars(&mut vs);
            vs.sort();
            vs.dedup();
            Some(&*Box::leak(vs.into_boxed_slice()))
        }
        Err(_) => None,
    };
    memo.insert(s, entry);
    entry
}

/// Substitutes `from := to` inside a linear term.
pub fn subst_lin(l: &Lin, from: Sym, to: &Lin) -> Lin {
    let e = l.to_expr().subst(from, &to.to_expr());
    linearize(&e).unwrap_or_else(|| l.clone())
}

impl std::fmt::Display for APath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            APath::Field { base, field } => write!(f, "{base}.{field}"),
            APath::Arr { base, range } => write!(f, "{base}[{range}]"),
        }
    }
}

/// A tagged path fact: `p✁`, `p√`, or `p✸` depending on the containing
/// set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFact {
    /// The path.
    pub path: APath,
    /// Read or write.
    pub kind: AccessKind,
}

impl std::fmt::Display for PathFact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "r",
            AccessKind::Write => "w",
        };
        write!(f, "{}({k})", self.path)
    }
}

/// The history component `H` of a context.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Boolean facts.
    pub bools: Vec<Expr>,
    /// Heap-alias facts `x = rhs`.
    pub aliases: Vec<(Sym, AliasRhs)>,
    /// Past accesses with pending checks (`p✁`).
    pub accesses: Vec<PathFact>,
    /// Past checks (`p√`).
    pub checks: Vec<PathFact>,
}

/// The anticipated component `A` of a context.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Anticipated {
    /// Future accesses (`p✸`).
    pub facts: Vec<PathFact>,
}

impl History {
    /// The empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Builds a [`Kb`] from the boolean and alias facts.
    pub fn kb(&self) -> Kb {
        let mut kb = Kb::new();
        for b in &self.bools {
            kb.assume(b);
        }
        for (x, rhs) in &self.aliases {
            kb.assume_alias(*x, rhs.clone());
        }
        kb
    }

    /// Adds a boolean fact (deduplicated syntactically, capped to keep
    /// entailment fast).
    pub fn add_bool(&mut self, e: Expr) {
        if matches!(e, Expr::Bool(true)) || self.bools.contains(&e) {
            return;
        }
        const MAX_BOOLS: usize = 32;
        if self.bools.len() < MAX_BOOLS {
            self.bools.push(e);
        }
    }

    /// Adds an alias fact.
    pub fn add_alias(&mut self, x: Sym, rhs: AliasRhs) {
        const MAX_ALIASES: usize = 32;
        if self.aliases.len() < MAX_ALIASES {
            self.aliases.push((x, rhs));
        }
    }

    /// Adds a past-access fact, deduplicating identical entries.
    pub fn add_access(&mut self, fact: PathFact) {
        if !self.accesses.contains(&fact) {
            self.accesses.push(fact);
        }
    }

    /// Adds a past-check fact.
    pub fn add_check(&mut self, fact: PathFact) {
        if !self.checks.contains(&fact) {
            self.checks.push(fact);
        }
    }

    /// Removes every fact mentioning variable `x`.
    pub fn kill_var(&mut self, x: Sym) {
        self.bools.retain(|b| !b.mentions(x));
        self.aliases.retain(|(lhs, rhs)| {
            *lhs != x
                && match rhs {
                    AliasRhs::Field { base, .. } => *base != x,
                    AliasRhs::Elem { base, index } => {
                        *base != x && !index.atoms().any(|a| atom_mentions(a, x))
                    }
                }
        });
        self.accesses.retain(|f| !f.path.mentions(x));
        self.checks.retain(|f| !f.path.mentions(x));
    }

    /// True if any fact mentions `x`.
    pub fn mentions(&self, x: Sym) -> bool {
        self.bools.iter().any(|b| b.mentions(x))
            || self.aliases.iter().any(|(lhs, rhs)| {
                *lhs == x
                    || match rhs {
                        AliasRhs::Field { base, .. } => *base == x,
                        AliasRhs::Elem { base, index } => {
                            *base == x || index.atoms().any(|a| atom_mentions(a, x))
                        }
                    }
            })
            || self.accesses.iter().any(|f| f.path.mentions(x))
            || self.checks.iter().any(|f| f.path.mentions(x))
    }

    /// Renames `old` to `fresh` in every fact (the `[RENAME]` rule: `fresh`
    /// holds the old value of `old`).
    pub fn rename(&mut self, old: Sym, fresh: Sym) {
        let to = Expr::Var(fresh);
        for b in &mut self.bools {
            *b = b.subst(old, &to);
        }
        for (lhs, rhs) in &mut self.aliases {
            if *lhs == old {
                *lhs = fresh;
            }
            match rhs {
                AliasRhs::Field { base, .. } => {
                    if *base == old {
                        *base = fresh;
                    }
                }
                AliasRhs::Elem { base, index } => {
                    if *base == old {
                        *base = fresh;
                    }
                    *index = subst_lin(index, old, &Lin::var(fresh));
                }
            }
        }
        let subst_facts = |facts: &mut Vec<PathFact>| {
            facts.retain_mut(|f| match f.path.subst(old, &to) {
                Some(p) => {
                    f.path = p;
                    true
                }
                None => false,
            });
        };
        subst_facts(&mut self.accesses);
        subst_facts(&mut self.checks);
    }

    /// Drops all past accesses and checks (the `[REL]` post-history),
    /// keeping boolean and alias facts.
    pub fn forget_accesses_and_checks(&mut self) {
        self.accesses.clear();
        self.checks.clear();
    }

    /// True if the access fact is covered by some past check in this
    /// history: a check of covering kind on a provably-equal designator
    /// whose extent subsumes the fact's.
    pub fn covered_by_check(&self, kb: &mut Kb, fact: &PathFact) -> bool {
        self.checks
            .iter()
            .any(|c| c.kind.covers(fact.kind) && path_subsumes(kb, &c.path, &fact.path))
    }

    /// True if the access fact is entailed by the *union* of past-access
    /// facts (same kind): used when validating loop invariants and branch
    /// merges.
    pub fn entails_access(&self, kb: &mut Kb, fact: &PathFact) -> bool {
        // A contradictory context (statically dead branch) entails
        // everything — this is what lets a check defer past a merge whose
        // other side is unreachable.
        if kb.is_inconsistent() {
            return true;
        }
        // Exact-path matches for fields; union coverage for ranges.
        match &fact.path {
            APath::Field { .. } => self
                .accesses
                .iter()
                .any(|a| a.kind == fact.kind && path_subsumes(kb, &a.path, &fact.path)),
            APath::Arr { base, range } => {
                let ranges: Vec<SymRange> = self
                    .accesses
                    .iter()
                    .filter_map(|a| match &a.path {
                        APath::Arr {
                            base: b2,
                            range: r2,
                        } if a.kind == fact.kind && kb.refs_equal(*base, *b2) => Some(r2.clone()),
                        _ => None,
                    })
                    .collect();
                bigfoot_entail::covered_by_union(kb, range, &ranges)
            }
        }
    }

    /// True if the boolean expression is entailed.
    pub fn entails_bool(&self, kb: &mut Kb, e: &Expr) -> bool {
        kb.entails(e)
    }

    /// Renders the history in the paper's notation (for golden tests).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for b in &self.bools {
            parts.push(pretty_expr(b));
        }
        for a in &self.accesses {
            parts.push(format!("{a}✁"));
        }
        for c in &self.checks {
            parts.push(format!("{c}√"));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

impl Anticipated {
    /// The empty anticipated set.
    pub fn new() -> Anticipated {
        Anticipated::default()
    }

    /// Adds a fact.
    pub fn add(&mut self, fact: PathFact) {
        if !self.facts.contains(&fact) {
            self.facts.push(fact);
        }
    }

    /// Removes facts mentioning `x`.
    pub fn kill_var(&mut self, x: Sym) {
        self.facts.retain(|f| !f.path.mentions(x));
    }

    /// Substitutes `x := e` (the `[ASSIGN]` backward rule), dropping facts
    /// that become ill-formed.
    pub fn subst(&mut self, x: Sym, e: &Expr) {
        self.facts.retain_mut(|f| match f.path.subst(x, e) {
            Some(p) => {
                f.path = p;
                true
            }
            None => false,
        });
    }

    /// True if an access fact is covered by some anticipated access: a
    /// future access whose (future) check will cover this one.
    pub fn covers(&self, kb: &mut Kb, fact: &PathFact) -> bool {
        self.facts
            .iter()
            .any(|a| a.kind.covers(fact.kind) && path_subsumes(kb, &a.path, &fact.path))
    }

    /// Renders the anticipated set in the paper's notation.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self.facts.iter().map(|f| format!("{f}✸")).collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// True if `big` covers every location of `small` (same designator and
/// extent subsumption).
pub fn path_subsumes(kb: &mut Kb, big: &APath, small: &APath) -> bool {
    match (big, small) {
        (
            APath::Field {
                base: b1,
                field: f1,
            },
            APath::Field {
                base: b2,
                field: f2,
            },
        ) => f1 == f2 && kb.refs_equal(*b1, *b2),
        (
            APath::Arr {
                base: b1,
                range: r1,
            },
            APath::Arr {
                base: b2,
                range: r2,
            },
        ) => kb.refs_equal(*b1, *b2) && bigfoot_entail::subsumes(kb, r1, r2),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(base: &str, f: &str) -> APath {
        APath::Field {
            base: Sym::intern(base),
            field: Sym::intern(f),
        }
    }

    fn arr(base: &str, lo: i64, hi_var: &str) -> APath {
        APath::Arr {
            base: Sym::intern(base),
            range: SymRange {
                lo: Lin::constant(lo),
                hi: Lin::var(Sym::intern(hi_var)),
                step: 1,
            },
        }
    }

    #[test]
    fn kill_var_removes_related_facts() {
        let mut h = History::new();
        h.add_access(PathFact {
            path: field("x", "f"),
            kind: AccessKind::Read,
        });
        h.add_access(PathFact {
            path: arr("a", 0, "i"),
            kind: AccessKind::Write,
        });
        h.kill_var(Sym::intern("i"));
        assert_eq!(h.accesses.len(), 1);
        h.kill_var(Sym::intern("x"));
        assert!(h.accesses.is_empty());
    }

    #[test]
    fn rename_rewrites_paths_and_bools() {
        let mut h = History::new();
        h.add_bool(Expr::Binop(
            bigfoot_bfj::Binop::Eq,
            Box::new(Expr::var("i")),
            Box::new(Expr::Int(0)),
        ));
        h.add_access(PathFact {
            path: arr("a", 0, "i"),
            kind: AccessKind::Write,
        });
        h.rename(Sym::intern("i"), Sym::intern("i'"));
        assert!(!h.mentions(Sym::intern("i")));
        assert!(h.mentions(Sym::intern("i'")));
        assert_eq!(h.render(), "{i' == 0, a[0..i'](w)✁}");
    }

    #[test]
    fn write_check_covers_read_access() {
        let mut h = History::new();
        h.add_check(PathFact {
            path: field("p", "x"),
            kind: AccessKind::Write,
        });
        let mut kb = h.kb();
        assert!(h.covered_by_check(
            &mut kb,
            &PathFact {
                path: field("p", "x"),
                kind: AccessKind::Read
            }
        ));
        // But a read check does not cover a write access.
        let mut h2 = History::new();
        h2.add_check(PathFact {
            path: field("p", "x"),
            kind: AccessKind::Read,
        });
        let mut kb2 = h2.kb();
        assert!(!h2.covered_by_check(
            &mut kb2,
            &PathFact {
                path: field("p", "x"),
                kind: AccessKind::Write
            }
        ));
    }

    #[test]
    fn alias_facts_equate_designators() {
        // x = b.f, y = b.f: a check on x.g covers an access to y.g.
        let mut h = History::new();
        let (x, y, b) = (Sym::intern("x"), Sym::intern("y"), Sym::intern("b"));
        h.add_alias(
            x,
            AliasRhs::Field {
                base: b,
                field: Sym::intern("f"),
            },
        );
        h.add_alias(
            y,
            AliasRhs::Field {
                base: b,
                field: Sym::intern("f"),
            },
        );
        h.add_check(PathFact {
            path: field("x", "g"),
            kind: AccessKind::Read,
        });
        let mut kb = h.kb();
        assert!(h.covered_by_check(
            &mut kb,
            &PathFact {
                path: field("y", "g"),
                kind: AccessKind::Read
            }
        ));
    }

    #[test]
    fn anticipated_substitution() {
        let mut a = Anticipated::new();
        a.add(PathFact {
            path: arr("a", 0, "i"),
            kind: AccessKind::Read,
        });
        // i := j + 1
        a.subst(Sym::intern("i"), &Expr::add(Expr::var("j"), Expr::Int(1)));
        assert_eq!(a.facts.len(), 1);
        assert!(a.facts[0].path.mentions(Sym::intern("j")));
    }

    #[test]
    fn union_entailment_of_accesses() {
        // {a[0..i]✁, a[i]✁, i' == i + 1} entails a[0..i']✁.
        let mut h = History::new();
        let i = Sym::intern("ui");
        let ip = Sym::intern("ui'");
        h.add_bool(Expr::Binop(
            bigfoot_bfj::Binop::Eq,
            Box::new(Expr::Var(ip)),
            Box::new(Expr::add(Expr::Var(i), Expr::Int(1))),
        ));
        h.add_bool(Expr::Binop(
            bigfoot_bfj::Binop::Ge,
            Box::new(Expr::Var(i)),
            Box::new(Expr::Int(0)),
        ));
        h.add_access(PathFact {
            path: APath::Arr {
                base: Sym::intern("a"),
                range: SymRange {
                    lo: Lin::constant(0),
                    hi: Lin::var(i),
                    step: 1,
                },
            },
            kind: AccessKind::Write,
        });
        h.add_access(PathFact {
            path: APath::Arr {
                base: Sym::intern("a"),
                range: SymRange::singleton(Lin::var(i)),
            },
            kind: AccessKind::Write,
        });
        let mut kb = h.kb();
        let query = PathFact {
            path: APath::Arr {
                base: Sym::intern("a"),
                range: SymRange {
                    lo: Lin::constant(0),
                    hi: Lin::var(ip),
                    step: 1,
                },
            },
            kind: AccessKind::Write,
        };
        assert!(h.entails_access(&mut kb, &query));
    }
}
