//! Interprocedural kill-set analysis (the `KillSetHistory` /
//! `KillSetAnticipated` functions of the `[CALL]` rule).
//!
//! For each method we compute whether it — directly or through calls —
//! performs acquire-like synchronization (`acq`, `join`), release-like
//! synchronization (`rel`, `fork`), or writes the heap. Call sites then
//! kill the corresponding history/anticipated facts. Since BFJ method
//! dispatch is by name on the receiver's dynamic class, a call site's
//! effects conservatively join the effects of every method with that name.

use bigfoot_bfj::{Program, Stmt, StmtKind, Sym};
use std::collections::{HashMap, HashSet};

/// The names of fields declared `volatile` in any class. BFJ is untyped,
/// so an access `y.f` is treated as volatile if *any* class declares `f`
/// volatile — conservative for check placement (more kills, never fewer).
pub fn volatile_fields(p: &Program) -> HashSet<Sym> {
    p.classes
        .iter()
        .flat_map(|c| c.volatiles.iter().copied())
        .collect()
}

/// The side effects of a method relevant to check placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// May perform an acquire-like operation (acq, join).
    pub acquires: bool,
    /// May perform a release-like operation (rel, fork).
    pub releases: bool,
    /// May write any heap location (kills alias facts).
    pub writes_heap: bool,
}

impl Effects {
    /// The join of two effect summaries.
    pub fn join(self, other: Effects) -> Effects {
        Effects {
            acquires: self.acquires || other.acquires,
            releases: self.releases || other.releases,
            writes_heap: self.writes_heap || other.writes_heap,
        }
    }

    /// Effects that kill nothing.
    pub fn pure_effects() -> Effects {
        Effects::default()
    }

    /// True if a call with these effects requires no check placement.
    pub fn is_sync_free(&self) -> bool {
        !self.acquires && !self.releases
    }
}

/// Method-effect summaries for a whole program.
#[derive(Debug, Clone, Default)]
pub struct KillSets {
    by_method: HashMap<Sym, Effects>,
}

/// The scan result for one method body: its *direct* effects (before
/// call propagation) and the names it calls. Cached per body
/// fingerprint by the incremental driver, so warm runs rescan only
/// edited bodies and rerun just the (cheap) name-level fixpoint — the
/// "recompute the cross-method fixpoint only over the dirtied
/// dependency cone" half of incremental re-analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KillSummary {
    /// Effects the body performs itself.
    pub direct: Effects,
    /// Names of methods called (duplicates preserved; harmless to join).
    pub callees: Vec<Sym>,
}

/// Scans one method body into a [`KillSummary`]. `volatiles` must be the
/// program-wide volatile field set (a volatile read is acquire-like).
pub fn scan_method_body(body: &[Stmt], volatiles: &HashSet<Sym>) -> KillSummary {
    let mut summary = KillSummary::default();
    scan_block(body, &mut summary.direct, &mut summary.callees, volatiles);
    summary
}

impl KillSets {
    /// Computes effect summaries by fixed point over the name-based call
    /// graph.
    pub fn compute(program: &Program) -> KillSets {
        let volatiles = volatile_fields(program);
        KillSets::from_summaries(
            program
                .methods()
                .map(|(_, m)| (m.name, scan_method_body(&m.body.stmts, &volatiles))),
        )
    }

    /// Builds kill sets from per-method scan summaries (joined across
    /// classes sharing a name) by running the name-level fixed point.
    pub fn from_summaries(summaries: impl IntoIterator<Item = (Sym, KillSummary)>) -> KillSets {
        let mut direct: HashMap<Sym, Effects> = HashMap::new();
        let mut calls: HashMap<Sym, Vec<Sym>> = HashMap::new();
        for (name, summary) in summaries {
            let entry = direct.entry(name).or_default();
            *entry = entry.join(summary.direct);
            calls.entry(name).or_default().extend(summary.callees);
        }
        // Fixed point.
        let mut by_method = direct.clone();
        loop {
            let mut changed = false;
            for (name, callees) in &calls {
                let mut eff = by_method[name];
                for callee in callees {
                    if let Some(ce) = by_method.get(callee) {
                        eff = eff.join(*ce);
                    }
                }
                if eff != by_method[name] {
                    by_method.insert(*name, eff);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        KillSets { by_method }
    }

    /// The effects of calling method `name` (unknown names are assumed to
    /// do everything, conservatively).
    pub fn effects(&self, name: Sym) -> Effects {
        self.by_method.get(&name).copied().unwrap_or(Effects {
            acquires: true,
            releases: true,
            writes_heap: true,
        })
    }
}

fn scan_block(stmts: &[Stmt], eff: &mut Effects, callees: &mut Vec<Sym>, volatiles: &HashSet<Sym>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Acquire { .. } | StmtKind::Join { .. } => eff.acquires = true,
            StmtKind::Release { .. } => eff.releases = true,
            StmtKind::Wait { .. } => {
                eff.acquires = true;
                eff.releases = true;
            }
            StmtKind::Notify { .. } => {}
            StmtKind::ReadField { field, .. } if volatiles.contains(field) => {
                eff.acquires = true;
            }
            StmtKind::Fork { meth, .. } => {
                eff.releases = true;
                // The forked body runs concurrently; its own sync does not
                // kill the parent's facts, but its heap writes race-freely
                // invalidate alias assumptions only via the parent's next
                // acquire — so only the fork edge itself matters here.
                // However the spawned method's heap writes are visible to
                // the parent after a join, which is an acquire; aliases die
                // there anyway. We still record the callee for
                // writes-heap propagation of the *call* form below.
                let _ = meth;
            }
            StmtKind::Call { meth, .. } => callees.push(*meth),
            StmtKind::WriteField { field, .. } => {
                eff.writes_heap = true;
                if volatiles.contains(field) {
                    eff.releases = true;
                }
            }
            StmtKind::WriteArr { .. } => eff.writes_heap = true,
            StmtKind::If { then_b, else_b, .. } => {
                scan_block(&then_b.stmts, eff, callees, volatiles);
                scan_block(&else_b.stmts, eff, callees, volatiles);
            }
            StmtKind::Loop { head, tail, .. } => {
                scan_block(&head.stmts, eff, callees, volatiles);
                scan_block(&tail.stmts, eff, callees, volatiles);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    #[test]
    fn direct_and_transitive_effects() {
        let p = parse_program(
            "class C {
                 meth locks(l) { acq(l); rel(l); return 0; }
                 meth viaCall(l) { r = this.locks(l); return 0; }
                 meth pure(x) { return x + 1; }
                 meth writes(o) { o.f = 1; return 0; }
             }
             class D { field f; }
             main { skip; }",
        )
        .unwrap();
        let ks = KillSets::compute(&p);
        let locks = ks.effects(Sym::intern("locks"));
        assert!(locks.acquires && locks.releases);
        let via = ks.effects(Sym::intern("viaCall"));
        assert!(via.acquires && via.releases);
        let pure = ks.effects(Sym::intern("pure"));
        assert!(pure.is_sync_free() && !pure.writes_heap);
        let writes = ks.effects(Sym::intern("writes"));
        assert!(writes.is_sync_free() && writes.writes_heap);
    }

    #[test]
    fn unknown_methods_are_worst_case() {
        let p = parse_program("main { skip; }").unwrap();
        let ks = KillSets::compute(&p);
        let e = ks.effects(Sym::intern("nosuch"));
        assert!(e.acquires && e.releases && e.writes_heap);
    }

    #[test]
    fn fork_is_release_like_and_join_acquire_like() {
        let p = parse_program(
            "class W {
                 meth run() { return 0; }
                 meth spawner() { fork t = this.run(); return 0; }
                 meth waiter(t) { join(t); return 0; }
             }
             main { skip; }",
        )
        .unwrap();
        let ks = KillSets::compute(&p);
        assert!(ks.effects(Sym::intern("spawner")).releases);
        assert!(!ks.effects(Sym::intern("spawner")).acquires);
        assert!(ks.effects(Sym::intern("waiter")).acquires);
    }

    #[test]
    fn mutual_recursion_converges() {
        let p = parse_program(
            "class C {
                 meth a(n) { r = this.b(n); return r; }
                 meth b(n) { r = this.a(n); acq(n); rel(n); return r; }
             }
             main { skip; }",
        )
        .unwrap();
        let ks = KillSets::compute(&p);
        assert!(ks.effects(Sym::intern("a")).acquires);
        assert!(ks.effects(Sym::intern("b")).acquires);
    }
}
