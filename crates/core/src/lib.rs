//! B IG F OOT: static check placement for dynamic race detection.
//!
//! A from-scratch Rust reproduction of Rhodes, Flanagan & Freund (PLDI
//! 2017). This crate is S TATIC BF — the static analysis that decides
//! *where* race checks go:
//!
//! * analysis contexts `H • A` of history and anticipated facts (§3.2),
//! * the check placement rules of Fig. 7, implemented as a forward
//!   history pass and a backward anticipation pass over BFJ method bodies,
//! * loop-invariant inference by Cartesian predicate abstraction (§5),
//! * post-analysis path coalescing and static field-proxy compression
//!   (§4),
//! * the `[CALL]` kill-set interprocedural analysis,
//! * the RedCard baseline instrumenter and a naive per-access
//!   instrumenter for comparisons.
//!
//! The dynamic side (DynamicBF and the baseline detectors) lives in
//! `bigfoot-detectors`; this crate's [`instrument`] output feeds it.
//!
//! # End to end
//!
//! ```
//! use bigfoot_bfj::{parse_program, Interp, SchedPolicy};
//! use bigfoot_detectors::Detector;
//!
//! let program = parse_program(
//!     "class Point {
//!          field x; field y; field z;
//!          meth move(dx, dy, dz) {
//!              this.x = this.x + dx;
//!              this.y = this.y + dy;
//!              this.z = this.z + dz;
//!              return 0;
//!          }
//!      }
//!      main {
//!          p = new Point;
//!          r = p.move(1, 2, 3);
//!      }",
//! )?;
//! let inst = bigfoot::instrument(&program);
//! let mut detector = Detector::bigfoot(inst.proxies.clone());
//! Interp::new(&inst.program, SchedPolicy::default())
//!     .run(&mut detector)?;
//! let stats = detector.finish();
//! assert!(!stats.has_races());
//! // Six accesses, one coalesced check.
//! assert_eq!(stats.accesses(), 6);
//! assert_eq!(stats.checks, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod backward;
mod cache;
mod cleanup;
mod coalesce;
mod facts;
mod forward;
mod killset;
mod pipeline;
mod proxy;
mod readset;
mod redcard;
mod rename;

pub use backward::{anticipate_body, anticipate_body_view, ATables};
pub use cache::{CacheEntry, CacheError, PlacementCache, CACHE_FILE, CACHE_MAGIC, CACHE_VERSION};
pub use cleanup::{cleanup_body, cleanup_program};
pub use coalesce::{emit_check, emit_check_opts};
pub use facts::{path_subsumes, APath, Anticipated, History, PathFact};
pub use forward::{
    forward_pass, forward_pass_opts, forward_pass_view, ForwardTables, PlacementOptions,
};
pub use killset::{scan_method_body, volatile_fields, Effects, KillSets, KillSummary};
pub use pipeline::{
    config_fingerprint, count_checks, instrument, instrument_incremental, instrument_with,
    naive_instrument, AnalysisStats, IncrementalStats, InstrumentOptions, Instrumented,
};
pub use proxy::{field_proxies, grouping_from_sets};
pub use readset::{FactView, ReadSet, READSET_VERSION};
pub use redcard::redcard_instrument;
pub use rename::freshen_body;

pub(crate) use forward::eq_fact as forward_eq_fact;
