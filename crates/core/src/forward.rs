//! The forward check-placement pass (Fig. 7), including loop-invariant
//! inference by Cartesian predicate abstraction (§5 "Loop Invariants").
//!
//! The engine is run twice per method: once without anticipated
//! information to record the history tables the backward pass needs
//! (`h_pre`), and once with the backward pass's anticipated tables to
//! produce the final instrumented body. History facts (booleans, aliases,
//! past accesses) evolve identically in both runs — placed checks only add
//! `√` facts, which nothing else reads — so the recorded tables stay
//! valid.
//!
//! Checks are emitted only where the rules demand them: before
//! acquire-like and release-like operations (including calls whose kill
//! sets synchronize), at the ends of conditional branches for accesses the
//! merge forgets, before loops and at loop back edges for accesses the
//! invariant forgets, and at method end.

use crate::backward::ATables;
use crate::facts::{APath, Anticipated, History, PathFact};
use crate::killset::KillSets;
use crate::readset::FactView;
use bigfoot_bfj::{AccessKind, Binop, Block, Expr, Stmt, StmtId, StmtKind, Sym, Unop};
use bigfoot_entail::{linearize, AliasRhs, Lin, SymRange};
use std::collections::{HashMap, HashSet};

/// Maximum iterations of the loop-invariant greatest fixed point.
const MAX_INV_ITERS: usize = 4;

/// Results of one forward run over a method body.
#[derive(Debug, Default)]
pub struct ForwardTables {
    /// History before each statement (bool/alias/access facts; `√` facts
    /// included on the placement run).
    pub h_pre: HashMap<StmtId, History>,
    /// Inferred loop invariant per loop statement.
    pub loop_inv: HashMap<StmtId, History>,
}

/// Tunable parts of the placement analysis, for the ablation study. The
/// defaults are the full BigFoot configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlacementOptions {
    /// §4 path coalescing in emitted checks.
    pub coalescing: bool,
    /// Loop-invariant inference (disabling leaves checks inside loops).
    pub loop_invariants: bool,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        PlacementOptions {
            coalescing: true,
            loop_invariants: true,
        }
    }
}

/// Runs the forward pass. With `at = None` this is the recording pre-pass;
/// with anticipated tables it is the placement pass. Returns the rewritten
/// body and the tables.
pub fn forward_pass(
    body: &Block,
    kills: &KillSets,
    volatiles: &HashSet<Sym>,
    at: Option<&ATables>,
) -> (Block, ForwardTables) {
    forward_pass_opts(body, kills, volatiles, at, PlacementOptions::default())
}

/// [`forward_pass`] with explicit [`PlacementOptions`].
pub fn forward_pass_opts(
    body: &Block,
    kills: &KillSets,
    volatiles: &HashSet<Sym>,
    at: Option<&ATables>,
    opts: PlacementOptions,
) -> (Block, ForwardTables) {
    forward_pass_view(body, FactView::new(kills, volatiles), at, opts)
}

/// [`forward_pass_opts`] over a [`FactView`], which may log every
/// cross-method fact query into a read-set for incremental re-analysis.
pub fn forward_pass_view(
    body: &Block,
    facts: FactView<'_>,
    at: Option<&ATables>,
    opts: PlacementOptions,
) -> (Block, ForwardTables) {
    let mut f = Fwd {
        facts,
        at,
        opts,
        tables: ForwardTables::default(),
    };
    let (mut stmts, mut h) = f.block(&body.stmts, History::new());
    // Method end: check everything still pending ([STMT]).
    let end = f.pending(&h, None, None);
    f.emit(&mut h, &end, &mut stmts);
    (Block { stmts }, f.tables)
}

struct Fwd<'a> {
    facts: FactView<'a>,
    at: Option<&'a ATables>,
    opts: PlacementOptions,
    tables: ForwardTables,
}

fn negate(e: &Expr) -> Expr {
    Expr::Unop(Unop::Not, Box::new(e.clone()))
}

/// The equality fact `x == e` recorded at assignments.
pub(crate) fn eq_fact(x: Sym, e: &Expr) -> Expr {
    Expr::Binop(Binop::Eq, Box::new(Expr::Var(x)), Box::new(e.clone()))
}

impl Fwd<'_> {
    fn a_post(&self, id: StmtId) -> Anticipated {
        self.at
            .and_then(|t| t.post.get(&id))
            .cloned()
            .unwrap_or_default()
    }

    fn a_loop_head(&self, id: StmtId) -> Anticipated {
        self.at
            .and_then(|t| t.loop_head.get(&id))
            .cloned()
            .unwrap_or_default()
    }

    /// Past accesses of `h` that still need a check here: not entailed by
    /// `against` (a merge/invariant context), not covered by a past check,
    /// and not excused by an anticipated future access.
    fn pending(
        &self,
        h: &History,
        against: Option<&History>,
        excuse: Option<&Anticipated>,
    ) -> Vec<PathFact> {
        let mut kb = h.kb();
        let mut out = Vec::new();
        for f in &h.accesses {
            if let Some(m) = against {
                if m.entails_access(&mut kb, f) {
                    continue;
                }
            }
            if h.covered_by_check(&mut kb, f) {
                continue;
            }
            if let Some(a) = excuse {
                if a.covers(&mut kb, f) {
                    continue;
                }
            }
            out.push(f.clone());
        }
        out
    }

    /// Emits a coalesced check for `facts` (if any) and records them as
    /// checked in `h`.
    fn emit(&self, h: &mut History, facts: &[PathFact], out: &mut Vec<Stmt>) {
        if facts.is_empty() {
            return;
        }
        let mut kb = h.kb();
        if let Some(stmt) = crate::coalesce::emit_check_opts(&mut kb, facts, self.opts.coalescing) {
            out.push(stmt);
        }
        for f in facts {
            h.add_check(f.clone());
        }
    }

    /// Freshness fallback: if `x` is still mentioned by the history
    /// (should not happen after the renaming pre-pass), check and drop the
    /// affected access facts so no pending check is lost.
    fn ensure_fresh(&self, h: &mut History, x: Sym, out: &mut Vec<Stmt>) {
        if !h.mentions(x) {
            return;
        }
        let affected: Vec<PathFact> = {
            let mut kb = h.kb();
            h.accesses
                .iter()
                .filter(|f| f.path.mentions(x) && !h.covered_by_check(&mut kb, f))
                .cloned()
                .collect()
        };
        self.emit(h, &affected, out);
        h.kill_var(x);
    }

    fn block(&mut self, stmts: &[Stmt], mut h: History) -> (Vec<Stmt>, History) {
        let mut out = Vec::new();
        for s in stmts {
            self.tables.h_pre.insert(s.id, h.clone());
            h = self.stmt(s, h, &mut out);
        }
        (out, h)
    }

    fn stmt(&mut self, s: &Stmt, mut h: History, out: &mut Vec<Stmt>) -> History {
        match &s.kind {
            StmtKind::Skip => {
                out.push(s.clone());
                h
            }
            StmtKind::Assign { x, e } => {
                self.ensure_fresh(&mut h, *x, out);
                if !e.mentions(*x) {
                    h.add_bool(eq_fact(*x, e));
                }
                out.push(s.clone());
                h
            }
            StmtKind::Rename { fresh, old } => {
                self.ensure_fresh(&mut h, *fresh, out);
                h.rename(*old, *fresh);
                out.push(s.clone());
                h
            }
            StmtKind::New { x, .. } => {
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                out.push(s.clone());
                h
            }
            StmtKind::NewArray { x, len } => {
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                if !len.mentions(*x) {
                    h.add_bool(Expr::Binop(
                        Binop::Eq,
                        Box::new(Expr::Len(*x)),
                        Box::new(len.clone()),
                    ));
                }
                out.push(s.clone());
                h
            }
            StmtKind::ReadField { x, obj, field } => {
                if self.facts.is_volatile(*field) {
                    // Volatile read: acquire-like synchronization; the
                    // access itself is not race-checked (§5).
                    let facts = self.pending(&h, None, None);
                    self.emit(&mut h, &facts, out);
                    h.aliases.clear();
                    self.ensure_fresh(&mut h, *x, out);
                    h.kill_var(*x);
                    out.push(s.clone());
                    return h;
                }
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                h.add_access(PathFact {
                    path: APath::Field {
                        base: *obj,
                        field: *field,
                    },
                    kind: AccessKind::Read,
                });
                h.add_alias(
                    *x,
                    AliasRhs::Field {
                        base: *obj,
                        field: *field,
                    },
                );
                out.push(s.clone());
                h
            }
            StmtKind::WriteField { obj, field, src } => {
                if self.facts.is_volatile(*field) {
                    // Volatile write: release-like synchronization.
                    let a = self.a_post(s.id);
                    let facts = self.pending(&h, None, Some(&a));
                    self.emit(&mut h, &facts, out);
                    h.forget_accesses_and_checks();
                    let fld = *field;
                    h.aliases.retain(
                        |(_, rhs)| !matches!(rhs, AliasRhs::Field { field, .. } if *field == fld),
                    );
                    out.push(s.clone());
                    return h;
                }
                h.add_access(PathFact {
                    path: APath::Field {
                        base: *obj,
                        field: *field,
                    },
                    kind: AccessKind::Write,
                });
                // A same-thread write invalidates alias facts loaded from
                // this field (any base may alias `obj`).
                let fld = *field;
                h.aliases.retain(
                    |(_, rhs)| !matches!(rhs, AliasRhs::Field { field, .. } if *field == fld),
                );
                h.add_alias(
                    *src,
                    AliasRhs::Field {
                        base: *obj,
                        field: *field,
                    },
                );
                out.push(s.clone());
                h
            }
            StmtKind::ReadArr { x, arr, idx } => {
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                out.push(s.clone());
                match linearize(idx) {
                    Some(l) => {
                        h.add_access(PathFact {
                            path: APath::Arr {
                                base: *arr,
                                range: SymRange::singleton(l.clone()),
                            },
                            kind: AccessKind::Read,
                        });
                        h.add_alias(
                            *x,
                            AliasRhs::Elem {
                                base: *arr,
                                index: l,
                            },
                        );
                    }
                    None => {
                        // Untrackable index: check immediately.
                        self.check_here(*arr, idx, AccessKind::Read, out);
                    }
                }
                h
            }
            StmtKind::WriteArr { arr, idx, src } => {
                out.push(s.clone());
                // Any array write invalidates element alias facts.
                h.aliases
                    .retain(|(_, rhs)| !matches!(rhs, AliasRhs::Elem { .. }));
                match linearize(idx) {
                    Some(l) => {
                        h.add_access(PathFact {
                            path: APath::Arr {
                                base: *arr,
                                range: SymRange::singleton(l.clone()),
                            },
                            kind: AccessKind::Write,
                        });
                        h.add_alias(
                            *src,
                            AliasRhs::Elem {
                                base: *arr,
                                index: l,
                            },
                        );
                    }
                    None => {
                        self.check_here(*arr, idx, AccessKind::Write, out);
                    }
                }
                h
            }
            StmtKind::Acquire { .. } | StmtKind::Join { .. } => {
                // [ACQ]: pre-anticipated is empty; every pending access
                // must be checked before the acquire. Accesses stay
                // pending afterwards (their legitimate range extends to
                // the next release); alias facts die (other threads'
                // writes become visible).
                let facts = self.pending(&h, None, None);
                self.emit(&mut h, &facts, out);
                h.aliases.clear();
                out.push(s.clone());
                h
            }
            StmtKind::Release { .. } => {
                // [REL]: anticipated accesses excuse pending checks; all
                // access and check facts are forgotten afterwards.
                let a = self.a_post(s.id);
                let facts = self.pending(&h, None, Some(&a));
                self.emit(&mut h, &facts, out);
                h.forget_accesses_and_checks();
                out.push(s.clone());
                h
            }
            StmtKind::Fork { x, .. } => {
                let a = self.a_post(s.id);
                let facts = self.pending(&h, None, Some(&a));
                self.emit(&mut h, &facts, out);
                h.forget_accesses_and_checks();
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                out.push(s.clone());
                h
            }
            StmtKind::Call { x, meth, .. } => {
                let eff = self.facts.effects(*meth);
                if eff.acquires {
                    let facts = self.pending(&h, None, None);
                    self.emit(&mut h, &facts, out);
                } else if eff.releases {
                    let a = self.a_post(s.id);
                    let facts = self.pending(&h, None, Some(&a));
                    self.emit(&mut h, &facts, out);
                }
                if eff.releases {
                    h.forget_accesses_and_checks();
                }
                if eff.acquires || eff.writes_heap {
                    h.aliases.clear();
                }
                self.ensure_fresh(&mut h, *x, out);
                h.kill_var(*x);
                out.push(s.clone());
                h
            }
            StmtKind::Wait { .. } => {
                // Both a release and an acquire: every pending access must
                // be checked here, and nothing survives.
                let facts = self.pending(&h, None, None);
                self.emit(&mut h, &facts, out);
                h.forget_accesses_and_checks();
                h.aliases.clear();
                out.push(s.clone());
                h
            }
            StmtKind::Notify { .. } => {
                // The caller already holds the monitor; the wakeup edge
                // flows through the monitor's release, so no checks move.
                out.push(s.clone());
                h
            }
            StmtKind::Check { paths } => {
                // Pre-existing (hand-written) checks: record their √ facts.
                for cp in paths {
                    if let Some(aps) = APath::from_ast(&cp.path) {
                        for p in aps {
                            h.add_check(PathFact {
                                path: p,
                                kind: cp.kind,
                            });
                        }
                    }
                }
                out.push(s.clone());
                h
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let mut h1 = h.clone();
                h1.add_bool(cond.clone());
                let mut h2 = h;
                h2.add_bool(negate(cond));
                let (mut rb1, mut h1p) = self.block(&then_b.stmts, h1);
                let (mut rb2, mut h2p) = self.block(&else_b.stmts, h2);
                let a_out = self.a_post(s.id);
                // Accesses surviving the merge: entailed on both sides.
                let merged_acc = merge_accesses(&h1p, &h2p);
                let merged_hist = History {
                    accesses: merged_acc,
                    ..History::new()
                };
                // Branch-end checks for forgotten accesses ([IF]).
                let c1 = self.pending(&h1p, Some(&merged_hist), Some(&a_out));
                self.emit(&mut h1p, &c1, &mut rb1);
                let c2 = self.pending(&h2p, Some(&merged_hist), Some(&a_out));
                self.emit(&mut h2p, &c2, &mut rb2);
                let hout = merge(&h1p, &h2p, merged_hist.accesses);
                out.push(Stmt::new(StmtKind::If {
                    cond: cond.clone(),
                    then_b: Block { stmts: rb1 },
                    else_b: Block { stmts: rb2 },
                }));
                hout
            }
            StmtKind::Loop { head, exit, tail } => {
                let inv = self.infer_invariant(&h, head, exit, tail);
                self.tables.loop_inv.insert(s.id, inv.clone());
                let a_head = self.a_loop_head(s.id);
                // [LOOP] Cin: accesses of the entry context the invariant
                // forgets.
                let cin = self.pending(&h, Some(&inv), Some(&a_head));
                self.emit(&mut h, &cin, out);
                let (rhead, hj) = self.block(&head.stmts, inv.clone());
                let mut hout = hj.clone();
                hout.add_bool(exit.clone());
                let mut hback_pre = hj;
                hback_pre.add_bool(negate(exit));
                let (mut rtail, mut hback) = self.block(&tail.stmts, hback_pre);
                // [LOOP] Cback: accesses the back edge forgets.
                let cback = self.pending(&hback, Some(&inv), Some(&a_head));
                self.emit(&mut hback, &cback, &mut rtail);
                out.push(Stmt::new(StmtKind::Loop {
                    head: Block { stmts: rhead },
                    exit: exit.clone(),
                    tail: Block { stmts: rtail },
                }));
                hout
            }
        }
    }

    /// Emits an immediate singleton check (for untrackable array indices).
    fn check_here(&self, arr: Sym, idx: &Expr, kind: AccessKind, out: &mut Vec<Stmt>) {
        out.push(Stmt::new(StmtKind::Check {
            paths: vec![bigfoot_bfj::CheckPath {
                kind,
                path: bigfoot_bfj::Path::index(arr, idx.clone()),
            }],
        }));
    }

    // ---------------- loop invariants ----------------

    /// Infers the loop invariant history by Cartesian predicate
    /// abstraction: candidate facts from induction-variable analysis plus
    /// loop-invariant entry facts, pruned by a greatest fixed point over
    /// the loop body.
    fn infer_invariant(
        &mut self,
        h_in: &History,
        head: &Block,
        exit: &Expr,
        tail: &Block,
    ) -> History {
        let assigned = assigned_vars(head, tail);
        if !self.opts.loop_invariants {
            // Ablation: keep only loop-invariant boolean facts; no access
            // facts survive the loop head, so loop-body checks stay inside
            // the loop (no motion).
            let mut inv = History::new();
            for b in &h_in.bools {
                if !assigned.iter().any(|x| b.mentions(*x)) {
                    inv.add_bool(b.clone());
                }
            }
            return inv;
        }
        let body_eff = body_effects(head, tail, self.facts);
        let mut inv = History::new();
        // Loop-invariant entry facts.
        for b in &h_in.bools {
            if !assigned.iter().any(|x| b.mentions(*x)) {
                inv.add_bool(b.clone());
            }
        }
        if !body_eff.kills_aliases {
            for (x, rhs) in &h_in.aliases {
                let stable = !assigned.contains(x)
                    && match rhs {
                        AliasRhs::Field { base, field } => {
                            !assigned.contains(base) && !body_eff.written_fields.contains(field)
                        }
                        AliasRhs::Elem { base, .. } => {
                            !assigned.contains(base) && !body_eff.writes_arrays
                        }
                    };
                if stable {
                    inv.add_alias(*x, rhs.clone());
                }
            }
        }
        if !body_eff.releases {
            for f in &h_in.accesses {
                if !assigned.iter().any(|x| f.path.mentions(*x)) {
                    inv.add_access(f.clone());
                }
            }
        }
        // Induction-driven candidates.
        for ind in detect_induction(head, tail) {
            let Some(e0) = initial_value(h_in, ind.var, &assigned) else {
                continue;
            };
            let c = ind.step;
            // Bound and divisibility facts.
            let e0x = e0.to_expr();
            if c > 0 {
                inv.add_bool(Expr::Binop(
                    Binop::Ge,
                    Box::new(Expr::Var(ind.var)),
                    Box::new(e0x.clone()),
                ));
            } else {
                inv.add_bool(Expr::Binop(
                    Binop::Le,
                    Box::new(Expr::Var(ind.var)),
                    Box::new(e0x.clone()),
                ));
            }
            if c.abs() > 1 {
                inv.add_bool(Expr::Binop(
                    Binop::Eq,
                    Box::new(Expr::Binop(
                        Binop::Mod,
                        Box::new(Expr::sub(Expr::Var(ind.var), e0x.clone())),
                        Box::new(Expr::Int(c.abs())),
                    )),
                    Box::new(Expr::Int(0)),
                ));
            }
            // Range candidates from unconditional array accesses indexed
            // by the induction variable.
            for acc in unconditional_accesses(head, tail) {
                let APath::Arr { base, range } = &acc.path else {
                    continue;
                };
                if assigned.contains(base) || !range.is_singleton_shape() {
                    continue;
                }
                let f = &range.lo;
                let k = f
                    .terms
                    .get(&bigfoot_entail::Atom::Var(ind.var))
                    .copied()
                    .unwrap_or(0);
                // Other atoms of the index must be loop-invariant. Opaque
                // (non-linear) atoms such as `i * n` qualify when none of
                // their variables is assigned in the loop — this is what
                // lets row sweeps over flattened matrices (`m[i*n + j]`)
                // coalesce per row.
                let others_stable = f.atoms().all(|a| match a {
                    bigfoot_entail::Atom::Var(v) => v == ind.var || !assigned.contains(&v),
                    bigfoot_entail::Atom::Len(v) => !assigned.contains(&v),
                    bigfoot_entail::Atom::Opaque(s) => match bigfoot_bfj::parse_expr(s.as_str()) {
                        Ok(e) => {
                            let mut vs = Vec::new();
                            e.vars(&mut vs);
                            vs.iter().all(|v| *v != ind.var && !assigned.contains(v))
                        }
                        Err(_) => false,
                    },
                });
                if k == 0 || !others_stable {
                    continue;
                }
                let s = k * c; // index stride per iteration
                let f0 = crate::facts::subst_lin(f, ind.var, &e0);
                let range = if s > 0 {
                    SymRange {
                        lo: f0,
                        hi: f.clone(),
                        step: s,
                    }
                } else {
                    SymRange {
                        lo: f.sub(&Lin::constant(s)),
                        hi: f0.offset(1),
                        step: -s,
                    }
                };
                inv.add_access(PathFact {
                    path: APath::Arr { base: *base, range },
                    kind: acc.kind,
                });
            }
        }
        // Greatest fixed point: prune candidates until entry and back edge
        // both establish them.
        bigfoot_obs::count!("static.loop_invariant.loops");
        for _ in 0..MAX_INV_ITERS {
            bigfoot_obs::count!("static.loop_invariant.iterations");
            let before = (inv.bools.len(), inv.aliases.len(), inv.accesses.len());
            // Entry.
            prune_by(&mut inv, h_in);
            // Back edge: simulate the body from the candidate invariant.
            let (_, hj) = self.block(&head.stmts, inv.clone());
            let mut hb = hj;
            hb.add_bool(negate(exit));
            let (_, hback) = self.block(&tail.stmts, hb);
            prune_by(&mut inv, &hback);
            if before == (inv.bools.len(), inv.aliases.len(), inv.accesses.len()) {
                break;
            }
        }
        inv
    }
}

/// Removes candidate facts of `inv` not entailed by `ctx`.
fn prune_by(inv: &mut History, ctx: &History) {
    let mut kb = ctx.kb();
    inv.bools.retain(|b| kb.entails(b));
    inv.aliases.retain(|al| ctx.aliases.contains(al));
    let accesses = std::mem::take(&mut inv.accesses);
    inv.accesses = accesses
        .into_iter()
        .filter(|f| ctx.entails_access(&mut kb, f))
        .collect();
}

/// Access facts surviving a branch merge: entailed on both sides.
fn merge_accesses(h1: &History, h2: &History) -> Vec<PathFact> {
    let mut kb1 = h1.kb();
    let mut kb2 = h2.kb();
    let mut out: Vec<PathFact> = Vec::new();
    for f in h1.accesses.iter().chain(h2.accesses.iter()) {
        if out.contains(f) {
            continue;
        }
        if h1.entails_access(&mut kb1, f) && h2.entails_access(&mut kb2, f) {
            out.push(f.clone());
        }
    }
    out
}

/// Full history merge at a branch join (`⊓`).
fn merge(h1: &History, h2: &History, merged_accesses: Vec<PathFact>) -> History {
    let mut kb1 = h1.kb();
    let mut kb2 = h2.kb();
    let mut out = History::new();
    for b in h1.bools.iter().chain(h2.bools.iter()) {
        if !out.bools.contains(b) && kb1.entails(b) && kb2.entails(b) {
            out.add_bool(b.clone());
        }
    }
    for al in &h1.aliases {
        if h2.aliases.contains(al) {
            out.add_alias(al.0, al.1.clone());
        }
    }
    out.accesses = merged_accesses;
    for c in h1.checks.iter().chain(h2.checks.iter()) {
        if !out.checks.contains(c)
            && h1.covered_by_check(&mut kb1, c)
            && h2.covered_by_check(&mut kb2, c)
        {
            out.add_check(c.clone());
        }
    }
    out
}

// ---------------- syntactic body scans ----------------

fn assigned_vars(head: &Block, tail: &Block) -> HashSet<Sym> {
    let mut out = HashSet::new();
    fn walk(b: &Block, out: &mut HashSet<Sym>) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Assign { x, .. }
                | StmtKind::New { x, .. }
                | StmtKind::NewArray { x, .. }
                | StmtKind::ReadField { x, .. }
                | StmtKind::ReadArr { x, .. }
                | StmtKind::Call { x, .. }
                | StmtKind::Fork { x, .. } => {
                    out.insert(*x);
                }
                StmtKind::Rename { fresh, .. } => {
                    out.insert(*fresh);
                }
                _ => {}
            }
            match &s.kind {
                StmtKind::If { then_b, else_b, .. } => {
                    walk(then_b, out);
                    walk(else_b, out);
                }
                StmtKind::Loop { head, tail, .. } => {
                    walk(head, out);
                    walk(tail, out);
                }
                _ => {}
            }
        }
    }
    walk(head, &mut out);
    walk(tail, &mut out);
    out
}

/// Effects of a loop body relevant to invariant candidates.
struct BodyEffects {
    releases: bool,
    kills_aliases: bool,
    writes_arrays: bool,
    written_fields: HashSet<Sym>,
}

fn body_effects(head: &Block, tail: &Block, facts: FactView<'_>) -> BodyEffects {
    let mut eff = BodyEffects {
        releases: false,
        kills_aliases: false,
        writes_arrays: false,
        written_fields: HashSet::new(),
    };
    fn walk(b: &Block, eff: &mut BodyEffects, facts: FactView<'_>) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Release { .. } | StmtKind::Fork { .. } => eff.releases = true,
                StmtKind::Acquire { .. } | StmtKind::Join { .. } => eff.kills_aliases = true,
                StmtKind::Wait { .. } => {
                    eff.releases = true;
                    eff.kills_aliases = true;
                }
                StmtKind::WriteArr { .. } => eff.writes_arrays = true,
                StmtKind::WriteField { field, .. } => {
                    eff.written_fields.insert(*field);
                }
                StmtKind::Call { meth, .. } => {
                    let e = facts.effects(*meth);
                    if e.releases {
                        eff.releases = true;
                    }
                    if e.acquires || e.writes_heap {
                        eff.kills_aliases = true;
                    }
                    if e.writes_heap {
                        eff.writes_arrays = true;
                    }
                }
                StmtKind::If { then_b, else_b, .. } => {
                    walk(then_b, eff, facts);
                    walk(else_b, eff, facts);
                }
                StmtKind::Loop { head, tail, .. } => {
                    walk(head, eff, facts);
                    walk(tail, eff, facts);
                }
                _ => {}
            }
        }
    }
    walk(head, &mut eff, facts);
    walk(tail, &mut eff, facts);
    eff
}

/// A detected linear induction variable: `var = var' + step` once per
/// iteration, at the top level of the body.
struct Induction {
    var: Sym,
    step: i64,
}

fn detect_induction(head: &Block, tail: &Block) -> Vec<Induction> {
    let assigned = assigned_vars(head, tail);
    let mut assignment_counts: HashMap<Sym, usize> = HashMap::new();
    fn count(b: &Block, m: &mut HashMap<Sym, usize>) {
        for s in &b.stmts {
            if let StmtKind::Assign { x, .. } = &s.kind {
                *m.entry(*x).or_default() += 1;
            }
            match &s.kind {
                StmtKind::If { then_b, else_b, .. } => {
                    count(then_b, m);
                    count(else_b, m);
                }
                StmtKind::Loop { head, tail, .. } => {
                    count(head, m);
                    count(tail, m);
                }
                _ => {}
            }
        }
    }
    count(head, &mut assignment_counts);
    count(tail, &mut assignment_counts);

    let mut out = Vec::new();
    let mut renames: HashMap<Sym, Sym> = HashMap::new(); // old -> fresh
    for s in head.stmts.iter().chain(tail.stmts.iter()) {
        match &s.kind {
            StmtKind::Rename { fresh, old } => {
                renames.insert(*old, *fresh);
            }
            StmtKind::Assign { x, e } => {
                let Some(xp) = renames.get(x).copied() else {
                    continue;
                };
                if assignment_counts.get(x) != Some(&1) {
                    continue;
                }
                let Some(l) = linearize(e) else { continue };
                let mut expected = Lin::var(xp);
                expected.konst = l.konst;
                if l == expected && l.konst != 0 {
                    out.push(Induction {
                        var: *x,
                        step: l.konst,
                    });
                }
            }
            _ => {}
        }
    }
    let _ = assigned;
    out
}
// (assigned_vars is recomputed here only to keep the scan self-contained.)

/// The induction variable's symbolic initial value, from an entry equality
/// fact `x == E` with loop-invariant `E`.
fn initial_value(h_in: &History, x: Sym, assigned: &HashSet<Sym>) -> Option<Lin> {
    for b in &h_in.bools {
        if let Expr::Binop(Binop::Eq, lhs, rhs) = b {
            let (l, r) = (lhs.as_ref(), rhs.as_ref());
            for (a, bexp) in [(l, r), (r, l)] {
                if let Expr::Var(v) = a {
                    if *v == x && !bexp.mentions(x) {
                        let mut vars = Vec::new();
                        bexp.vars(&mut vars);
                        if vars.iter().all(|v| !assigned.contains(v)) {
                            if let Some(lin) = linearize(bexp) {
                                return Some(lin);
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Heap accesses performed unconditionally on every iteration: top-level
/// statements of the head and tail (not under conditionals or nested
/// loops).
fn unconditional_accesses(head: &Block, tail: &Block) -> Vec<PathFact> {
    let mut out = Vec::new();
    for s in head.stmts.iter().chain(tail.stmts.iter()) {
        match &s.kind {
            StmtKind::ReadArr { arr, idx, .. } => {
                if let Some(l) = linearize(idx) {
                    out.push(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Read,
                    });
                }
            }
            StmtKind::WriteArr { arr, idx, .. } => {
                if let Some(l) = linearize(idx) {
                    out.push(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Write,
                    });
                }
            }
            _ => {}
        }
    }
    out
}
