//! Static field proxy analysis (§4 "Static Field Compression").
//!
//! Field `x` is a proxy for `y` when every check touching `y` also touches
//! `x`; then any trace with a race on `y` also has one on `x`, and the two
//! fields can share a shadow location. We use the *symmetric* closure
//! (footnote 2 of the paper) so that racy-address reporting is preserved:
//! fields group together exactly when each is a proxy for the other, which
//! is an equivalence relation. Fields never mentioned by any check group
//! together trivially (they never induce shadow operations).
//!
//! BFJ is untyped, so a check path is attributed to every class declaring
//! all of its fields — a conservative choice that can only reduce
//! compression, never break precision.

use bigfoot_bfj::{Block, Path, Program, StmtKind, Sym};
use bigfoot_detectors::ProxyTable;
use bigfoot_shadow::FieldGrouping;
use std::collections::HashSet;
use std::sync::Arc;

/// Computes per-class field groupings from the checks of an instrumented
/// program (a single pass over all checks, as in the paper).
pub fn field_proxies(p: &Program) -> ProxyTable {
    // Collect the distinct field sets appearing in checks.
    let mut check_sets: Vec<Vec<Sym>> = Vec::new();
    let mut visit = |b: &Block| collect_checks(b, &mut check_sets);
    for (_, m) in p.methods() {
        visit(&m.body);
    }
    visit(&p.main);
    grouping_from_sets(p, &check_sets)
}

/// Builds per-class groupings from "always together" field sets — used
/// both for BigFoot (sets = coalesced check paths) and RedCard (sets =
/// fields accessed within each release-free span).
pub fn grouping_from_sets(p: &Program, check_sets: &[Vec<Sym>]) -> ProxyTable {
    let mut by_class = Vec::with_capacity(p.classes.len());
    for class in &p.classes {
        let nfields = class.fields.len();
        let class_fields: HashSet<Sym> = class.fields.iter().copied().collect();
        // Check sets attributable to this class.
        let relevant: Vec<&Vec<Sym>> = check_sets
            .iter()
            .filter(|set| set.iter().all(|f| class_fields.contains(f)))
            .collect();
        // always_with[i]: fields present in every relevant check that
        // mentions field i (everything, if none does).
        let mut group_of = vec![u32::MAX; nfields];
        let mut next_group = 0u32;
        for i in 0..nfields {
            if group_of[i] != u32::MAX {
                continue;
            }
            let g = next_group;
            next_group += 1;
            group_of[i] = g;
            #[allow(clippy::needless_range_loop)] // parallel index into fields
            for j in (i + 1)..nfields {
                if group_of[j] != u32::MAX {
                    continue;
                }
                if mutually_proxied(class.fields[i], class.fields[j], &relevant) {
                    group_of[j] = g;
                }
            }
        }
        let grouping = FieldGrouping::from_assignment(group_of);
        by_class.push(if grouping.compresses() {
            Some(Arc::new(grouping))
        } else {
            None
        });
    }
    ProxyTable { by_class }
}

/// True if every check mentioning `a` also mentions `b` and vice versa.
fn mutually_proxied(a: Sym, b: Sym, checks: &[&Vec<Sym>]) -> bool {
    checks.iter().all(|set| {
        let has_a = set.contains(&a);
        let has_b = set.contains(&b);
        has_a == has_b
    })
}

fn collect_checks(b: &Block, out: &mut Vec<Vec<Sym>>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Check { paths } => {
                for cp in paths {
                    if let Path::Fields { fields, .. } = &cp.path {
                        let mut set = fields.clone();
                        set.sort_by_key(|f| f.as_str());
                        set.dedup();
                        out.push(set);
                    }
                }
            }
            StmtKind::If { then_b, else_b, .. } => {
                collect_checks(then_b, out);
                collect_checks(else_b, out);
            }
            StmtKind::Loop { head, tail, .. } => {
                collect_checks(head, out);
                collect_checks(tail, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    #[test]
    fn always_coalesced_fields_group() {
        let p = parse_program(
            "class Point { field x; field y; field z; }
             main {
                 p = new Point;
                 check(w: p.x/y/z);
                 check(r: p.x/y/z);
             }",
        )
        .unwrap();
        let table = field_proxies(&p);
        let g = table.by_class[0].as_ref().expect("compressed");
        assert_eq!(g.groups, 1);
    }

    #[test]
    fn separately_checked_field_stays_alone() {
        let p = parse_program(
            "class Point { field x; field y; field z; }
             main {
                 p = new Point;
                 check(w: p.x/y/z);
                 check(r: p.x);
             }",
        )
        .unwrap();
        let table = field_proxies(&p);
        // x is checked alone, so it cannot group with y/z; y and z still
        // group with each other.
        let g = table.by_class[0].as_ref().expect("compressed");
        assert_eq!(g.groups, 2);
        assert_ne!(g.group(0), g.group(1));
        assert_eq!(g.group(1), g.group(2));
    }

    #[test]
    fn unchecked_fields_group_together() {
        let p = parse_program(
            "class C { field a; field b; }
             main { c = new C; }",
        )
        .unwrap();
        let table = field_proxies(&p);
        let g = table.by_class[0].as_ref().expect("compressed");
        assert_eq!(g.groups, 1);
    }

    #[test]
    fn foreign_class_checks_do_not_break_grouping() {
        // The check on d.u cannot be a C object (C lacks u), so C's x/y
        // grouping is unaffected.
        let p = parse_program(
            "class C { field x; field y; }
             class D { field u; field x; }
             main {
                 c = new C;
                 d = new D;
                 check(w: c.x/y);
                 check(w: d.u);
             }",
        )
        .unwrap();
        let table = field_proxies(&p);
        let gc = table.by_class[0].as_ref().expect("compressed");
        assert_eq!(gc.groups, 1);
        // For D, the solo check on u (and on x, attributable to D? x alone
        // is a field of both C and D... the c.x/y check is not
        // attributable to D since D lacks y), so u and x group only if no
        // relevant check separates them: the d.u check mentions u without
        // x, so they stay apart.
        let gd = &table.by_class[1];
        assert!(gd.is_none(), "{gd:?}");
    }
}
