//! Post-analysis path coalescing (§4).
//!
//! Each emitted `check(C)` first drops read paths covered by write paths
//! (a write check covers read accesses), then partitions the remaining
//! paths into equivalence classes by provably-equal designators, coalesces
//! field classes into `d.f1/f2/…` paths, and coalesces array classes into
//! a single strided range when an *exact* single-range form of the union
//! exists (otherwise the original paths are kept, as in the paper).

use crate::facts::{path_subsumes, APath, PathFact};
use bigfoot_bfj::{CheckPath, Path, Stmt, StmtKind, Sym};
use bigfoot_entail::{coalesce as coalesce_ranges, Kb, SymRange};
use bigfoot_vc::AccessKind;

/// Builds a single `check(C)` statement from pending access facts, or
/// `None` when nothing needs checking.
pub fn emit_check(kb: &mut Kb, facts: &[PathFact]) -> Option<Stmt> {
    emit_check_opts(kb, facts, true)
}

/// Like [`emit_check`], optionally disabling the §4 coalescing step (for
/// the ablation study): redundant-read elimination still applies, but
/// every surviving fact becomes its own path.
pub fn emit_check_opts(kb: &mut Kb, facts: &[PathFact], coalesce_paths: bool) -> Option<Stmt> {
    if facts.is_empty() {
        return None;
    }
    if !coalesce_paths {
        let mut paths: Vec<CheckPath> = Vec::new();
        for f in facts {
            let covered = f.kind == AccessKind::Read
                && facts
                    .iter()
                    .any(|w| w.kind == AccessKind::Write && path_subsumes(kb, &w.path, &f.path));
            if covered {
                continue;
            }
            let cp = CheckPath {
                kind: f.kind,
                path: f.path.to_ast(),
            };
            if !paths.contains(&cp) {
                paths.push(cp);
            }
        }
        if paths.is_empty() {
            return None;
        }
        paths.sort_by_key(bigfoot_bfj::pretty_check_path);
        return Some(Stmt::new(StmtKind::Check { paths }));
    }
    // 1. Read paths fully covered by a write path in the same batch are
    //    redundant (Fig. 1's read-modify-write elimination).
    let mut kept: Vec<&PathFact> = Vec::new();
    for f in facts {
        let covered = f.kind == AccessKind::Read
            && facts
                .iter()
                .any(|w| w.kind == AccessKind::Write && path_subsumes(kb, &w.path, &f.path));
        if !covered {
            kept.push(f);
        }
    }
    // 2. Partition into designator classes per kind.
    #[derive(Debug)]
    struct FieldClass {
        kind: AccessKind,
        base: Sym,
        fields: Vec<Sym>,
    }
    #[derive(Debug)]
    struct ArrClass {
        kind: AccessKind,
        base: Sym,
        ranges: Vec<SymRange>,
    }
    let mut field_classes: Vec<FieldClass> = Vec::new();
    let mut arr_classes: Vec<ArrClass> = Vec::new();
    for f in kept {
        match &f.path {
            APath::Field { base, field } => {
                let found = field_classes
                    .iter_mut()
                    .find(|c| c.kind == f.kind && kb.refs_equal(c.base, *base));
                match found {
                    Some(c) => {
                        if !c.fields.contains(field) {
                            c.fields.push(*field);
                        }
                    }
                    None => field_classes.push(FieldClass {
                        kind: f.kind,
                        base: *base,
                        fields: vec![*field],
                    }),
                }
            }
            APath::Arr { base, range } => {
                let found = arr_classes
                    .iter_mut()
                    .find(|c| c.kind == f.kind && kb.refs_equal(c.base, *base));
                match found {
                    Some(c) => {
                        if !c.ranges.contains(range) {
                            c.ranges.push(range.clone());
                        }
                    }
                    None => arr_classes.push(ArrClass {
                        kind: f.kind,
                        base: *base,
                        ranges: vec![range.clone()],
                    }),
                }
            }
        }
    }
    // 3. Emit coalesced paths.
    let mut paths: Vec<CheckPath> = Vec::new();
    for c in field_classes {
        let mut fields = c.fields;
        fields.sort_by_key(|f| f.as_str());
        paths.push(CheckPath {
            kind: c.kind,
            path: Path::Fields {
                base: c.base,
                fields,
            },
        });
    }
    for c in arr_classes {
        let multi = c.ranges.len() > 1;
        match coalesce_ranges(kb, &c.ranges) {
            Some(merged) => {
                if multi {
                    bigfoot_obs::count!("static.coalesce.merged");
                }
                paths.push(CheckPath {
                    kind: c.kind,
                    path: APath::Arr {
                        base: c.base,
                        range: merged,
                    }
                    .to_ast(),
                })
            }
            None => {
                bigfoot_obs::count!("static.coalesce.kept_separate");
                for r in c.ranges {
                    paths.push(CheckPath {
                        kind: c.kind,
                        path: APath::Arr {
                            base: c.base,
                            range: r,
                        }
                        .to_ast(),
                    });
                }
            }
        }
    }
    if paths.is_empty() {
        return None;
    }
    // Deterministic order for golden tests.
    paths.sort_by_key(bigfoot_bfj::pretty_check_path);
    Some(Stmt::new(StmtKind::Check { paths }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_entail::Lin;

    fn field_fact(base: &str, f: &str, kind: AccessKind) -> PathFact {
        PathFact {
            path: APath::Field {
                base: Sym::intern(base),
                field: Sym::intern(f),
            },
            kind,
        }
    }

    fn render(s: &Stmt) -> String {
        bigfoot_bfj::pretty_stmt(s)
    }

    #[test]
    fn rmw_read_dropped_under_write() {
        let mut kb = Kb::new();
        let facts = vec![
            field_fact("p", "x", AccessKind::Read),
            field_fact("p", "x", AccessKind::Write),
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(render(&s).trim(), "check(w: p.x);");
    }

    #[test]
    fn fields_coalesce_into_one_path() {
        let mut kb = Kb::new();
        let facts = vec![
            field_fact("p", "x", AccessKind::Write),
            field_fact("p", "y", AccessKind::Write),
            field_fact("p", "z", AccessKind::Write),
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(render(&s).trim(), "check(w: p.x/y/z);");
    }

    #[test]
    fn different_kinds_stay_separate() {
        let mut kb = Kb::new();
        let facts = vec![
            field_fact("p", "x", AccessKind::Write),
            field_fact("p", "y", AccessKind::Read),
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(render(&s).trim(), "check(r: p.y, w: p.x);");
    }

    #[test]
    fn array_ranges_coalesce() {
        let mut kb = Kb::new();
        let a = Sym::intern("arr$c");
        let facts = vec![
            PathFact {
                path: APath::Arr {
                    base: a,
                    range: SymRange {
                        lo: Lin::constant(0),
                        hi: Lin::constant(50),
                        step: 1,
                    },
                },
                kind: AccessKind::Read,
            },
            PathFact {
                path: APath::Arr {
                    base: a,
                    range: SymRange {
                        lo: Lin::constant(50),
                        hi: Lin::constant(100),
                        step: 1,
                    },
                },
                kind: AccessKind::Read,
            },
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(render(&s).trim(), "check(r: arr$c[0..100]);");
    }

    #[test]
    fn uncoalescible_ranges_kept_separately() {
        let mut kb = Kb::new();
        let a = Sym::intern("arr$d");
        let facts = vec![
            PathFact {
                path: APath::Arr {
                    base: a,
                    range: SymRange {
                        lo: Lin::constant(0),
                        hi: Lin::constant(5),
                        step: 1,
                    },
                },
                kind: AccessKind::Write,
            },
            PathFact {
                path: APath::Arr {
                    base: a,
                    range: SymRange {
                        lo: Lin::constant(10),
                        hi: Lin::constant(20),
                        step: 1,
                    },
                },
                kind: AccessKind::Write,
            },
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(
            render(&s).trim(),
            "check(w: arr$d[0..5], w: arr$d[10..20]);"
        );
    }

    #[test]
    fn empty_facts_emit_nothing() {
        let mut kb = Kb::new();
        assert!(emit_check(&mut kb, &[]).is_none());
    }

    #[test]
    fn aliased_designators_merge() {
        // x and y provably alias: checks on x.f and y.g coalesce.
        let mut kb = Kb::new();
        kb.assume_var_eq(Sym::intern("px"), Sym::intern("py"));
        let facts = vec![
            field_fact("px", "f", AccessKind::Write),
            field_fact("py", "g", AccessKind::Write),
        ];
        let s = emit_check(&mut kb, &facts).unwrap();
        assert_eq!(render(&s).trim(), "check(w: px.f/g);");
    }
}
