//! Post-instrumentation cleanup (the paper's Soot-optimizer analog, §5):
//! removes renames whose primed variable is never consulted and empty
//! check statements.

use bigfoot_bfj::{Block, Expr, Program, Stmt, StmtKind, Sym};
use std::collections::{HashMap, HashSet};

/// Removes dead `x' ← x` renames and empty checks from every method of the
/// program, in place.
pub fn cleanup_program(p: &mut Program) {
    for c in &mut p.classes {
        for m in &mut c.methods {
            cleanup_body(&mut m.body, Some(&m.ret));
        }
    }
    let mut main = std::mem::take(&mut p.main);
    cleanup_body(&mut main, None);
    p.main = main;
    p.renumber();
}

/// Cleans one method body.
pub fn cleanup_body(body: &mut Block, ret: Option<&Expr>) {
    loop {
        // Fold renames whose only consumer is the adjacent assignment:
        //   x' <- x; x = f(x')   ⇒   x = f(x)
        // (sound because x' == x at that point). This undoes renames that
        // no surviving check ended up needing.
        let mut use_counts: HashMap<Sym, usize> = HashMap::new();
        count_uses(body, &mut use_counts);
        if let Some(r) = ret {
            let mut vars = Vec::new();
            r.vars(&mut vars);
            for v in vars {
                *use_counts.entry(v).or_default() += 1;
            }
        }
        fold_adjacent_renames(body, &use_counts);
        // Drop renames whose primed variable is never consulted, and empty
        // checks.
        let mut used = HashSet::new();
        collect_uses(body, &mut used);
        if let Some(r) = ret {
            note_expr(r, &mut used);
        }
        let before = count_stmts(body);
        prune(body, &used);
        if count_stmts(body) == before {
            break;
        }
    }
}

/// Number of times each variable is read anywhere in the block (each
/// statement contributes at most one count per variable, which is all the
/// adjacent-rename fold needs for its "single consumer" test).
fn count_uses(b: &Block, counts: &mut HashMap<Sym, usize>) {
    for s in &b.stmts {
        let single = Block {
            stmts: vec![Stmt {
                id: s.id,
                kind: shallow_kind(&s.kind),
            }],
        };
        let mut set = HashSet::new();
        collect_uses(&single, &mut set);
        for v in set {
            *counts.entry(v).or_default() += 1;
        }
        match &s.kind {
            StmtKind::If { then_b, else_b, .. } => {
                count_uses(then_b, counts);
                count_uses(else_b, counts);
            }
            StmtKind::Loop { head, tail, .. } => {
                count_uses(head, counts);
                count_uses(tail, counts);
            }
            _ => {}
        }
    }
}

/// A copy of the statement kind with nested blocks emptied (so per-
/// statement use collection does not double-count the bodies).
fn shallow_kind(kind: &StmtKind) -> StmtKind {
    match kind {
        StmtKind::If { cond, .. } => StmtKind::If {
            cond: cond.clone(),
            then_b: Block::new(),
            else_b: Block::new(),
        },
        StmtKind::Loop { exit, .. } => StmtKind::Loop {
            head: Block::new(),
            exit: exit.clone(),
            tail: Block::new(),
        },
        other => other.clone(),
    }
}

/// Rewrites `x' <- x; x = f(x')` into `x = f(x)` when the adjacent
/// assignment is `x'`'s only use.
fn fold_adjacent_renames(b: &mut Block, counts: &HashMap<Sym, usize>) {
    let mut i = 0;
    while i + 1 < b.stmts.len() {
        let fold = match (&b.stmts[i].kind, &b.stmts[i + 1].kind) {
            (StmtKind::Rename { fresh, old }, StmtKind::Assign { x, e })
                if x == old
                    && counts.get(fresh).copied().unwrap_or(0) == uses_in_expr(e, *fresh) =>
            {
                Some((*fresh, *old))
            }
            _ => None,
        };
        if let Some((fresh, old)) = fold {
            if let StmtKind::Assign { e, .. } = &mut b.stmts[i + 1].kind {
                *e = e.subst(fresh, &Expr::Var(old));
            }
            b.stmts.remove(i);
            continue;
        }
        match &mut b.stmts[i].kind {
            StmtKind::If { then_b, else_b, .. } => {
                fold_adjacent_renames(then_b, counts);
                fold_adjacent_renames(else_b, counts);
            }
            StmtKind::Loop { head, tail, .. } => {
                fold_adjacent_renames(head, counts);
                fold_adjacent_renames(tail, counts);
            }
            _ => {}
        }
        i += 1;
    }
    // Recurse into a possible trailing compound statement.
    if let Some(last) = b.stmts.last_mut() {
        match &mut last.kind {
            StmtKind::If { then_b, else_b, .. } => {
                fold_adjacent_renames(then_b, counts);
                fold_adjacent_renames(else_b, counts);
            }
            StmtKind::Loop { head, tail, .. } => {
                fold_adjacent_renames(head, counts);
                fold_adjacent_renames(tail, counts);
            }
            _ => {}
        }
    }
}

fn uses_in_expr(e: &Expr, x: Sym) -> usize {
    let mut vars = Vec::new();
    e.vars(&mut vars);
    vars.into_iter().filter(|v| *v == x).count()
}

fn count_stmts(b: &Block) -> usize {
    b.stmts
        .iter()
        .map(|s| {
            1 + match &s.kind {
                StmtKind::If { then_b, else_b, .. } => count_stmts(then_b) + count_stmts(else_b),
                StmtKind::Loop { head, tail, .. } => count_stmts(head) + count_stmts(tail),
                _ => 0,
            }
        })
        .sum()
}

fn prune(b: &mut Block, used: &HashSet<Sym>) {
    b.stmts.retain_mut(|s| match &mut s.kind {
        StmtKind::Rename { fresh, .. } => used.contains(fresh),
        StmtKind::Check { paths } => !paths.is_empty(),
        StmtKind::If { then_b, else_b, .. } => {
            prune(then_b, used);
            prune(else_b, used);
            true
        }
        StmtKind::Loop { head, tail, .. } => {
            prune(head, used);
            prune(tail, used);
            true
        }
        _ => true,
    });
}

fn note_expr(e: &Expr, used: &mut HashSet<Sym>) {
    let mut vars = Vec::new();
    e.vars(&mut vars);
    used.extend(vars);
}

/// Collects every variable *read* by the block (assignment targets do not
/// count, but a rename's source does).
fn collect_uses(b: &Block, used: &mut HashSet<Sym>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Skip => {}
            StmtKind::Assign { e, .. } => note_expr(e, used),
            StmtKind::Rename { old, .. } => {
                used.insert(*old);
            }
            StmtKind::New { .. } => {}
            StmtKind::NewArray { len, .. } => note_expr(len, used),
            StmtKind::ReadField { obj, .. } => {
                used.insert(*obj);
            }
            StmtKind::WriteField { obj, src, .. } => {
                used.insert(*obj);
                used.insert(*src);
            }
            StmtKind::ReadArr { arr, idx, .. } => {
                used.insert(*arr);
                note_expr(idx, used);
            }
            StmtKind::WriteArr { arr, idx, src } => {
                used.insert(*arr);
                note_expr(idx, used);
                used.insert(*src);
            }
            StmtKind::Call { recv, args, .. } | StmtKind::Fork { recv, args, .. } => {
                used.insert(*recv);
                used.extend(args.iter().copied());
            }
            StmtKind::Acquire { lock }
            | StmtKind::Release { lock }
            | StmtKind::Wait { lock }
            | StmtKind::Notify { lock } => {
                used.insert(*lock);
            }
            StmtKind::Join { t } => {
                used.insert(*t);
            }
            StmtKind::Check { paths } => {
                for cp in paths {
                    match &cp.path {
                        bigfoot_bfj::Path::Fields { base, .. } => {
                            used.insert(*base);
                        }
                        bigfoot_bfj::Path::Arr { base, range } => {
                            used.insert(*base);
                            note_expr(&range.lo, used);
                            note_expr(&range.hi, used);
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                note_expr(cond, used);
                collect_uses(then_b, used);
                collect_uses(else_b, used);
            }
            StmtKind::Loop { head, exit, tail } => {
                note_expr(exit, used);
                collect_uses(head, used);
                collect_uses(tail, used);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, pretty};

    #[test]
    fn unused_rename_is_removed() {
        let mut p = parse_program("main { i = 0; i' <- i; i = 1; }").unwrap();
        cleanup_program(&mut p);
        let out = pretty(&p);
        assert!(!out.contains("<-"), "{out}");
    }

    #[test]
    fn rename_used_in_check_is_kept() {
        let mut p =
            parse_program("main { a = new_array(4); i = 0; i' <- i; i = 1; check(w: a[0..i']); }")
                .unwrap();
        cleanup_program(&mut p);
        let out = pretty(&p);
        assert!(out.contains("i' <- i"), "{out}");
    }

    #[test]
    fn chained_dead_renames_removed() {
        // i'' depends on i' which is otherwise dead: both go in one
        // cleanup.
        let mut p = parse_program("main { i = 0; i' <- i; i'' <- i'; i = 1; }").unwrap();
        cleanup_program(&mut p);
        let out = pretty(&p);
        assert!(!out.contains("<-"), "{out}");
    }
}
