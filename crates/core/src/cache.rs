//! The persistent placement cache (`.bigfoot-cache/placement.bfpc`).
//!
//! BFPC is a little-endian binary format holding, per analyzed method
//! site, everything a warm run needs to decide whether the cold run's
//! placement is still valid and to replay it if so:
//!
//! * the structural **body fingerprint** the placement was computed from,
//! * the recorded fact **read-set** (callee effect summaries and field
//!   volatility the analysis actually queried) plus its value digest
//!   (`facts_fp`),
//! * the **kill-set scan summary** of the body (so warm runs rescan only
//!   edited bodies before re-running the cheap name-level fixpoint),
//! * the **placed body** exactly as the per-method analysis produced it
//!   (pre-cleanup; statement ids are not stored — the pipeline renumbers
//!   after assembly, which is what makes warm output byte-identical to
//!   cold).
//!
//! Layout: magic `BFPC`, a `u32` version, two `u64` global digests
//! (analysis-config and volatile-set fingerprints), then a counted list
//! of entries. Integers are LEB128 varints except fingerprints (fixed 8
//! bytes LE) and the version (fixed 4 bytes LE — a byte-swapped header
//! from a foreign-endian writer surfaces as `UnsupportedVersion`, not
//! garbage). Decoding is hardened in the same style as the BFTR/BFTC
//! trace codecs: every malformed input maps to a typed [`CacheError`],
//! allocation sizes are bounded before they are trusted, and the caller
//! falls back to a cold run — never a panic, never a silently wrong
//! placement.

use crate::killset::{Effects, KillSummary};
use crate::readset::ReadSet;
use bigfoot_bfj::{AccessKind, Block, CheckPath, Expr, Path, Range, Stmt, StmtKind, Sym, Unop};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path as FsPath;

/// File magic: "BFPC" (BigFoot Placement Cache).
pub const CACHE_MAGIC: [u8; 4] = *b"BFPC";
/// Current format version.
pub const CACHE_VERSION: u32 = 1;
/// File name inside the cache directory.
pub const CACHE_FILE: &str = "placement.bfpc";

/// Upper bound on any single decoded length (strings, lists). Generous
/// for real programs, small enough that a corrupt length cannot drive an
/// absurd allocation.
const MAX_LEN: u64 = 1 << 24;

/// Typed decode errors. Every malformed cache file maps to one of these;
/// the incremental driver treats any of them as "no cache" (plus a
/// `static.cache.invalid` counter), never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The file does not start with `BFPC`.
    BadMagic,
    /// Unknown format version (includes byte-swapped headers written by
    /// a foreign-endianness encoder).
    UnsupportedVersion {
        /// The version field as read.
        found: u32,
    },
    /// The file ends mid-record.
    Truncated,
    /// An enum tag byte is out of range.
    BadTag {
        /// Which decoder hit it.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length field exceeds [`MAX_LEN`].
    TooLarge {
        /// Which decoder hit it.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// Well-formed records followed by trailing garbage.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BadMagic => write!(f, "not a BFPC placement cache (bad magic)"),
            CacheError::UnsupportedVersion { found } => {
                write!(f, "unsupported placement cache version {found}")
            }
            CacheError::Truncated => write!(f, "placement cache truncated"),
            CacheError::BadTag { what, tag } => {
                write!(f, "invalid {what} tag {tag:#04x} in placement cache")
            }
            CacheError::TooLarge { what, len } => {
                write!(f, "implausible {what} length {len} in placement cache")
            }
            CacheError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after placement cache records")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// One cached method site: the fingerprints guarding reuse, the recorded
/// read-set, the kill-scan summary, and the placed body.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The site's bare method name (`"main"` for the main block); used
    /// to rebuild the name-keyed kill-set fixpoint.
    pub method_name: &'static str,
    /// Structural fingerprint of the freshened body the placement was
    /// computed from.
    pub body_fp: u64,
    /// Digest of the read-set values observed during the cold analysis.
    pub facts_fp: u64,
    /// The cross-method facts the analysis read (domain + values).
    pub readset: ReadSet,
    /// Kill-set scan summary of the body (direct effects + callees).
    pub kill: KillSummary,
    /// The placed body, exactly as the per-method analysis returned it.
    pub placed: Block,
}

/// A whole placement cache: global config digests plus entries keyed by
/// qualified site name (`"Class.method#ordinal"`, `"main"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementCache {
    /// Fingerprint of the analysis configuration (options + the version
    /// constants of every analysis layer).
    pub config_fp: u64,
    /// Fingerprint of the program's volatile field set (kill-scan
    /// summaries are only reusable when this matches).
    pub volatiles_fp: u64,
    /// Entries by qualified site name (sorted, for stable encoding).
    pub entries: BTreeMap<String, CacheEntry>,
}

impl PlacementCache {
    /// Serializes the cache to BFPC bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(4096);
        w.extend_from_slice(&CACHE_MAGIC);
        w.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        w.extend_from_slice(&self.config_fp.to_le_bytes());
        w.extend_from_slice(&self.volatiles_fp.to_le_bytes());
        put_varint(&mut w, self.entries.len() as u64);
        for (key, e) in &self.entries {
            put_str(&mut w, key);
            put_str(&mut w, e.method_name);
            w.extend_from_slice(&e.body_fp.to_le_bytes());
            w.extend_from_slice(&e.facts_fp.to_le_bytes());
            put_readset(&mut w, &e.readset);
            put_kill(&mut w, &e.kill);
            put_block(&mut w, &e.placed);
        }
        w
    }

    /// Decodes BFPC bytes, validating the header and every record.
    pub fn decode(bytes: &[u8]) -> Result<PlacementCache, CacheError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != CACHE_MAGIC {
            return Err(CacheError::BadMagic);
        }
        let version = r.u32()?;
        if version != CACHE_VERSION {
            return Err(CacheError::UnsupportedVersion { found: version });
        }
        let config_fp = r.u64()?;
        let volatiles_fp = r.u64()?;
        let n = r.len("entry count")?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let key = r.string("entry key")?;
            let method_name = Sym::intern(&r.string("method name")?).as_str();
            let body_fp = r.u64()?;
            let facts_fp = r.u64()?;
            let readset = r.readset()?;
            let kill = r.kill()?;
            let placed = r.block("placed body")?;
            entries.insert(
                key,
                CacheEntry {
                    method_name,
                    body_fp,
                    facts_fp,
                    readset,
                    kill,
                    placed,
                },
            );
        }
        if r.pos != bytes.len() {
            return Err(CacheError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok(PlacementCache {
            config_fp,
            volatiles_fp,
            entries,
        })
    }

    /// Loads the cache from `dir`, if present. `Ok(None)` means no cache
    /// file (a plain cold run); `Err` means a file existed but was
    /// malformed (callers count `static.cache.invalid` and run cold).
    pub fn load(dir: &FsPath) -> Result<Option<PlacementCache>, CacheError> {
        let path = dir.join(CACHE_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Ok(None),
        };
        PlacementCache::decode(&bytes).map(Some)
    }

    /// Writes the cache into `dir` (created if needed), atomically via a
    /// temp file so a crashed writer cannot leave a torn cache.
    pub fn store(&self, dir: &FsPath) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        let bytes = self.encode();
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(CACHE_FILE))
    }
}

// ---------------------------------------------------------------- encode

fn put_varint(w: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.push(byte);
            return;
        }
        w.push(byte | 0x80);
    }
}

fn put_i64(w: &mut Vec<u8>, v: i64) {
    // Zigzag.
    put_varint(w, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_varint(w, s.len() as u64);
    w.extend_from_slice(s.as_bytes());
}

fn put_sym(w: &mut Vec<u8>, s: Sym) {
    put_str(w, s.as_str());
}

fn effects_bits(e: Effects) -> u8 {
    (e.acquires as u8) | ((e.releases as u8) << 1) | ((e.writes_heap as u8) << 2)
}

fn put_readset(w: &mut Vec<u8>, rs: &ReadSet) {
    put_varint(w, rs.callees.len() as u64);
    for (&name, &eff) in &rs.callees {
        put_str(w, name);
        w.push(effects_bits(eff));
    }
    put_varint(w, rs.fields.len() as u64);
    for (&field, &vol) in &rs.fields {
        put_str(w, field);
        w.push(vol as u8);
    }
}

fn put_kill(w: &mut Vec<u8>, k: &KillSummary) {
    w.push(effects_bits(k.direct));
    put_varint(w, k.callees.len() as u64);
    for &c in &k.callees {
        put_sym(w, c);
    }
}

fn put_expr(w: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Int(v) => {
            w.push(0);
            put_i64(w, *v);
        }
        Expr::Bool(v) => {
            w.push(1);
            w.push(*v as u8);
        }
        Expr::Null => w.push(2),
        Expr::Var(x) => {
            w.push(3);
            put_sym(w, *x);
        }
        Expr::Unop(op, e) => {
            w.push(4);
            w.push(match op {
                Unop::Neg => 0,
                Unop::Not => 1,
            });
            put_expr(w, e);
        }
        Expr::Binop(op, l, r) => {
            w.push(5);
            w.push(binop_tag(*op));
            put_expr(w, l);
            put_expr(w, r);
        }
        Expr::Len(a) => {
            w.push(6);
            put_sym(w, *a);
        }
    }
}

fn binop_tag(op: bigfoot_bfj::Binop) -> u8 {
    use bigfoot_bfj::Binop::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Mod => 4,
        Eq => 5,
        Ne => 6,
        Lt => 7,
        Le => 8,
        Gt => 9,
        Ge => 10,
        And => 11,
        Or => 12,
    }
}

fn binop_from(tag: u8) -> Option<bigfoot_bfj::Binop> {
    use bigfoot_bfj::Binop::*;
    Some(match tag {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Mod,
        5 => Eq,
        6 => Ne,
        7 => Lt,
        8 => Le,
        9 => Gt,
        10 => Ge,
        11 => And,
        12 => Or,
        _ => return None,
    })
}

fn put_range(w: &mut Vec<u8>, r: &Range) {
    put_expr(w, &r.lo);
    put_expr(w, &r.hi);
    put_i64(w, r.step);
}

fn put_path(w: &mut Vec<u8>, p: &Path) {
    match p {
        Path::Fields { base, fields } => {
            w.push(0);
            put_sym(w, *base);
            put_varint(w, fields.len() as u64);
            for &f in fields {
                put_sym(w, f);
            }
        }
        Path::Arr { base, range } => {
            w.push(1);
            put_sym(w, *base);
            put_range(w, range);
        }
    }
}

fn put_stmt(w: &mut Vec<u8>, s: &Stmt) {
    // Statement ids are NOT stored: the pipeline renumbers the whole
    // program after assembling cached and fresh bodies.
    match &s.kind {
        StmtKind::Skip => w.push(0),
        StmtKind::Assign { x, e } => {
            w.push(1);
            put_sym(w, *x);
            put_expr(w, e);
        }
        StmtKind::Rename { fresh, old } => {
            w.push(2);
            put_sym(w, *fresh);
            put_sym(w, *old);
        }
        StmtKind::If {
            cond,
            then_b,
            else_b,
        } => {
            w.push(3);
            put_expr(w, cond);
            put_block(w, then_b);
            put_block(w, else_b);
        }
        StmtKind::Loop { head, exit, tail } => {
            w.push(4);
            put_block(w, head);
            put_expr(w, exit);
            put_block(w, tail);
        }
        StmtKind::Acquire { lock } => {
            w.push(5);
            put_sym(w, *lock);
        }
        StmtKind::Release { lock } => {
            w.push(6);
            put_sym(w, *lock);
        }
        StmtKind::New { x, class } => {
            w.push(7);
            put_sym(w, *x);
            put_sym(w, *class);
        }
        StmtKind::NewArray { x, len } => {
            w.push(8);
            put_sym(w, *x);
            put_expr(w, len);
        }
        StmtKind::ReadField { x, obj, field } => {
            w.push(9);
            put_sym(w, *x);
            put_sym(w, *obj);
            put_sym(w, *field);
        }
        StmtKind::WriteField { obj, field, src } => {
            w.push(10);
            put_sym(w, *obj);
            put_sym(w, *field);
            put_sym(w, *src);
        }
        StmtKind::ReadArr { x, arr, idx } => {
            w.push(11);
            put_sym(w, *x);
            put_sym(w, *arr);
            put_expr(w, idx);
        }
        StmtKind::WriteArr { arr, idx, src } => {
            w.push(12);
            put_sym(w, *arr);
            put_expr(w, idx);
            put_sym(w, *src);
        }
        StmtKind::Call {
            x,
            recv,
            meth,
            args,
        } => {
            w.push(13);
            put_sym(w, *x);
            put_sym(w, *recv);
            put_sym(w, *meth);
            put_varint(w, args.len() as u64);
            for &a in args {
                put_sym(w, a);
            }
        }
        StmtKind::Fork {
            x,
            recv,
            meth,
            args,
        } => {
            w.push(14);
            put_sym(w, *x);
            put_sym(w, *recv);
            put_sym(w, *meth);
            put_varint(w, args.len() as u64);
            for &a in args {
                put_sym(w, a);
            }
        }
        StmtKind::Join { t } => {
            w.push(15);
            put_sym(w, *t);
        }
        StmtKind::Wait { lock } => {
            w.push(16);
            put_sym(w, *lock);
        }
        StmtKind::Notify { lock } => {
            w.push(17);
            put_sym(w, *lock);
        }
        StmtKind::Check { paths } => {
            w.push(18);
            put_varint(w, paths.len() as u64);
            for cp in paths {
                w.push(match cp.kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                });
                put_path(w, &cp.path);
            }
        }
    }
}

fn put_block(w: &mut Vec<u8>, b: &Block) {
    put_varint(w, b.stmts.len() as u64);
    for s in &b.stmts {
        put_stmt(w, s);
    }
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        if self.buf.len() - self.pos < n {
            return Err(CacheError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn byte(&mut self) -> Result<u8, CacheError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CacheError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CacheError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn varint(&mut self) -> Result<u64, CacheError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 63 && b > 1 {
                return Err(CacheError::TooLarge {
                    what: "varint",
                    len: u64::MAX,
                });
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CacheError::TooLarge {
                    what: "varint",
                    len: u64::MAX,
                });
            }
        }
    }

    fn i64(&mut self) -> Result<i64, CacheError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn len(&mut self, what: &'static str) -> Result<usize, CacheError> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(CacheError::TooLarge { what, len: n });
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &'static str) -> Result<String, CacheError> {
        let n = self.len(what)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CacheError::BadTag { what, tag: 0xff })
    }

    fn sym(&mut self) -> Result<Sym, CacheError> {
        Ok(Sym::intern(&self.string("identifier")?))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, CacheError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CacheError::BadTag { what, tag }),
        }
    }

    fn effects(&mut self) -> Result<Effects, CacheError> {
        let bits = self.byte()?;
        if bits > 0b111 {
            return Err(CacheError::BadTag {
                what: "effects",
                tag: bits,
            });
        }
        Ok(Effects {
            acquires: bits & 1 != 0,
            releases: bits & 2 != 0,
            writes_heap: bits & 4 != 0,
        })
    }

    fn readset(&mut self) -> Result<ReadSet, CacheError> {
        let mut rs = ReadSet::default();
        let n = self.len("read-set callees")?;
        for _ in 0..n {
            let name = self.sym()?;
            let eff = self.effects()?;
            rs.record_callee(name, eff);
        }
        let n = self.len("read-set fields")?;
        for _ in 0..n {
            let field = self.sym()?;
            let vol = self.bool("read-set volatility")?;
            rs.record_field(field, vol);
        }
        Ok(rs)
    }

    fn kill(&mut self) -> Result<KillSummary, CacheError> {
        let direct = self.effects()?;
        let n = self.len("kill callees")?;
        let mut callees = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            callees.push(self.sym()?);
        }
        Ok(KillSummary { direct, callees })
    }

    fn expr(&mut self) -> Result<Expr, CacheError> {
        Ok(match self.byte()? {
            0 => Expr::Int(self.i64()?),
            1 => Expr::Bool(self.bool("bool literal")?),
            2 => Expr::Null,
            3 => Expr::Var(self.sym()?),
            4 => {
                let op = match self.byte()? {
                    0 => Unop::Neg,
                    1 => Unop::Not,
                    tag => return Err(CacheError::BadTag { what: "unop", tag }),
                };
                Expr::Unop(op, Box::new(self.expr()?))
            }
            5 => {
                let tag = self.byte()?;
                let op = binop_from(tag).ok_or(CacheError::BadTag { what: "binop", tag })?;
                Expr::Binop(op, Box::new(self.expr()?), Box::new(self.expr()?))
            }
            6 => Expr::Len(self.sym()?),
            tag => return Err(CacheError::BadTag { what: "expr", tag }),
        })
    }

    fn range(&mut self) -> Result<Range, CacheError> {
        let lo = self.expr()?;
        let hi = self.expr()?;
        let step = self.i64()?;
        Ok(Range { lo, hi, step })
    }

    fn path(&mut self) -> Result<Path, CacheError> {
        Ok(match self.byte()? {
            0 => {
                let base = self.sym()?;
                let n = self.len("path fields")?;
                let mut fields = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    fields.push(self.sym()?);
                }
                Path::Fields { base, fields }
            }
            1 => Path::Arr {
                base: self.sym()?,
                range: self.range()?,
            },
            tag => return Err(CacheError::BadTag { what: "path", tag }),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CacheError> {
        let kind = match self.byte()? {
            0 => StmtKind::Skip,
            1 => StmtKind::Assign {
                x: self.sym()?,
                e: self.expr()?,
            },
            2 => StmtKind::Rename {
                fresh: self.sym()?,
                old: self.sym()?,
            },
            3 => StmtKind::If {
                cond: self.expr()?,
                then_b: self.block("then block")?,
                else_b: self.block("else block")?,
            },
            4 => StmtKind::Loop {
                head: self.block("loop head")?,
                exit: self.expr()?,
                tail: self.block("loop tail")?,
            },
            5 => StmtKind::Acquire { lock: self.sym()? },
            6 => StmtKind::Release { lock: self.sym()? },
            7 => StmtKind::New {
                x: self.sym()?,
                class: self.sym()?,
            },
            8 => StmtKind::NewArray {
                x: self.sym()?,
                len: self.expr()?,
            },
            9 => StmtKind::ReadField {
                x: self.sym()?,
                obj: self.sym()?,
                field: self.sym()?,
            },
            10 => StmtKind::WriteField {
                obj: self.sym()?,
                field: self.sym()?,
                src: self.sym()?,
            },
            11 => StmtKind::ReadArr {
                x: self.sym()?,
                arr: self.sym()?,
                idx: self.expr()?,
            },
            12 => StmtKind::WriteArr {
                arr: self.sym()?,
                idx: self.expr()?,
                src: self.sym()?,
            },
            13 => {
                let x = self.sym()?;
                let recv = self.sym()?;
                let meth = self.sym()?;
                let n = self.len("call args")?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(self.sym()?);
                }
                StmtKind::Call {
                    x,
                    recv,
                    meth,
                    args,
                }
            }
            14 => {
                let x = self.sym()?;
                let recv = self.sym()?;
                let meth = self.sym()?;
                let n = self.len("fork args")?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(self.sym()?);
                }
                StmtKind::Fork {
                    x,
                    recv,
                    meth,
                    args,
                }
            }
            15 => StmtKind::Join { t: self.sym()? },
            16 => StmtKind::Wait { lock: self.sym()? },
            17 => StmtKind::Notify { lock: self.sym()? },
            18 => {
                let n = self.len("check paths")?;
                let mut paths = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let kind = match self.byte()? {
                        0 => AccessKind::Read,
                        1 => AccessKind::Write,
                        tag => {
                            return Err(CacheError::BadTag {
                                what: "access kind",
                                tag,
                            })
                        }
                    };
                    paths.push(CheckPath {
                        kind,
                        path: self.path()?,
                    });
                }
                StmtKind::Check { paths }
            }
            tag => return Err(CacheError::BadTag { what: "stmt", tag }),
        };
        Ok(Stmt::new(kind))
    }

    fn block(&mut self, what: &'static str) -> Result<Block, CacheError> {
        let n = self.len(what)?;
        let mut stmts = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    fn sample_cache() -> PlacementCache {
        let p = parse_program(
            "class C {
                 field f; volatile v;
                 meth m(x, a) {
                     acq(x);
                     this.f = x;
                     y = this.f;
                     if (y < 3) { a[y] = 1; } else { skip; }
                     while (y < 10) { y = y + 1; }
                     r = this.m(y, a);
                     fork t = this.m(y, a);
                     join(t);
                     wait(x); notify(x);
                     this.v = y;
                     w = this.v;
                     z = new C;
                     b = new_array(8);
                     q = b[0];
                     rel(x);
                     return y;
                 }
             }
             main { skip; }",
        )
        .unwrap();
        let mut entries = BTreeMap::new();
        let mut rs = ReadSet::default();
        rs.record_callee(
            Sym::intern("m"),
            Effects {
                acquires: true,
                releases: true,
                writes_heap: true,
            },
        );
        rs.record_field(Sym::intern("v"), true);
        rs.record_field(Sym::intern("f"), false);
        entries.insert(
            "C.m#0".to_string(),
            CacheEntry {
                method_name: "m",
                body_fp: 0x1234_5678_9abc_def0,
                facts_fp: rs.fingerprint(),
                readset: rs,
                kill: KillSummary {
                    direct: Effects {
                        acquires: true,
                        releases: true,
                        writes_heap: true,
                    },
                    callees: vec![Sym::intern("m")],
                },
                placed: p.classes[0].methods[0].body.clone(),
            },
        );
        entries.insert(
            "main".to_string(),
            CacheEntry {
                method_name: "main",
                body_fp: 7,
                facts_fp: ReadSet::default().fingerprint(),
                readset: ReadSet::default(),
                kill: KillSummary::default(),
                placed: p.main.clone(),
            },
        );
        PlacementCache {
            config_fp: 0xfeed_beef_dead_cafe,
            volatiles_fp: 42,
            entries,
        }
    }

    fn strip_ids(mut c: PlacementCache) -> PlacementCache {
        fn walk(b: &mut Block) {
            for s in &mut b.stmts {
                s.id = bigfoot_bfj::StmtId(u32::MAX);
                match &mut s.kind {
                    StmtKind::If { then_b, else_b, .. } => {
                        walk(then_b);
                        walk(else_b);
                    }
                    StmtKind::Loop { head, tail, .. } => {
                        walk(head);
                        walk(tail);
                    }
                    _ => {}
                }
            }
        }
        for e in c.entries.values_mut() {
            walk(&mut e.placed);
        }
        c
    }

    #[test]
    fn round_trips_every_statement_form() {
        let cache = sample_cache();
        let decoded = PlacementCache::decode(&cache.encode()).unwrap();
        // Ids are not persisted; compare up to ids.
        assert_eq!(strip_ids(cache), strip_ids(decoded));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_cache().encode();
        bytes[0] = b'X';
        assert_eq!(PlacementCache::decode(&bytes), Err(CacheError::BadMagic));
    }

    #[test]
    fn byte_swapped_version_is_unsupported_not_garbage() {
        let mut bytes = sample_cache().encode();
        // A big-endian writer would emit the version bytes reversed.
        bytes[4..8].reverse();
        assert_eq!(
            PlacementCache::decode(&bytes),
            Err(CacheError::UnsupportedVersion {
                found: CACHE_VERSION.swap_bytes()
            })
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_cache().encode();
        for cut in 0..bytes.len() {
            match PlacementCache::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(c) => panic!("truncation at {cut} decoded as {} entries", c.entries.len()),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_cache().encode();
        bytes.push(0);
        assert_eq!(
            PlacementCache::decode(&bytes),
            Err(CacheError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn load_missing_is_none_and_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("bfpc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(PlacementCache::load(&dir), Ok(None));
        let cache = sample_cache();
        cache.store(&dir).unwrap();
        let loaded = PlacementCache::load(&dir).unwrap().unwrap();
        assert_eq!(strip_ids(cache), strip_ids(loaded));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
