//! Freshness pre-pass: inserts the `x' ← x` renaming operations of §3.3.
//!
//! The check-placement rules require every assignment target to be a
//! "fresh" variable not mentioned in the history. Reassignments (loop
//! counters, accumulators) violate this, so before analysis we insert a
//! rename `x' ← x` capturing the old value and rewrite the assignment's
//! right-hand side to read `x'` — semantically identical, but the history
//! can be rewritten to speak about `x'` and keep deferring checks (the
//! paper's Fig. 6(b), line 5). Unused renames are removed by the cleanup
//! pass after instrumentation.

use bigfoot_bfj::{Block, Expr, Stmt, StmtKind, Sym};
use std::collections::{HashMap, HashSet};

/// Rewrites a method body so that every assignment targets a variable not
/// previously mentioned, inserting renames as needed. Returns the set of
/// `(original, primed)` pairs created.
pub fn freshen_body(body: &mut Block, params: &[Sym]) -> Vec<(Sym, Sym)> {
    let mut st = Freshen {
        seen: params.iter().copied().collect(),
        counters: HashMap::new(),
        created: Vec::new(),
    };
    st.seen.insert(Sym::intern("this"));
    st.block(body);
    st.created
}

struct Freshen {
    seen: HashSet<Sym>,
    counters: HashMap<Sym, u32>,
    created: Vec<(Sym, Sym)>,
}

impl Freshen {
    fn primed(&mut self, x: Sym) -> Sym {
        let n = self.counters.entry(x).or_insert(0);
        *n += 1;
        let name = if *n == 1 {
            format!("{x}'")
        } else {
            format!("{x}'{n}")
        };
        let p = Sym::intern(&name);
        self.created.push((x, p));
        p
    }

    fn note_expr(&mut self, e: &Expr) {
        let mut vars = Vec::new();
        e.vars(&mut vars);
        self.seen.extend(vars);
    }

    fn block(&mut self, b: &mut Block) {
        let mut out: Vec<Stmt> = Vec::with_capacity(b.stmts.len());
        for mut s in std::mem::take(&mut b.stmts) {
            // Determine the assignment target, if any.
            let target = match &s.kind {
                StmtKind::Assign { x, .. }
                | StmtKind::New { x, .. }
                | StmtKind::NewArray { x, .. }
                | StmtKind::ReadField { x, .. }
                | StmtKind::ReadArr { x, .. }
                | StmtKind::Call { x, .. }
                | StmtKind::Fork { x, .. } => Some(*x),
                StmtKind::Rename { fresh, .. } => Some(*fresh),
                _ => None,
            };
            if let Some(x) = target {
                if self.seen.contains(&x) && !matches!(s.kind, StmtKind::Rename { .. }) {
                    let xp = self.primed(x);
                    out.push(Stmt::new(StmtKind::Rename { fresh: xp, old: x }));
                    // The statement's own reads of x refer to the old
                    // value: rewrite them to x'.
                    rewrite_reads(&mut s.kind, x, xp);
                    self.seen.insert(xp);
                }
            }
            // Record every variable the statement mentions.
            match &s.kind {
                StmtKind::Assign { x, e } => {
                    self.seen.insert(*x);
                    self.note_expr(e);
                }
                StmtKind::Rename { fresh, old } => {
                    self.seen.insert(*fresh);
                    self.seen.insert(*old);
                }
                StmtKind::New { x, .. } => {
                    self.seen.insert(*x);
                }
                StmtKind::NewArray { x, len } => {
                    self.seen.insert(*x);
                    self.note_expr(len);
                }
                StmtKind::ReadField { x, obj, .. } => {
                    self.seen.insert(*x);
                    self.seen.insert(*obj);
                }
                StmtKind::WriteField { obj, src, .. } => {
                    self.seen.insert(*obj);
                    self.seen.insert(*src);
                }
                StmtKind::ReadArr { x, arr, idx } => {
                    self.seen.insert(*x);
                    self.seen.insert(*arr);
                    self.note_expr(idx);
                }
                StmtKind::WriteArr { arr, idx, src } => {
                    self.seen.insert(*arr);
                    self.note_expr(idx);
                    self.seen.insert(*src);
                }
                StmtKind::Call { x, recv, args, .. } | StmtKind::Fork { x, recv, args, .. } => {
                    self.seen.insert(*x);
                    self.seen.insert(*recv);
                    self.seen.extend(args.iter().copied());
                }
                StmtKind::Acquire { lock }
                | StmtKind::Release { lock }
                | StmtKind::Wait { lock }
                | StmtKind::Notify { lock } => {
                    self.seen.insert(*lock);
                }
                StmtKind::Join { t } => {
                    self.seen.insert(*t);
                }
                StmtKind::If { cond, .. } => self.note_expr(cond),
                StmtKind::Loop { exit, .. } => self.note_expr(exit),
                StmtKind::Skip | StmtKind::Check { .. } => {}
            }
            // Recurse into nested blocks; loops first mark every variable
            // the body mentions as seen (the body re-executes, so any
            // assignment inside is a reassignment).
            match &mut s.kind {
                StmtKind::If { then_b, else_b, .. } => {
                    self.block(then_b);
                    self.block(else_b);
                }
                StmtKind::Loop { head, tail, exit } => {
                    let mut vars = HashSet::new();
                    collect_vars(head, &mut vars);
                    collect_vars(tail, &mut vars);
                    let mut evars = Vec::new();
                    exit.vars(&mut evars);
                    vars.extend(evars);
                    self.seen.extend(vars);
                    self.block(head);
                    self.block(tail);
                }
                _ => {}
            }
            out.push(s);
        }
        b.stmts = out;
    }
}

/// Rewrites the statement's *reads* of `x` (not its target) to `xp`.
fn rewrite_reads(kind: &mut StmtKind, x: Sym, xp: Sym) {
    let fix = |e: &mut Expr| *e = e.subst(x, &Expr::Var(xp));
    let fix_var = |v: &mut Sym| {
        if *v == x {
            *v = xp;
        }
    };
    match kind {
        StmtKind::Assign { e, .. } => fix(e),
        StmtKind::NewArray { len, .. } => fix(len),
        StmtKind::ReadField { obj, .. } => fix_var(obj),
        StmtKind::ReadArr { arr, idx, .. } => {
            fix_var(arr);
            fix(idx);
        }
        StmtKind::Call { recv, args, .. } | StmtKind::Fork { recv, args, .. } => {
            fix_var(recv);
            for a in args {
                fix_var(a);
            }
        }
        _ => {}
    }
}

fn collect_vars(b: &Block, out: &mut HashSet<Sym>) {
    for s in &b.stmts {
        let mut exprs: Vec<&Expr> = Vec::new();
        match &s.kind {
            StmtKind::Assign { x, e } => {
                out.insert(*x);
                exprs.push(e);
            }
            StmtKind::Rename { fresh, old } => {
                out.insert(*fresh);
                out.insert(*old);
            }
            StmtKind::New { x, .. } => {
                out.insert(*x);
            }
            StmtKind::NewArray { x, len } => {
                out.insert(*x);
                exprs.push(len);
            }
            StmtKind::ReadField { x, obj, .. } => {
                out.insert(*x);
                out.insert(*obj);
            }
            StmtKind::WriteField { obj, src, .. } => {
                out.insert(*obj);
                out.insert(*src);
            }
            StmtKind::ReadArr { x, arr, idx } => {
                out.insert(*x);
                out.insert(*arr);
                exprs.push(idx);
            }
            StmtKind::WriteArr { arr, idx, src } => {
                out.insert(*arr);
                out.insert(*src);
                exprs.push(idx);
            }
            StmtKind::Call { x, recv, args, .. } | StmtKind::Fork { x, recv, args, .. } => {
                out.insert(*x);
                out.insert(*recv);
                out.extend(args.iter().copied());
            }
            StmtKind::Acquire { lock }
            | StmtKind::Release { lock }
            | StmtKind::Wait { lock }
            | StmtKind::Notify { lock } => {
                out.insert(*lock);
            }
            StmtKind::Join { t } => {
                out.insert(*t);
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                exprs.push(cond);
                collect_vars(then_b, out);
                collect_vars(else_b, out);
            }
            StmtKind::Loop { head, exit, tail } => {
                exprs.push(exit);
                collect_vars(head, out);
                collect_vars(tail, out);
            }
            StmtKind::Skip | StmtKind::Check { .. } => {}
        }
        for e in exprs {
            let mut vars = Vec::new();
            e.vars(&mut vars);
            out.extend(vars);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::{parse_program, pretty};

    fn freshen(src: &str) -> String {
        let mut p = parse_program(src).unwrap();
        let mut main = std::mem::take(&mut p.main);
        freshen_body(&mut main, &[]);
        p.main = main;
        p.renumber();
        pretty(&p)
    }

    #[test]
    fn loop_counter_gets_renamed() {
        let out = freshen("main { i = 0; while (i < 10) { i = i + 1; } }");
        assert!(out.contains("i' <- i"), "{out}");
        assert!(out.contains("i = i' + 1"), "{out}");
    }

    #[test]
    fn straightline_fresh_vars_untouched() {
        let out = freshen("main { x = 1; y = x + 1; z = y * 2; }");
        assert!(!out.contains("<-"), "{out}");
    }

    #[test]
    fn reassignment_of_straightline_var() {
        let out = freshen("main { x = 1; x = x + 1; }");
        assert!(out.contains("x' <- x"), "{out}");
        assert!(out.contains("x = x' + 1"), "{out}");
    }

    #[test]
    fn two_reassignments_get_distinct_primes() {
        let out = freshen("main { x = 1; x = x + 1; x = x * 2; }");
        assert!(out.contains("x' <- x"), "{out}");
        assert!(out.contains("x'2 <- x"), "{out}");
        assert!(out.contains("x = x'2 * 2"), "{out}");
    }

    #[test]
    fn loop_local_temp_is_renamed() {
        // t is assigned each iteration, so it is a reassignment.
        let out = freshen(
            "class C { field f; }
             main {
                 c = new C;
                 i = 0;
                 while (i < 3) { t = c.f; i = i + t; }
             }",
        );
        assert!(out.contains("t' <- t") || out.contains("t'"), "{out}");
    }

    #[test]
    fn read_target_renames_receiver_use() {
        // x = x.f becomes x' <- x; x = x'.f
        let out = freshen(
            "class C { field f; }
             main { x = new C; x = x.f; }",
        );
        assert!(out.contains("x' <- x"), "{out}");
        assert!(out.contains("x = x'.f"), "{out}");
    }

    #[test]
    fn freshened_program_reparses_and_runs() {
        use bigfoot_bfj::{Interp, NullSink, SchedPolicy, Sym, Tid, Value};
        let src = "main { s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i; } }";
        let out = freshen(src);
        let p2 = parse_program(&out).unwrap();
        let mut interp = Interp::new(&p2, SchedPolicy::default());
        interp.run(&mut NullSink).unwrap();
        assert_eq!(
            interp.final_env(Tid(0)).unwrap()[&Sym::intern("s")],
            Value::Int(10),
            "renaming must not change semantics: {out}"
        );
    }
}
