//! The backward *anticipated accesses* pass (the `✸` component of Fig. 7).
//!
//! An access is anticipated at a point if it occurs on every forward path
//! before the next acquire-like operation. Anticipated accesses let the
//! forward pass defer (or skip) checks: a pending past access whose
//! location will certainly be accessed again is covered by the future
//! access's check.

use crate::facts::{APath, Anticipated, History, PathFact};
use crate::killset::KillSets;
use crate::readset::FactView;
use bigfoot_bfj::{AccessKind, Block, Expr, Stmt, StmtId, StmtKind};
use bigfoot_entail::{linearize, SymRange};
use std::collections::HashMap;

/// Maximum greatest-fixed-point iterations for loop anticipation.
const MAX_LOOP_ITERS: usize = 8;

/// Anticipated sets computed per program point.
#[derive(Debug, Default)]
pub struct ATables {
    /// Anticipated set immediately before each statement.
    pub pre: HashMap<StmtId, Anticipated>,
    /// Anticipated set immediately after each statement.
    pub post: HashMap<StmtId, Anticipated>,
    /// For each loop statement: the anticipated set at the loop head.
    pub loop_head: HashMap<StmtId, Anticipated>,
}

/// Runs the backward pass over a method body.
///
/// `h_pre` gives the history (bool/alias facts) before each statement,
/// from the forward pre-pass; it sharpens the entailment used when merging
/// anticipated sets at joins.
pub fn anticipate_body(
    body: &Block,
    kills: &KillSets,
    volatiles: &std::collections::HashSet<bigfoot_bfj::Sym>,
    h_pre: &HashMap<StmtId, History>,
) -> ATables {
    anticipate_body_view(body, FactView::new(kills, volatiles), h_pre)
}

/// [`anticipate_body`] over a [`FactView`], which may log every
/// cross-method fact query into a read-set for incremental re-analysis.
pub fn anticipate_body_view(
    body: &Block,
    facts: FactView<'_>,
    h_pre: &HashMap<StmtId, History>,
) -> ATables {
    let mut bw = BackwardPass {
        facts,
        h_pre,
        tables: ATables::default(),
    };
    // Nothing is anticipated at method end.
    bw.block(body, Anticipated::new());
    bw.tables
}

struct BackwardPass<'a> {
    facts: FactView<'a>,
    h_pre: &'a HashMap<StmtId, History>,
    tables: ATables,
}

impl BackwardPass<'_> {
    /// Processes a block backward; returns the anticipated set at its
    /// start.
    fn block(&mut self, b: &Block, post: Anticipated) -> Anticipated {
        let mut a = post;
        for s in b.stmts.iter().rev() {
            a = self.stmt(s, a);
        }
        a
    }

    fn stmt(&mut self, s: &Stmt, post: Anticipated) -> Anticipated {
        self.tables.post.insert(s.id, post.clone());
        let pre = self.transfer(s, post);
        self.tables.pre.insert(s.id, pre.clone());
        pre
    }

    fn transfer(&mut self, s: &Stmt, mut a: Anticipated) -> Anticipated {
        match &s.kind {
            StmtKind::Skip | StmtKind::Check { .. } => a,
            StmtKind::Assign { x, e } => {
                a.subst(*x, e);
                a
            }
            StmtKind::Rename { fresh, old } => {
                a.subst(*fresh, &Expr::Var(*old));
                a
            }
            StmtKind::New { x, .. } | StmtKind::NewArray { x, .. } => {
                // A fresh allocation cannot alias anything anticipated;
                // facts naming x refer to the new object.
                a.kill_var(*x);
                a
            }
            StmtKind::ReadField { x, obj, field } => {
                if self.facts.is_volatile(*field) {
                    // Acquire-like: kills all anticipation.
                    return Anticipated::new();
                }
                a.kill_var(*x);
                a.add(PathFact {
                    path: APath::Field {
                        base: *obj,
                        field: *field,
                    },
                    kind: AccessKind::Read,
                });
                a
            }
            StmtKind::WriteField { obj, field, .. } => {
                if self.facts.is_volatile(*field) {
                    // Release-like: anticipation flows through unchanged,
                    // but the volatile access itself is never anticipated.
                    return a;
                }
                a.add(PathFact {
                    path: APath::Field {
                        base: *obj,
                        field: *field,
                    },
                    kind: AccessKind::Write,
                });
                a
            }
            StmtKind::ReadArr { x, arr, idx } => {
                a.kill_var(*x);
                if let Some(l) = linearize(idx) {
                    a.add(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Read,
                    });
                }
                a
            }
            StmtKind::WriteArr { arr, idx, .. } => {
                if let Some(l) = linearize(idx) {
                    a.add(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Write,
                    });
                }
                a
            }
            // Acquire-like operations kill all anticipation: a check
            // covering an earlier access must happen before the next
            // acquire, so accesses beyond it cannot stand in.
            StmtKind::Acquire { .. } | StmtKind::Join { .. } | StmtKind::Wait { .. } => {
                Anticipated::new()
            }
            StmtKind::Release { .. } | StmtKind::Notify { .. } => a,
            StmtKind::Fork { x, .. } => {
                a.kill_var(*x);
                a
            }
            StmtKind::Call { x, meth, .. } => {
                if self.facts.effects(*meth).acquires {
                    Anticipated::new()
                } else {
                    a.kill_var(*x);
                    a
                }
            }
            StmtKind::If { then_b, else_b, .. } => {
                let a1 = self.block(then_b, a.clone());
                let a2 = self.block(else_b, a);
                let h1 = then_b
                    .stmts
                    .first()
                    .and_then(|s| self.h_pre.get(&s.id))
                    .cloned()
                    .unwrap_or_default();
                let h2 = else_b
                    .stmts
                    .first()
                    .and_then(|s| self.h_pre.get(&s.id))
                    .cloned()
                    .unwrap_or_default();
                meet(&a1, &h1, &a2, &h2)
            }
            StmtKind::Loop { head, exit, tail } => {
                // Greatest fixed point: A_head must survive
                //   A_head = bw(head, meet(A_out, bw(tail, A_head)))
                // where A_out is the anticipated set after the loop (the
                // incoming `a`). Seed with the accesses the body performs.
                let h_ctx = head
                    .stmts
                    .first()
                    .or(tail.stmts.first())
                    .and_then(|s| self.h_pre.get(&s.id))
                    .cloned()
                    .unwrap_or_default();
                let mut a_head = seed_candidates(head, tail);
                for _ in 0..MAX_LOOP_ITERS {
                    let a_tail_pre = self.block_quiet(tail, a_head.clone());
                    let a_junction = meet(&a, &h_ctx, &a_tail_pre, &h_ctx);
                    let next =
                        intersect_entailed(&self.block_quiet(head, a_junction), &a_head, &h_ctx);
                    if next == a_head {
                        break;
                    }
                    a_head = next;
                }
                // Final pass to record per-statement tables with the
                // converged sets.
                let a_tail_pre = self.block(tail, a_head.clone());
                let a_junction = meet(&a, &h_ctx, &a_tail_pre, &h_ctx);
                let a_pre = self.block(head, a_junction);
                self.tables.loop_head.insert(s.id, a_head.clone());
                let _ = exit;
                a_pre
            }
        }
    }

    /// Like [`BackwardPass::block`] but without recording tables (used
    /// inside fixed-point iteration).
    fn block_quiet(&mut self, b: &Block, post: Anticipated) -> Anticipated {
        let saved_pre = self.tables.pre.clone();
        let saved_post = self.tables.post.clone();
        let saved_loops = self.tables.loop_head.clone();
        let r = self.block(b, post);
        self.tables.pre = saved_pre;
        self.tables.post = saved_post;
        self.tables.loop_head = saved_loops;
        r
    }
}

/// The meet of two anticipated sets under their histories: a fact survives
/// if both sides anticipate an access covering it.
fn meet(a1: &Anticipated, h1: &History, a2: &Anticipated, h2: &History) -> Anticipated {
    let mut kb1 = h1.kb();
    let mut kb2 = h2.kb();
    let mut out = Anticipated::new();
    for f in a1.facts.iter().chain(a2.facts.iter()) {
        if a1.covers(&mut kb1, f) && a2.covers(&mut kb2, f) {
            out.add(f.clone());
        }
    }
    out
}

/// Keeps the facts of `a` entailed by `bound` (forcing fixed-point
/// descent).
fn intersect_entailed(a: &Anticipated, bound: &Anticipated, h: &History) -> Anticipated {
    let mut kb = h.kb();
    let mut out = Anticipated::new();
    for f in &a.facts {
        if bound.covers(&mut kb, f) {
            out.add(f.clone());
        }
    }
    out
}

/// Seeds the loop-head anticipation with every access path syntactically
/// occurring in the loop body (the greatest plausible set, pruned by the
/// fixed point).
fn seed_candidates(head: &Block, tail: &Block) -> Anticipated {
    let mut a = Anticipated::new();
    collect(head, &mut a);
    collect(tail, &mut a);
    a
}

fn collect(b: &Block, a: &mut Anticipated) {
    // Note: volatile accesses never enter the seed — the fixed point would
    // prune them anyway (the transfer returns ∅ at the access), but keeping
    // them out makes convergence faster. The seed here is syntactic; the
    // GFP against the real transfer functions is what guarantees soundness.
    for s in &b.stmts {
        match &s.kind {
            StmtKind::ReadField { obj, field, .. } => a.add(PathFact {
                path: APath::Field {
                    base: *obj,
                    field: *field,
                },
                kind: AccessKind::Read,
            }),
            StmtKind::WriteField { obj, field, .. } => a.add(PathFact {
                path: APath::Field {
                    base: *obj,
                    field: *field,
                },
                kind: AccessKind::Write,
            }),
            StmtKind::ReadArr { arr, idx, .. } => {
                if let Some(l) = linearize(idx) {
                    a.add(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Read,
                    });
                }
            }
            StmtKind::WriteArr { arr, idx, .. } => {
                if let Some(l) = linearize(idx) {
                    a.add(PathFact {
                        path: APath::Arr {
                            base: *arr,
                            range: SymRange::singleton(l),
                        },
                        kind: AccessKind::Write,
                    });
                }
            }
            StmtKind::If { then_b, else_b, .. } => {
                collect(then_b, a);
                collect(else_b, a);
            }
            StmtKind::Loop { head, tail, .. } => {
                collect(head, a);
                collect(tail, a);
            }
            _ => {}
        }
    }
}

/// Convenience: the variable `x` (test helper naming).
#[cfg(test)]
pub(crate) fn var(x: &str) -> bigfoot_bfj::Sym {
    bigfoot_bfj::Sym::intern(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rename::freshen_body;
    use bigfoot_bfj::parse_program;

    /// Runs the backward pass on `main` of `src` (after freshening) and
    /// returns (body, tables).
    fn run(src: &str) -> (Block, ATables) {
        let mut p = parse_program(src).unwrap();
        let mut body = std::mem::take(&mut p.main);
        freshen_body(&mut body, &[]);
        p.main = body.clone();
        p.renumber();
        let body = p.main.clone();
        let kills = KillSets::compute(&p);
        let volatiles = crate::killset::volatile_fields(&p);
        let tables = anticipate_body(&body, &kills, &volatiles, &HashMap::new());
        (body, tables)
    }

    fn renders(a: &Anticipated) -> String {
        a.render()
    }

    #[test]
    fn straightline_anticipation_flows_backward() {
        let (body, t) = run("class C { field f; }
             main { c = new C; x = c.f; y = c.f; }");
        // Before the first read, c.f(r) is anticipated (from both reads).
        let first_read = &body.stmts[1];
        let pre = &t.pre[&first_read.id];
        assert!(renders(pre).contains("c.f(r)"), "{}", renders(pre));
    }

    #[test]
    fn acquire_kills_anticipation() {
        let (body, t) = run("class C { field f; }
             class L { }
             main { c = new C; l = new L; acq(l); x = c.f; rel(l); }");
        // Before the acquire nothing is anticipated.
        let acq = &body.stmts[2];
        assert!(matches!(acq.kind, StmtKind::Acquire { .. }));
        assert!(t.pre[&acq.id].facts.is_empty());
        // After the acquire, the read is anticipated.
        assert!(renders(&t.post[&acq.id]).contains("c.f(r)"));
    }

    #[test]
    fn release_preserves_anticipation() {
        let (body, t) = run("class C { field f; }
             class L { }
             main { c = new C; l = new L; acq(l); rel(l); x = c.f; }");
        // The read of c.f after the release is still anticipated before
        // the release (releases are not anticipation boundaries)...
        let rel = body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Release { .. }))
            .unwrap();
        assert!(renders(&t.pre[&rel.id]).contains("c.f(r)"));
        // ...but not before the acquire.
        let acq = body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Acquire { .. }))
            .unwrap();
        assert!(t.pre[&acq.id].facts.is_empty());
    }

    #[test]
    fn loop_head_anticipates_body_accesses() {
        // Fig. 6(b): at the loop head both b.f and a[i] are anticipated.
        let (body, t) = run("class B { field f; }
             main {
                 b = new B;
                 a = new_array(10);
                 i = 0;
                 while (i < 10) {
                     tv = b.f;
                     a[i] = tv;
                     i = i + 1;
                 }
             }");
        fn find_loop(b: &Block) -> Option<&Stmt> {
            for s in &b.stmts {
                match &s.kind {
                    StmtKind::Loop { .. } => return Some(s),
                    StmtKind::If { then_b, else_b, .. } => {
                        if let Some(l) = find_loop(then_b).or_else(|| find_loop(else_b)) {
                            return Some(l);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let loop_stmt = find_loop(&body).expect("rotated loop");
        let head = &t.loop_head[&loop_stmt.id];
        let txt = renders(head);
        assert!(txt.contains("b.f(r)"), "{txt}");
        assert!(txt.contains("a[i]"), "{txt}");
    }

    #[test]
    fn conditional_meet_keeps_common_accesses() {
        let (body, t) = run("class C { field f; field g; }
             main {
                 c = new C;
                 p = 1;
                 if (p > 0) { x = c.f; y = c.g; } else { z = c.f; }
             }");
        let if_stmt = body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::If { .. }))
            .unwrap();
        let pre = renders(&t.pre[&if_stmt.id]);
        assert!(pre.contains("c.f(r)"), "{pre}");
        assert!(!pre.contains("c.g"), "{pre}");
    }

    #[test]
    fn write_anticipation_covers_reads_at_meet() {
        // One branch writes c.f, the other reads it: the write covers the
        // read, so c.f(r) survives the meet.
        let (body, t) = run("class C { field f; }
             main {
                 c = new C;
                 p = 1;
                 v = 5;
                 if (p > 0) { c.f = v; } else { z = c.f; }
             }");
        let if_stmt = body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::If { .. }))
            .unwrap();
        let pre = renders(&t.pre[&if_stmt.id]);
        assert!(pre.contains("c.f(r)"), "{pre}");
        assert!(!pre.contains("c.f(w)"), "{pre}");
    }

    #[test]
    fn assignment_substitutes_into_ranges() {
        let (body, t) = run("main {
                 a = new_array(10);
                 j = 3;
                 i = j + 1;
                 x = a[i];
             }");
        // Before `i = j + 1`, the anticipated access is a[j + 1].
        let assign = body
            .stmts
            .iter()
            .find(|s| matches!(&s.kind, StmtKind::Assign { x, .. } if *x == var("i")))
            .unwrap();
        let pre = renders(&t.pre[&assign.id]);
        assert!(pre.contains("a[j + 1]"), "{pre}");
    }
}
