//! Fact read-set recording for incremental re-analysis.
//!
//! The per-method placement passes consume exactly two kinds of
//! *cross-method* facts: kill-set effect summaries of called methods
//! ([`KillSets::effects`]) and field volatility (`volatiles.contains`).
//! Everything else the forward and backward passes look at (histories,
//! anticipated sets, alias facts, the entailment KB) is derived from the
//! method's own body and is therefore covered by the body fingerprint.
//!
//! [`FactView`] wraps those two fact sources and optionally *logs* every
//! query into a [`ReadSet`]. The incremental driver records the read-set
//! during a cold analysis and persists its **domain** next to the
//! placement; a warm run replays the domain against the current facts
//! ([`ReadSet::fingerprint_against`]) and compares digests — placements
//! are reused only when every fact the original analysis read is
//! unchanged. This is the "record what you read, don't over-approximate
//! to the whole KB" design from the incremental-analysis issue.
//!
//! Read-set maps are keyed by interned *strings* (not [`Sym`] indices,
//! which are process-local) and iterate in sorted order, so their
//! fingerprints are stable across processes.

use crate::killset::{Effects, KillSets};
use bigfoot_bfj::Sym;
use bigfoot_obs::stable::{StableHasher, STABLE_HASH_VERSION};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};

/// Version of the read-set fingerprint byte mapping.
pub const READSET_VERSION: u32 = 1;

/// The cross-method facts one method's placement analysis read: the
/// effect summary observed for each callee name, and the volatility
/// observed for each field name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    /// Callee name → the effect summary the analysis saw for it.
    pub callees: BTreeMap<&'static str, Effects>,
    /// Field name → whether the analysis saw it as volatile.
    pub fields: BTreeMap<&'static str, bool>,
}

fn fold_effects(h: &mut StableHasher, e: Effects) {
    h.write_bool(e.acquires);
    h.write_bool(e.releases);
    h.write_bool(e.writes_heap);
}

impl ReadSet {
    /// Records that `name` was queried and `eff` observed.
    pub fn record_callee(&mut self, name: Sym, eff: Effects) {
        self.callees.insert(name.as_str(), eff);
    }

    /// Records that `field`'s volatility was queried.
    pub fn record_field(&mut self, field: Sym, volatile: bool) {
        self.fields.insert(field.as_str(), volatile);
    }

    /// Stable digest of the recorded (key, value) pairs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_with(|name| self.callees[name], |field| self.fields[field])
    }

    /// Re-evaluates this read-set's **domain** against the *current*
    /// facts and digests the observed values. A warm run hits the cache
    /// iff this equals the persisted [`Self::fingerprint`]: every fact
    /// the original analysis read is still answered identically.
    pub fn fingerprint_against(&self, kills: &KillSets, volatiles: &HashSet<Sym>) -> u64 {
        self.fingerprint_with(
            |name| kills.effects(Sym::intern(name)),
            |field| volatiles.contains(&Sym::intern(field)),
        )
    }

    fn fingerprint_with(
        &self,
        callee_val: impl Fn(&'static str) -> Effects,
        field_val: impl Fn(&'static str) -> bool,
    ) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(STABLE_HASH_VERSION);
        h.write_u32(READSET_VERSION);
        h.write_usize(self.callees.len());
        for &name in self.callees.keys() {
            h.write_str(name);
            fold_effects(&mut h, callee_val(name));
        }
        h.write_usize(self.fields.len());
        for &field in self.fields.keys() {
            h.write_str(field);
            h.write_bool(field_val(field));
        }
        h.finish()
    }
}

/// A view over the cross-method facts, optionally logging every query
/// into a [`ReadSet`]. `Copy`-cheap; passes hold it by value.
#[derive(Clone, Copy)]
pub struct FactView<'a> {
    kills: &'a KillSets,
    volatiles: &'a HashSet<Sym>,
    log: Option<&'a RefCell<ReadSet>>,
}

impl<'a> FactView<'a> {
    /// An untracked view (plain cold analysis, no recording overhead
    /// beyond one branch per query).
    pub fn new(kills: &'a KillSets, volatiles: &'a HashSet<Sym>) -> FactView<'a> {
        FactView {
            kills,
            volatiles,
            log: None,
        }
    }

    /// A view that records every query into `log`.
    pub fn tracked(
        kills: &'a KillSets,
        volatiles: &'a HashSet<Sym>,
        log: &'a RefCell<ReadSet>,
    ) -> FactView<'a> {
        FactView {
            kills,
            volatiles,
            log: Some(log),
        }
    }

    /// The effect summary of calling `name` (logged).
    pub fn effects(&self, name: Sym) -> Effects {
        let eff = self.kills.effects(name);
        if let Some(log) = self.log {
            log.borrow_mut().record_callee(name, eff);
        }
        eff
    }

    /// Whether `field` is volatile in any class (logged).
    pub fn is_volatile(&self, field: Sym) -> bool {
        let v = self.volatiles.contains(&field);
        if let Some(log) = self.log {
            log.borrow_mut().record_field(field, v);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfoot_bfj::parse_program;

    fn facts(src: &str) -> (KillSets, HashSet<Sym>) {
        let p = parse_program(src).unwrap();
        (KillSets::compute(&p), crate::killset::volatile_fields(&p))
    }

    #[test]
    fn tracked_view_records_queries() {
        let (kills, vols) =
            facts("class C { meth locks(l) { acq(l); rel(l); return 0; } } main { skip; }");
        let log = RefCell::new(ReadSet::default());
        let view = FactView::tracked(&kills, &vols, &log);
        let eff = view.effects(Sym::intern("locks"));
        assert!(eff.acquires);
        assert!(!view.is_volatile(Sym::intern("f")));
        let rs = log.into_inner();
        assert_eq!(rs.callees.len(), 1);
        assert_eq!(rs.fields.len(), 1);
        assert_eq!(rs.callees["locks"], eff);
        assert!(!rs.fields["f"]);
    }

    #[test]
    fn fingerprint_matches_replay_when_facts_unchanged() {
        let (kills, vols) =
            facts("class C { meth locks(l) { acq(l); rel(l); return 0; } } main { skip; }");
        let mut rs = ReadSet::default();
        rs.record_callee(Sym::intern("locks"), kills.effects(Sym::intern("locks")));
        rs.record_field(Sym::intern("f"), false);
        assert_eq!(rs.fingerprint(), rs.fingerprint_against(&kills, &vols));
    }

    #[test]
    fn fingerprint_diverges_when_a_read_fact_changes() {
        let (kills, vols) =
            facts("class C { meth locks(l) { acq(l); rel(l); return 0; } } main { skip; }");
        let (kills2, _) = facts("class C { meth locks(l) { return 0; } } main { skip; }");
        let mut rs = ReadSet::default();
        rs.record_callee(Sym::intern("locks"), kills.effects(Sym::intern("locks")));
        assert_ne!(
            rs.fingerprint_against(&kills, &vols),
            rs.fingerprint_against(&kills2, &vols)
        );
    }

    #[test]
    fn unread_fact_changes_do_not_invalidate() {
        let (kills, vols) = facts(
            "class C { meth a(l) { acq(l); rel(l); return 0; }
                       meth b(o) { o.f = 1; return 0; } }
             main { skip; }",
        );
        let (kills2, vols2) = facts(
            "class C { meth a(l) { acq(l); rel(l); return 0; }
                       meth b(o) { acq(o); rel(o); o.f = 1; return 0; } }
             main { skip; }",
        );
        // A method that only read `a`'s summary is insensitive to `b`.
        let mut rs = ReadSet::default();
        rs.record_callee(Sym::intern("a"), kills.effects(Sym::intern("a")));
        assert_eq!(
            rs.fingerprint_against(&kills, &vols),
            rs.fingerprint_against(&kills2, &vols2)
        );
    }
}
