//! `bfc` — the BigFoot compiler/checker command line.
//!
//! ```text
//! bfc instrument <file.bfj> [--mode bigfoot|redcard|naive]
//! bfc check <file.bfj> [--detector bigfoot|fasttrack|redcard|slimstate|slimcard|djit]
//!                      [--seed N] [--schedules N]
//! bfc run <file.bfj>
//! bfc stats <file.bfj>
//! bfc trace <file.bfj> [--seed N] [--limit N]
//! ```
//!
//! * `instrument` prints the instrumented program.
//! * `check` executes the program under a detector (optionally across
//!   several random schedules) and reports any data races.
//! * `run` executes the program uninstrumented and prints `main`'s
//!   final integer variables.
//! * `stats` prints the static-analysis summary and per-detector work for
//!   one run.

use bigfoot::{instrument, naive_instrument, redcard_instrument};
use bigfoot_bfj::{
    parse_program, pretty, Interp, NullSink, Program, SchedPolicy, Tid, Value,
};
use bigfoot_detectors::{Detector, DjitDetector, Stats};
use std::io::Write;
use std::process::ExitCode;

/// `outln!` that tolerates a closed stdout (e.g. piping into `head`):
/// on a broken pipe the process exits quietly instead of panicking.
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if writeln!(out, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// `print!` variant of [`outln!`].
macro_rules! outp {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if write!(out, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bfc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  bfc instrument <file.bfj> [--mode bigfoot|redcard|naive]");
            eprintln!("  bfc check <file.bfj> [--detector NAME] [--seed N] [--schedules N]");
            eprintln!("  bfc run <file.bfj>");
            eprintln!("  bfc stats <file.bfj>");
            eprintln!("  bfc trace <file.bfj> [--seed N] [--limit N]");
            ExitCode::from(2)
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    let file = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .ok_or("missing input file")?;
    let program = load(file)?;
    match cmd.as_str() {
        "instrument" => {
            let mode = flag(args, "--mode").unwrap_or_else(|| "bigfoot".into());
            let out = match mode.as_str() {
                "bigfoot" => instrument(&program).program,
                "redcard" => redcard_instrument(&program).0,
                "naive" => naive_instrument(&program),
                other => return Err(format!("unknown mode `{other}`")),
            };
            outp!("{}", pretty(&out));
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let mut interp = Interp::new(&program, SchedPolicy::default());
            interp
                .run(&mut NullSink)
                .map_err(|e| format!("runtime error: {e}"))?;
            if let Some(env) = interp.final_env(Tid(0)) {
                let mut vars: Vec<_> = env
                    .iter()
                    .filter_map(|(k, v)| match v {
                        Value::Int(n) => Some((k.as_str(), *n)),
                        _ => None,
                    })
                    .collect();
                vars.sort();
                for (k, v) in vars {
                    if !k.contains('$') && !k.contains('\'') {
                        outln!("{k} = {v}");
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let which = flag(args, "--detector").unwrap_or_else(|| "bigfoot".into());
            let seed: u64 = match flag(args, "--seed") {
                Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`"))?,
                None => 1,
            };
            let schedules: u64 = match flag(args, "--schedules") {
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("invalid --schedules `{s}`"))?,
                None => 1,
            };
            let mut any_race = false;
            for i in 0..schedules {
                let policy = if schedules == 1 && seed == 1 {
                    SchedPolicy::default()
                } else {
                    SchedPolicy::Random {
                        seed: seed + i,
                        switch_inv: 2,
                    }
                };
                let stats = check_once(&program, &which, policy)?;
                if stats.has_races() {
                    any_race = true;
                    outln!("schedule {}: {} race(s)", i + 1, stats.races.len());
                    for race in &stats.races {
                        outln!("  {} — {}", race.target, race.info);
                    }
                } else {
                    outln!(
                        "schedule {}: no races ({} accesses, {} checks, {} shadow ops)",
                        i + 1,
                        stats.accesses(),
                        stats.checks,
                        stats.shadow_ops
                    );
                }
            }
            Ok(if any_race {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "stats" => {
            let inst = instrument(&program);
            outln!(
                "static analysis: {} methods, {:.3} ms/method, {} checks inserted",
                inst.stats.methods,
                inst.stats.time_per_method().as_secs_f64() * 1e3,
                inst.stats.checks_inserted
            );
            let mut bf = Detector::bigfoot(inst.proxies.clone());
            Interp::new(&inst.program, SchedPolicy::default())
                .run(&mut bf)
                .map_err(|e| format!("runtime error: {e}"))?;
            let bf = bf.finish();
            let mut ft = Detector::fasttrack();
            Interp::new(&program, SchedPolicy::default())
                .run(&mut ft)
                .map_err(|e| format!("runtime error: {e}"))?;
            let ft = ft.finish();
            outln!("{:<20} {:>12} {:>12}", "", "FastTrack", "BigFoot");
            outln!("{:<20} {:>12} {:>12}", "accesses", ft.accesses(), bf.accesses());
            outln!("{:<20} {:>12} {:>12}", "checks", ft.checks, bf.checks);
            outln!(
                "{:<20} {:>12.3} {:>12.3}",
                "check ratio",
                ft.check_ratio(),
                bf.check_ratio()
            );
            outln!("{:<20} {:>12} {:>12}", "shadow ops", ft.shadow_ops, bf.shadow_ops);
            outln!(
                "{:<20} {:>12} {:>12}",
                "shadow space", ft.shadow_space_end, bf.shadow_space_end
            );
            outln!("{:<20} {:>12} {:>12}", "races", ft.races.len(), bf.races.len());
            Ok(ExitCode::SUCCESS)
        }
        "trace" => {
            // Print the instrumented program's event stream — the exact
            // view a dynamic detector gets.
            let seed: u64 = match flag(args, "--seed") {
                Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`"))?,
                None => 0,
            };
            let limit: usize = match flag(args, "--limit") {
                Some(s) => s.parse().map_err(|_| format!("invalid --limit `{s}`"))?,
                None => 200,
            };
            let inst = instrument(&program);
            let policy = if seed == 0 {
                SchedPolicy::default()
            } else {
                SchedPolicy::Random {
                    seed,
                    switch_inv: 2,
                }
            };
            let mut sink = bigfoot_bfj::RecordingSink::default();
            Interp::new(&inst.program, policy)
                .run(&mut sink)
                .map_err(|e| format!("runtime error: {e}"))?;
            let total = sink.events.len();
            for ev in sink.events.iter().take(limit) {
                outln!("{ev:?}");
            }
            if total > limit {
                outln!("… {} more events (raise --limit to see them)", total - limit);
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Runs one schedule under the named detector configuration.
fn check_once(program: &Program, which: &str, policy: SchedPolicy) -> Result<Stats, String> {
    let run_detector = |prog: &Program, mut det: Detector| -> Result<Stats, String> {
        Interp::new(prog, policy)
            .run(&mut det)
            .map_err(|e| format!("runtime error: {e}"))?;
        Ok(det.finish())
    };
    match which {
        "bigfoot" => {
            let inst = instrument(program);
            run_detector(&inst.program, Detector::bigfoot(inst.proxies.clone()))
        }
        "fasttrack" => run_detector(program, Detector::fasttrack()),
        "slimstate" => run_detector(program, Detector::slimstate()),
        "redcard" => {
            let (rc, proxies) = redcard_instrument(program);
            run_detector(&rc, Detector::redcard(proxies))
        }
        "slimcard" => {
            let (rc, proxies) = redcard_instrument(program);
            run_detector(&rc, Detector::slimcard(proxies))
        }
        "djit" => {
            let mut det = DjitDetector::new();
            Interp::new(program, policy)
                .run(&mut det)
                .map_err(|e| format!("runtime error: {e}"))?;
            Ok(det.finish())
        }
        other => Err(format!("unknown detector `{other}`")),
    }
}
