//! BFPC decode hardening: untrusted placement-cache bytes must always
//! produce a typed [`CacheError`] — never a panic, a hang, an
//! attacker-chosen allocation, or (worst of all) a silently-wrong
//! placement. Same discipline as the BFTR/BFTC trace codecs
//! (`crates/bfj/tests/trace_hardening.rs`).
//!
//! The cache below is produced by a real incremental run over a program
//! that exercises every statement, expression, and path form the codec
//! can emit, then gets systematically damaged: truncated at every byte
//! boundary, mutated at every byte position, and spliced with
//! hand-crafted corrupt payloads. A separate set of tests drives the
//! full [`instrument_incremental`] driver over damaged caches and
//! asserts the fallback is a clean cold run with identical output and a
//! `static.cache.invalid` counter — the user-visible hardening contract.

use bigfoot::{
    instrument, instrument_incremental, CacheError, InstrumentOptions, PlacementCache, CACHE_FILE,
    CACHE_MAGIC,
};
use bigfoot_bfj::parse_program;

/// A program whose placements exercise every codec form: field and array
/// accesses (strided ranges after coalescing), conditionals, loops,
/// locks, volatiles, calls, forks, waits, renames, and checks.
const RICH: &str = "
class C {
    field x; field y; volatile v;
    meth poke(l, a) {
        acq(l);
        this.x = 1;
        this.y = this.x + 2;
        i = 0;
        while (i < 8) { a[i] = i; i = i + 1; }
        if (i < 9) { q = a[3]; } else { q = 0 - 1; }
        this.v = q;
        w = this.v;
        wait(l);
        notify(l);
        rel(l);
        return w;
    }
    meth relay(l, a) { r = this.poke(l, a); return r; }
}
main {
    c = new C; l = new C;
    a = new_array(8);
    fork t = c.poke(l, a);
    join(t);
    s = c.relay(l, a);
}";

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bfpc-harden-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Encodes a real cache by running the incremental pipeline once.
fn recorded_cache() -> Vec<u8> {
    let p = parse_program(RICH).expect("parse");
    let dir = tmp_dir("record");
    let (_, stats) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    assert_eq!(stats.misses, 3, "two methods plus main analyzed cold");
    let bytes = std::fs::read(dir.join(CACHE_FILE)).expect("cache written");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn intact_cache_decodes_completely() {
    let bytes = recorded_cache();
    let cache = PlacementCache::decode(&bytes).expect("intact cache");
    assert_eq!(cache.entries.len(), 3);
    assert!(cache.entries.contains_key("main"));
    assert!(cache.entries.contains_key("C.poke#0"));
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = recorded_cache();
    for len in 0..bytes.len() {
        match PlacementCache::decode(&bytes[..len]) {
            Ok(c) => panic!(
                "truncation at {len}/{} decoded as {} entries",
                bytes.len(),
                c.entries.len()
            ),
            Err(
                CacheError::BadMagic
                | CacheError::UnsupportedVersion { .. }
                | CacheError::Truncated
                | CacheError::BadTag { .. }
                | CacheError::TooLarge { .. }
                | CacheError::TrailingBytes { .. },
            ) => {}
        }
    }
}

#[test]
fn every_single_byte_mutation_decodes_or_errors() {
    let bytes = recorded_cache();
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            // Either outcome is fine; what must not happen is a panic,
            // an unbounded loop, or an unbounded allocation. (A mutation
            // that decodes is caught downstream by the fingerprint
            // checks — see driver tests below.)
            let _ = PlacementCache::decode(&bad);
        }
    }
}

#[test]
fn spliced_corrupt_payloads_are_typed_errors() {
    // Oversized LEB128 varint as the entry count.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&CACHE_MAGIC);
    oversized.extend_from_slice(&1u32.to_le_bytes());
    oversized.extend_from_slice(&[0u8; 16]); // config + volatiles fps
    oversized.extend_from_slice(&[0xff; 10]); // 70-bit varint
    assert!(matches!(
        PlacementCache::decode(&oversized),
        Err(CacheError::TooLarge { .. })
    ));

    // Absurd claimed entry count with no payload.
    let mut absurd = Vec::new();
    absurd.extend_from_slice(&CACHE_MAGIC);
    absurd.extend_from_slice(&1u32.to_le_bytes());
    absurd.extend_from_slice(&[0u8; 16]);
    absurd.extend_from_slice(&[0xff, 0xff, 0xff, 0x7f]); // ~268M entries
    assert!(matches!(
        PlacementCache::decode(&absurd),
        Err(CacheError::TooLarge { .. } | CacheError::Truncated)
    ));

    // Empty file and bare magic.
    assert_eq!(PlacementCache::decode(&[]), Err(CacheError::Truncated));
    assert_eq!(
        PlacementCache::decode(&CACHE_MAGIC),
        Err(CacheError::Truncated)
    );
}

/// Writes `bytes` as the cache file in a fresh dir.
fn plant_cache(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(CACHE_FILE), bytes).unwrap();
    dir
}

/// The driver-level contract: a damaged cache file must yield a clean
/// cold run — identical instrumented output, `cache_invalid` flagged,
/// and the `static.cache.invalid` counter bumped — never a panic or a
/// wrong placement.
fn assert_clean_cold_fallback(tag: &str, bytes: &[u8]) {
    // The obs registry is global; serialize the counter-asserting tests
    // so parallel test threads cannot interleave counts.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program(RICH).unwrap();
    let expected = instrument(&p);
    let dir = plant_cache(tag, bytes);
    let _guard = bigfoot_obs::EnabledGuard::new();
    bigfoot_obs::reset();
    let (inst, stats) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    assert!(stats.cache_invalid, "damage must be detected ({tag})");
    assert!(!stats.warm);
    assert_eq!(stats.hits, 0);
    assert_eq!(
        bigfoot_obs::snapshot().counter("static.cache.invalid"),
        1,
        "invalid-cache counter must be bumped ({tag})"
    );
    assert_eq!(
        expected.program, inst.program,
        "fallback must be byte-identical to a cold run ({tag})"
    );
    // The damaged file is replaced by a valid cache; the next run warms.
    let (_, stats2) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    assert!(stats2.warm, "cache must self-heal after damage ({tag})");
    assert_eq!(stats2.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_falls_back_to_cold_run() {
    let mut bytes = recorded_cache();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    // The mutation may or may not break decoding at the byte level; force
    // a guaranteed-structural break by also truncating.
    bytes.truncate(bytes.len() - 3);
    assert_clean_cold_fallback("corrupt", &bytes);
}

#[test]
fn truncated_cache_falls_back_to_cold_run() {
    let bytes = recorded_cache();
    assert_clean_cold_fallback("truncated", &bytes[..bytes.len() * 2 / 3]);
}

#[test]
fn wrong_version_cache_falls_back_to_cold_run() {
    let mut bytes = recorded_cache();
    bytes[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    assert_clean_cold_fallback("version", &bytes);
}

#[test]
fn foreign_endianness_header_falls_back_to_cold_run() {
    let mut bytes = recorded_cache();
    // A big-endian writer would emit the version field byte-swapped.
    bytes[4..8].reverse();
    assert_clean_cold_fallback("endianness", &bytes);
}

#[test]
fn garbage_file_falls_back_to_cold_run() {
    assert_clean_cold_fallback("garbage", b"not a cache at all");
}
