//! Incremental pipeline behavior: warm runs must replay to byte-identical
//! placements, skip unchanged methods, and invalidate exactly the
//! dirtied dependency cone.

use bigfoot::{instrument, instrument_incremental, InstrumentOptions};
use bigfoot_bfj::{mutate, parse_program, pretty, MutationKind, Program};

const SRC: &str = "
class Point {
    field x; field y;
    meth get(o) { a = this.x; b = this.y; return a + b; }
    meth set(dx, dy) { this.x = dx; this.y = dy; return 0; }
    meth sum(o) { s = this.get(o); return s; }
}
class Locker {
    field n;
    meth bump(l) { acq(l); this.n = this.n + 1; rel(l); return this.n; }
}
main {
    p = new Point;
    l = new Locker;
    r = p.set(1, 2);
    s = p.sum(p);
    t = l.bump(l);
}";

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bigfoot-inc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn parse(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn cold_incremental_matches_plain_instrument() {
    let p = parse(SRC);
    let dir = tmp_dir("cold");
    let plain = instrument(&p);
    let (inc, stats) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    assert!(!stats.warm);
    assert_eq!(stats.hits, 0);
    assert_eq!(pretty(&plain.program), pretty(&inc.program));
    assert_eq!(plain.program, inc.program);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unchanged_warm_run_skips_everything_and_is_identical() {
    let p = parse(SRC);
    let dir = tmp_dir("warm");
    let (cold, _) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    let (warm, stats) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    assert!(stats.warm);
    assert_eq!(
        stats.misses, 0,
        "nothing changed, nothing should re-analyze"
    );
    assert_eq!(stats.hits, 5, "four methods plus main");
    assert_eq!(cold.program, warm.program);
    assert_eq!(pretty(&cold.program), pretty(&warm.program));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_fact_edit_reanalyzes_only_the_edited_method() {
    let dir = tmp_dir("arith");
    let (_, _) = instrument_incremental(&parse(SRC), InstrumentOptions::default(), &dir);
    let mut edited = parse(SRC);
    let name = mutate(&mut edited, 0, MutationKind::ArithTweak, 11).unwrap();
    assert_eq!(name, "Point.get");
    let (warm, stats) = instrument_incremental(&edited, InstrumentOptions::default(), &dir);
    assert!(stats.warm);
    assert_eq!(stats.misses, 1, "an arithmetic tweak dirties one method");
    assert_eq!(stats.hits, 4);
    // Byte-identical to a cold run of the edited program.
    let cold = instrument(&edited);
    assert_eq!(cold.program, warm.program);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fact_edit_invalidates_the_dependency_cone() {
    let dir = tmp_dir("lock");
    let (_, _) = instrument_incremental(&parse(SRC), InstrumentOptions::default(), &dir);
    let mut edited = parse(SRC);
    // Add a lock to Point.get: its callers (sum, and main transitively
    // through sum's summary... main calls set/sum/bump) see changed
    // effect summaries only if they read get's summary.
    let name = mutate(&mut edited, 0, MutationKind::AddLock, 3).unwrap();
    assert_eq!(name, "Point.get");
    let (warm, stats) = instrument_incremental(&edited, InstrumentOptions::default(), &dir);
    assert!(stats.warm);
    // get itself (body changed) + sum (read get's effects). main calls
    // sum, whose *summary* changed too, so main is also dirtied.
    assert!(
        stats.misses >= 2,
        "cone must include the edited method and its callers, got {stats:?}"
    );
    assert!(
        stats.hits >= 2,
        "methods outside the cone (set, bump, get's non-callers) must hit, got {stats:?}"
    );
    let cold = instrument(&edited);
    assert_eq!(cold.program, warm.program);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_is_a_full_cold_run_not_a_wrong_replay() {
    let p = parse(SRC);
    let dir = tmp_dir("config");
    let (_, _) = instrument_incremental(&p, InstrumentOptions::default(), &dir);
    let no_coalesce = InstrumentOptions {
        coalescing: false,
        ..InstrumentOptions::default()
    };
    let (warm, stats) = instrument_incremental(&p, no_coalesce, &dir);
    assert!(!stats.warm, "different config must not reuse the cache");
    assert_eq!(stats.hits, 0);
    let cold = bigfoot::instrument_with(&p, no_coalesce);
    assert_eq!(cold.program, warm.program);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn volatile_declaration_change_invalidates_readers() {
    let base = "
class C {
    field f;
    meth touch(o) { o.f = 1; v = o.f; return v; }
}
main { c = new C; r = c.touch(c); }";
    let volatile_f = base.replace("field f;", "volatile f;");
    let dir = tmp_dir("volatile");
    let (_, _) = instrument_incremental(&parse(base), InstrumentOptions::default(), &dir);
    let edited = parse(&volatile_f);
    let (warm, stats) = instrument_incremental(&edited, InstrumentOptions::default(), &dir);
    // `touch` read f's volatility; it must re-analyze.
    assert!(stats.misses >= 1, "{stats:?}");
    let cold = instrument(&edited);
    assert_eq!(cold.program, warm.program);
    let _ = std::fs::remove_dir_all(&dir);
}
