//! Golden tests reproducing the paper's worked examples: Fig. 1 (check
//! placement for `Point.move` / `movePts`), Fig. 3 (one check for three
//! accesses), and Fig. 6 (conditional and loop contexts).

use bigfoot::instrument;
use bigfoot_bfj::{parse_program, pretty, Program};

fn instrumented_text(src: &str) -> (Program, String) {
    let p = parse_program(src).expect("parse");
    let inst = instrument(&p);
    let text = pretty(&inst.program);
    (inst.program, text)
}

/// Figure 1, left: the standard approach needs six checks in `move`;
/// BigFoot needs one coalesced write check.
#[test]
fn fig1_move_single_coalesced_check() {
    let (_, text) = instrumented_text(
        "class Point {
             field x; field y; field z;
             meth move(dx, dy, dz) {
                 tmp = this.x;
                 this.x = tmp + dx;
                 tmp = this.y;
                 this.y = tmp + dy;
                 tmp = this.z;
                 this.z = tmp + dz;
                 return 0;
             }
         }
         main { p = new Point; r = p.move(1, 2, 3); }",
    );
    // Exactly one check in `move` (none in main: the call is sync-free
    // and main has its own terminal check for nothing else... the
    // accesses all happen in move).
    assert!(text.contains("check(w: this.x/y/z);"), "{text}");
    assert_eq!(text.matches("check(").count(), 1, "{text}");
}

/// Figure 1, right: the loop over `a[lo..hi]` induces one coalesced read
/// check after the loop instead of a check per element.
#[test]
fn fig1_movepts_coalesced_array_check() {
    let (_, text) = instrumented_text(
        "class Point {
             field x; field y; field z;
             meth move(dx, dy, dz) {
                 this.x = this.x + dx;
                 this.y = this.y + dy;
                 this.z = this.z + dz;
                 return 0;
             }
             meth movePts(a, lo, hi) {
                 for (i = lo; i < hi; i = i + 1) {
                     p = a[i];
                     r = p.move(1, 1, 1);
                 }
                 return 0;
             }
         }
         main {
             a = new_array(4);
             for (i = 0; i < 4; i = i + 1) { a[i] = new Point; }
             pt = a[0];
             r = pt.movePts(a, 0, 4);
         }",
    );
    // movePts contains a single read check over the whole traversed
    // range, placed after the loop.
    assert!(text.contains("check(r: a[lo..i' + 1]);"), "{text}");
    // No check inside the movePts loop body: the loop's only checks are
    // after it.
    let movepts = text
        .split("meth movePts")
        .nth(1)
        .unwrap()
        .split("meth ")
        .next()
        .unwrap();
    let loop_body = movepts.split("loop {").nth(1).unwrap();
    let before_exit = loop_body.split("} exit").next().unwrap();
    assert!(
        !before_exit.contains("check("),
        "loop body has checks: {movepts}"
    );
}

/// Figure 3: three reads of `b.f` around two critical sections need
/// exactly one check, placed before the second acquire.
#[test]
fn fig3_single_check_before_second_acquire() {
    let (_, text) = instrumented_text(
        "class B { field f; }
         class L { }
         main {
             b = new B;
             lock = new L;
             acq(lock);
             x = b.f;
             rel(lock);
             y = b.f;
             acq(lock);
             z = b.f;
             rel(lock);
         }",
    );
    assert_eq!(text.matches("check(").count(), 1, "{text}");
    // The check sits between the unsynchronized read and the second
    // acquire.
    let pos_check = text.find("check(r: b.f)").expect("check present");
    let pos_read_y = text.find("y = b.f").unwrap();
    let second_acq = text.rfind("acq(lock)").unwrap();
    assert!(pos_read_y < pos_check && pos_check < second_acq, "{text}");
}

/// Figure 6(a): the branch-local access `b.g` is checked at the end of its
/// branch; the access `b.f` (anticipated after the if) is checked once,
/// after the join.
#[test]
fn fig6a_conditional_placement() {
    // The branch condition must be statically unknown (a parameter), or
    // the dead-branch entailment defers everything to one merged check.
    let (_, text) = instrumented_text(
        "class B {
             field f; field g;
             meth fig6a(i, b) {
                 if (i < 0) {
                     y = b.g;
                 } else {
                     x = b.f;
                 }
                 z = b.f;
                 return z;
             }
         }
         main {
             b = new B;
             r = b.fig6a(0 - 1, b);
         }",
    );
    // b.g is checked inside the then-branch; b.f once at the end.
    assert!(text.contains("check(r: b.g)"), "{text}");
    assert_eq!(text.matches("check(r: b.f)").count(), 1, "{text}");
    // The else-branch has no check for b.f (it is anticipated by the
    // later read).
    let else_part = text.split("} else {").nth(1).unwrap();
    let else_block = else_part.split('}').next().unwrap();
    assert!(!else_block.contains("check"), "{text}");
}

/// Figure 6(b): all checks for the loop move after it, coalesced into a
/// range check on the array plus a field check.
#[test]
fn fig6b_loop_checks_move_out() {
    let (_, text) = instrumented_text(
        "class B { field f; }
         main {
             b = new B;
             a = new_array(10);
             i = 0;
             while (i < 10) {
                 t = b.f;
                 a[i] = t;
                 i = i + 1;
             }
         }",
    );
    // No check inside the loop.
    let loop_body = text.split("loop {").nth(1).unwrap();
    let inside = loop_body.split("} exit").next().unwrap();
    assert!(!inside.contains("check("), "{text}");
    // One check statement covering the array range and the field.
    assert_eq!(text.matches("check(").count(), 1, "{text}");
    assert!(text.contains("w: a[0..i' + 1]"), "{text}");
    assert!(text.contains("r: b.f"), "{text}");
}

/// Strided loops coalesce into strided range checks.
#[test]
fn strided_loop_coalesces() {
    let (_, text) = instrumented_text(
        "main {
             a = new_array(100);
             for (i = 0; i < 100; i = i + 2) { a[i] = i; }
         }",
    );
    assert_eq!(text.matches("check(").count(), 1, "{text}");
    assert!(text.contains(":2]"), "expected strided check: {text}");
}

/// The §5 alias example: two reads through distinct locals of the same
/// field need only one check for the dependent accesses.
#[test]
fn alias_expressions_dedup_checks() {
    let (_, text) = instrumented_text(
        "class A { field f; }
         class B { field g; }
         main {
             a = new A;
             b0 = new B;
             a.f = b0;
             x = a.f;
             s = x.g;
             y = a.f;
             t = y.g;
         }",
    );
    // x and y alias (both loaded from a.f with no intervening write), so
    // the check on x.g covers the access to y.g and no y.g check exists.
    assert!(text.contains("r: x.g"), "{text}");
    assert!(!text.contains("y.g)") && !text.contains("r: y.g"), "{text}");
    assert_eq!(text.matches("check(").count(), 1, "{text}");
}

/// Redundant re-reads in a single span need one check (RedCard-style
/// elimination subsumed by BigFoot).
#[test]
fn redundant_checks_eliminated() {
    let (_, text) = instrumented_text(
        "class C { field f; }
         main {
             c = new C;
             x = c.f;
             y = c.f;
             z = c.f;
         }",
    );
    assert_eq!(text.matches("check(").count(), 1, "{text}");
}

/// Checks cannot move across a release (legitimacy), so a locked write is
/// checked inside the critical section.
#[test]
fn checks_stay_inside_critical_sections() {
    let (_, text) = instrumented_text(
        "class C { field f; }
         class L { }
         main {
             c = new C;
             l = new L;
             acq(l);
             c.f = 1;
             rel(l);
         }",
    );
    let pos_check = text.find("check(w: c.f)").expect("check present");
    let pos_rel = text.find("rel(l)").unwrap();
    assert!(
        pos_check < pos_rel,
        "check must precede the release: {text}"
    );
}

/// Calls to methods that synchronize force checks before the call; calls
/// to sync-free methods do not.
#[test]
fn call_killsets_gate_check_motion() {
    let (_, text) = instrumented_text(
        "class H {
             field f;
             meth pure(v) { return v + 1; }
             meth locked(l) { acq(l); rel(l); return 0; }
         }
         class L { }
         main {
             h = new H;
             l = new L;
             x = h.f;
             r1 = h.pure(x);
             y = h.f;
             r2 = h.locked(l);
             z = h.f;
         }",
    );
    // The reads before `pure` defer past it (coalescing with the read
    // after); the reads before `locked` must be checked before the call.
    let pos_locked_call = text.find(".locked(").unwrap();
    let first_check = text.find("check(r: h.f)").expect("check present");
    assert!(first_check < pos_locked_call, "{text}");
    // Total: one check before the locked call, one for the final read.
    assert_eq!(text.matches("check(").count(), 2, "{text}");
}

/// Instrumented programs still run and compute the same results.
#[test]
fn instrumentation_preserves_semantics() {
    use bigfoot_bfj::{Interp, NullSink, SchedPolicy, Sym, Tid, Value};
    let src = "
        class Acc {
            field total;
            meth add(v) { this.total = this.total + v; return this.total; }
        }
        main {
            acc = new Acc;
            s = 0;
            for (i = 1; i <= 10; i = i + 1) {
                s = acc.add(i);
            }
        }";
    let p = parse_program(src).unwrap();
    let inst = instrument(&p);
    for prog in [&p, &inst.program] {
        let mut interp = Interp::new(prog, SchedPolicy::default());
        interp.run(&mut NullSink).unwrap();
        assert_eq!(
            interp.final_env(Tid(0)).unwrap()[&Sym::intern("s")],
            Value::Int(55)
        );
    }
}
