//! Precision validation (§2, §5, §6): BigFoot-instrumented programs have
//! *precise checks* (every access covered, every check legitimate), and
//! every detector configuration reports the same races as FastTrack on the
//! same trace — across hand-written programs, random programs, and many
//! schedules.

use bigfoot::{instrument, redcard_instrument};
use bigfoot_bfj::{parse_program, Event, EventSink, Interp, RecordingSink, SchedPolicy};
use bigfoot_detectors::{verify_precise_checks, Detector};
use bigfoot_workloads::{random_program, RandomConfig};

/// Runs `program` deterministically and returns the trace.
fn trace_of(src_program: &bigfoot_bfj::Program, policy: SchedPolicy) -> Vec<Event> {
    let mut sink = RecordingSink::default();
    Interp::new(src_program, policy)
        .with_max_steps(50_000_000)
        .run(&mut sink)
        .expect("run");
    sink.events
}

/// Feeds a recorded trace to a detector.
fn replay(events: &[Event], mut det: Detector) -> bigfoot_detectors::Stats {
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

/// The hand-written scenarios: racy and race-free variants of
/// field/array/lock/fork patterns.
fn scenarios() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "racy_field",
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 fork t1 = c.poke(1);
                 fork t2 = c.poke(2);
                 join(t1); join(t2);
             }",
        ),
        (
            "locked_field",
            "class C { field x; meth poke(l, v) { acq(l); this.x = this.x + v; rel(l); return 0; } }
             class L { }
             main {
                 c = new C;
                 l = new L;
                 fork t1 = c.poke(l, 1);
                 fork t2 = c.poke(l, 2);
                 join(t1); join(t2);
             }",
        ),
        (
            "racy_array_overlap",
            "class W { meth fill(a, lo, hi, v) {
                 for (i = lo; i < hi; i = i + 1) { a[i] = v; }
                 return 0; } }
             main {
                 w = new W;
                 a = new_array(40);
                 fork t1 = w.fill(a, 0, 30, 1);
                 fork t2 = w.fill(a, 20, 40, 2);
                 join(t1); join(t2);
             }",
        ),
        (
            "disjoint_array",
            "class W { meth fill(a, lo, hi, v) {
                 for (i = lo; i < hi; i = i + 1) { a[i] = v; }
                 return 0; } }
             main {
                 w = new W;
                 a = new_array(40);
                 fork t1 = w.fill(a, 0, 20, 1);
                 fork t2 = w.fill(a, 20, 40, 2);
                 join(t1); join(t2);
             }",
        ),
        (
            "fork_join_ordered",
            "class W { field acc;
                 meth sum(a) {
                     s = 0;
                     for (i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                     this.acc = s;
                     return s;
                 } }
             main {
                 w = new W;
                 a = new_array(16);
                 for (i = 0; i < 16; i = i + 1) { a[i] = i; }
                 fork t = w.sum(a);
                 join(t);
                 r = w.acc;
             }",
        ),
        (
            "read_shared",
            "class W { meth scan(a) {
                 s = 0;
                 for (i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                 return s; } }
             main {
                 w = new W;
                 a = new_array(32);
                 for (i = 0; i < 32; i = i + 1) { a[i] = i * 2; }
                 fork t1 = w.scan(a);
                 fork t2 = w.scan(a);
                 join(t1); join(t2);
             }",
        ),
        (
            "racy_read_write",
            "class W {
                 meth scan(a) {
                     s = 0;
                     for (i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                     return s;
                 }
                 meth fill(a) {
                     for (i = 0; i < a.length; i = i + 1) { a[i] = i; }
                     return 0;
                 } }
             main {
                 w = new W;
                 a = new_array(32);
                 fork t1 = w.scan(a);
                 fork t2 = w.fill(a);
                 join(t1); join(t2);
             }",
        ),
        (
            "strided_disjoint",
            "class W { meth fill(a, off) {
                 for (i = off; i < a.length; i = i + 2) { a[i] = off; }
                 return 0; } }
             main {
                 w = new W;
                 a = new_array(64);
                 fork t1 = w.fill(a, 0);
                 fork t2 = w.fill(a, 1);
                 join(t1); join(t2);
             }",
        ),
    ]
}

/// Every BigFoot-instrumented scenario trace has precise checks.
#[test]
fn bigfoot_placement_is_precise_on_scenarios() {
    for (name, src) in scenarios() {
        let p = parse_program(src).unwrap();
        let inst = instrument(&p);
        for policy in [
            SchedPolicy::RoundRobin { quantum: 1 },
            SchedPolicy::RoundRobin { quantum: 64 },
            SchedPolicy::Random {
                seed: 42,
                switch_inv: 3,
            },
        ] {
            let events = trace_of(&inst.program, policy);
            verify_precise_checks(&events).unwrap_or_else(|e| {
                panic!(
                    "{name}: imprecise checks: {e}\n{}",
                    bigfoot_bfj::pretty(&inst.program)
                )
            });
        }
    }
}

/// RedCard placement is also precise (per-access, redundancy-eliminated).
#[test]
fn redcard_placement_is_precise_on_scenarios() {
    for (name, src) in scenarios() {
        let p = parse_program(src).unwrap();
        let (rc, _) = redcard_instrument(&p);
        let events = trace_of(&rc, SchedPolicy::RoundRobin { quantum: 8 });
        verify_precise_checks(&events).unwrap_or_else(|e| panic!("{name}: imprecise checks: {e}"));
    }
}

/// On the *same* trace, BigFoot reports a race iff FastTrack does (trace
/// precision), and on the same objects/arrays (address precision at
/// compression granularity).
#[test]
fn detectors_agree_on_scenarios() {
    for (name, src) in scenarios() {
        let p = parse_program(src).unwrap();
        let inst = instrument(&p);
        let (rc_prog, rc_proxies) = redcard_instrument(&p);
        for seed in [3u64, 17, 99] {
            let policy = SchedPolicy::Random {
                seed,
                switch_inv: 2,
            };
            // FastTrack and SlimState watch raw accesses of the BigFoot
            // binary; BigFoot watches the checks. One trace each — the
            // interpreter is deterministic, so both views see the same
            // execution.
            let events = trace_of(&inst.program, policy);
            let ft = replay(&events, Detector::fasttrack());
            let ss = replay(&events, Detector::slimstate());
            let bf = replay(&events, Detector::bigfoot(inst.proxies.clone()));
            assert_eq!(
                ft.has_races(),
                bf.has_races(),
                "{name} seed {seed}: FT={:?} BF={:?}",
                ft.races,
                bf.races
            );
            assert_eq!(ft.has_races(), ss.has_races(), "{name} seed {seed}");
            assert_eq!(
                ft.racy_locations(),
                bf.racy_locations(),
                "{name} seed {seed}"
            );
            // RedCard / SlimCard run their own instrumentation.
            let rc_events = trace_of(&rc_prog, policy);
            let rc_ft = replay(&rc_events, Detector::fasttrack());
            let rc = replay(&rc_events, Detector::redcard(rc_proxies.clone()));
            let sc = replay(&rc_events, Detector::slimcard(rc_proxies.clone()));
            assert_eq!(rc_ft.has_races(), rc.has_races(), "{name} seed {seed} (RC)");
            assert_eq!(rc_ft.has_races(), sc.has_races(), "{name} seed {seed} (SC)");
            assert_eq!(rc_ft.racy_locations(), rc.racy_locations(), "{name} (RC)");
        }
    }
}

/// Property test over random programs: precise checks and verdict
/// agreement, racy and race-free, many seeds.
#[test]
fn random_programs_precise_and_agreeing() {
    for seed in 1..=15u64 {
        for racy in [false, true] {
            let cfg = RandomConfig {
                seed,
                racy,
                size: 10,
                threads: 2,
                array_len: 16,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap();
            let inst = instrument(&p);
            let policy = SchedPolicy::Random {
                seed: seed * 31 + 7,
                switch_inv: 3,
            };
            let events = trace_of(&inst.program, policy);
            verify_precise_checks(&events).unwrap_or_else(|e| {
                panic!(
                    "seed {seed} racy={racy}: {e}\nsource:\n{src}\ninstrumented:\n{}",
                    bigfoot_bfj::pretty(&inst.program)
                )
            });
            let ft = replay(&events, Detector::fasttrack());
            let bf = replay(&events, Detector::bigfoot(inst.proxies.clone()));
            assert_eq!(
                ft.has_races(),
                bf.has_races(),
                "seed {seed} racy={racy}: FT={:?} BF={:?}\n{src}",
                ft.races,
                bf.races
            );
            assert_eq!(
                ft.racy_locations(),
                bf.racy_locations(),
                "seed {seed} racy={racy}\n{src}"
            );
            if !racy {
                assert!(!ft.has_races(), "race-free program raced: {:?}", ft.races);
            }
        }
    }
}

/// BigFoot's check ratio is strictly below FastTrack's 1.0 on loop-heavy
/// programs (the whole point of the paper).
#[test]
fn check_ratio_improves() {
    let src = "
        class W { meth fill(a) {
            for (i = 0; i < a.length; i = i + 1) { a[i] = a[i] + 1; }
            return 0; } }
        main {
            w = new W;
            a = new_array(200);
            r1 = w.fill(a);
            r2 = w.fill(a);
        }";
    let p = parse_program(src).unwrap();
    let inst = instrument(&p);
    let events = trace_of(&inst.program, SchedPolicy::default());
    let ft = replay(&events, Detector::fasttrack());
    let bf = replay(&events, Detector::bigfoot(inst.proxies.clone()));
    assert_eq!(ft.check_ratio(), 1.0);
    assert!(
        bf.check_ratio() < 0.02,
        "BF check ratio {} too high",
        bf.check_ratio()
    );
    assert!(bf.shadow_ops * 10 < ft.shadow_ops);
}

/// The known theoretical exception (§5): a racy write between two aliased
/// reads can hide the dependent race — BigFoot stays trace-precise (the
/// *first* race is still caught) but may drop the second address.
#[test]
fn alias_hazard_still_reports_first_race() {
    let src = "
        class A { field f; }
        class B { field g; }
        class W {
            meth swap(a, nb) { a.f = nb; return 0; }
            meth reader(a) {
                x = a.f;
                s = x.g;
                y = a.f;
                t = y.g;
                return s + t;
            }
        }
        main {
            a = new A;
            b1 = new B;
            a.f = b1;
            w = new W;
            b2 = new B;
            fork t1 = w.reader(a);
            fork t2 = w.swap(a, b2);
            join(t1); join(t2);
        }";
    let p = parse_program(src).unwrap();
    let inst = instrument(&p);
    for seed in 1..30u64 {
        let events = trace_of(
            &inst.program,
            SchedPolicy::Random {
                seed,
                switch_inv: 1,
            },
        );
        let ft = replay(&events, Detector::fasttrack());
        let bf = replay(&events, Detector::bigfoot(inst.proxies.clone()));
        // Trace precision must hold: both see *some* race (on a.f).
        assert_eq!(ft.has_races(), bf.has_races(), "seed {seed}");
        if ft.has_races() {
            // The race on a.f itself is always reported by both.
            let ft_locs = ft.racy_locations();
            let bf_locs = bf.racy_locations();
            assert!(bf_locs.iter().any(|l| ft_locs.contains(l)), "seed {seed}");
        }
    }
}

/// Every ablation configuration must still place *precise* checks — the
/// knobs trade performance, never soundness.
#[test]
fn ablations_remain_precise() {
    use bigfoot::InstrumentOptions;
    let configs = [
        InstrumentOptions {
            anticipation: false,
            ..InstrumentOptions::default()
        },
        InstrumentOptions {
            coalescing: false,
            ..InstrumentOptions::default()
        },
        InstrumentOptions {
            loop_invariants: false,
            ..InstrumentOptions::default()
        },
        InstrumentOptions {
            field_proxies: false,
            ..InstrumentOptions::default()
        },
    ];
    for (name, src) in scenarios() {
        let p = parse_program(src).unwrap();
        for (ci, opts) in configs.iter().enumerate() {
            let inst = bigfoot::instrument_with(&p, *opts);
            let events = trace_of(&inst.program, SchedPolicy::RoundRobin { quantum: 16 });
            verify_precise_checks(&events).unwrap_or_else(|e| panic!("{name} config {ci}: {e}"));
            let ft = replay(&events, Detector::fasttrack());
            let bf = replay(&events, Detector::bigfoot(inst.proxies.clone()));
            assert_eq!(ft.has_races(), bf.has_races(), "{name} config {ci}");
            assert_eq!(
                ft.racy_locations(),
                bf.racy_locations(),
                "{name} config {ci}"
            );
        }
    }
}

/// DJIT+ and FastTrack are both precise: identical verdicts on identical
/// traces, including on random programs.
#[test]
fn djit_differential_on_random_programs() {
    use bigfoot_detectors::DjitDetector;
    for seed in 1..=10u64 {
        for racy in [false, true] {
            let cfg = RandomConfig {
                seed,
                racy,
                size: 8,
                threads: 2,
                array_len: 12,
                ..RandomConfig::default()
            };
            let src = random_program(&cfg);
            let p = parse_program(&src).unwrap();
            let events = trace_of(
                &p,
                SchedPolicy::Random {
                    seed: seed * 13 + 5,
                    switch_inv: 2,
                },
            );
            let ft = replay(&events, Detector::fasttrack());
            let mut dj = DjitDetector::new();
            for ev in &events {
                dj.event(ev);
            }
            let dj = dj.finish();
            assert_eq!(ft.has_races(), dj.has_races(), "seed {seed} racy={racy}");
            assert_eq!(
                ft.racy_locations(),
                dj.racy_locations(),
                "seed {seed} racy={racy}\n{src}"
            );
        }
    }
}
