//! End-to-end tests for volatile fields and wait/notify (§5: "BigFoot
//! handles all basic synchronization operations present in Java").

use bigfoot::instrument;
use bigfoot_bfj::{
    parse_program, Event, EventSink, Interp, RecordingSink, SchedPolicy, Sym, Tid, Value,
};
use bigfoot_detectors::{verify_precise_checks, Detector};

/// The classic volatile publication idiom: the producer fills a buffer and
/// raises a volatile flag; the consumer spins on the flag then reads the
/// buffer. Race-free thanks to the volatile edge.
const PUBLICATION: &str = "
    class Q {
        volatile ready;
        meth produce(buf) {
            for (i = 0; i < buf.length; i = i + 1) { buf[i] = i * i; }
            this.ready = 1;
            return 0;
        }
        meth consume(buf) {
            spin = 0;
            r = this.ready;
            while (r == 0 && spin < 100000) {
                spin = spin + 1;
                r = this.ready;
            }
            sum = 0;
            if (r == 1) {
                for (i = 0; i < buf.length; i = i + 1) { sum = sum + buf[i]; }
            }
            return sum;
        }
    }
    main {
        q = new Q;
        buf = new_array(32);
        fork p = q.produce(buf);
        fork c = q.consume(buf);
        join(p); join(c);
    }";

fn replay(events: &[Event], mut det: Detector) -> bigfoot_detectors::Stats {
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

#[test]
fn volatile_publication_is_race_free() {
    let p = parse_program(PUBLICATION).unwrap();
    let inst = instrument(&p);
    for seed in 1..20u64 {
        let mut sink = RecordingSink::default();
        Interp::new(
            &inst.program,
            SchedPolicy::Random {
                seed,
                switch_inv: 2,
            },
        )
        .run(&mut sink)
        .unwrap();
        let ft = replay(&sink.events, Detector::fasttrack());
        let bf = replay(&sink.events, Detector::bigfoot(inst.proxies.clone()));
        assert!(!ft.has_races(), "seed {seed}: {:?}", ft.races);
        assert!(!bf.has_races(), "seed {seed}: {:?}", bf.races);
        verify_precise_checks(&sink.events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn without_volatile_the_same_idiom_races() {
    // Identical program with a plain field: the flag itself (and, on some
    // schedules, the buffer) races.
    let src = PUBLICATION.replace("volatile ready;", "field ready;");
    let p = parse_program(&src).unwrap();
    let inst = instrument(&p);
    let mut raced = false;
    for seed in 1..20u64 {
        let mut sink = RecordingSink::default();
        Interp::new(
            &inst.program,
            SchedPolicy::Random {
                seed,
                switch_inv: 2,
            },
        )
        .run(&mut sink)
        .unwrap();
        let ft = replay(&sink.events, Detector::fasttrack());
        let bf = replay(&sink.events, Detector::bigfoot(inst.proxies.clone()));
        assert_eq!(ft.has_races(), bf.has_races(), "seed {seed}");
        raced |= ft.has_races();
    }
    assert!(raced, "the non-volatile flag must race on some schedule");
}

#[test]
fn volatile_accesses_are_not_checked() {
    let p = parse_program(
        "class C { volatile v; field f; }
         main {
             c = new C;
             c.v = 1;
             x = c.v;
             c.f = x;
         }",
    )
    .unwrap();
    let inst = instrument(&p);
    let text = bigfoot_bfj::pretty(&inst.program);
    // Only the plain field write gets a check.
    assert_eq!(text.matches("check(").count(), 1, "{text}");
    assert!(text.contains("check(w: c.f)"), "{text}");
}

#[test]
fn checks_move_across_volatile_writes_but_not_reads() {
    // A volatile *write* is release-like: an anticipated later access can
    // still cover the earlier one (coverage only ends at acquires), so a
    // single deferred check suffices.
    let p = parse_program(
        "class C { volatile v; field f; }
         main {
             c = new C;
             c.f = 1;
             c.v = 1;
             c.f = 2;
         }",
    )
    .unwrap();
    let inst = instrument(&p);
    let text = bigfoot_bfj::pretty(&inst.program);
    assert_eq!(text.matches("check(w: c.f)").count(), 1, "{text}");
    // A volatile *read* is acquire-like: the covering range of the first
    // write ends there, forcing a check before it. That same check then
    // covers the second write too (no intervening release — the Fig. 3
    // pattern), so one check still suffices, but it must sit before the
    // volatile read.
    let p = parse_program(
        "class C { volatile v; field f; }
         main {
             c = new C;
             c.f = 1;
             x = c.v;
             c.f = 2;
         }",
    )
    .unwrap();
    let inst = instrument(&p);
    let text = bigfoot_bfj::pretty(&inst.program);
    assert_eq!(text.matches("check(w: c.f)").count(), 1, "{text}");
    let first_check = text.find("check(w: c.f)").unwrap();
    let volatile_read = text.find("x = c.v").unwrap();
    assert!(first_check < volatile_read, "{text}");
    // Acquire *then* release between the two writes: the first check's
    // coverage ends at the release, so the second write needs its own.
    let p = parse_program(
        "class C { volatile v; field f; }
         main {
             c = new C;
             c.f = 1;
             x = c.v;
             c.v = x + 1;
             c.f = 2;
         }",
    )
    .unwrap();
    let inst = instrument(&p);
    let text = bigfoot_bfj::pretty(&inst.program);
    assert_eq!(text.matches("check(w: c.f)").count(), 2, "{text}");
}

#[test]
fn wait_notify_roundtrip() {
    // Producer/consumer over a 1-slot mailbox with wait/notify.
    let src = "
        class Box {
            field full; field item;
            meth put(lock, v) {
                acq(lock);
                while (this.full == 1) { wait(lock); }
                this.item = v;
                this.full = 1;
                notify(lock);
                rel(lock);
                return 0;
            }
            meth take(lock) {
                acq(lock);
                while (this.full == 0) { wait(lock); }
                v = this.item;
                this.full = 0;
                notify(lock);
                rel(lock);
                return v;
            }
            meth produce(lock, n) {
                for (i = 1; i <= n; i = i + 1) { r = this.put(lock, i); }
                return 0;
            }
            meth consume(lock, n) {
                total = 0;
                for (i = 1; i <= n; i = i + 1) {
                    v = this.take(lock);
                    total = total + v;
                }
                return total;
            }
        }
        class Lk { }
        main {
            b = new Box;
            lock = new Lk;
            fork p = b.produce(lock, 10);
            fork c = b.consume(lock, 10);
            join(p); join(c);
            done = 1;
        }";
    let p = parse_program(src).unwrap();
    // Runs to completion (no deadlock) and is race-free under both
    // detectors across schedules.
    let inst = instrument(&p);
    for seed in 1..10u64 {
        let mut sink = RecordingSink::default();
        let mut interp = Interp::new(
            &inst.program,
            SchedPolicy::Random {
                seed,
                switch_inv: 3,
            },
        )
        .with_max_steps(5_000_000);
        interp.run(&mut sink).unwrap();
        assert_eq!(
            interp.final_env(Tid(0)).unwrap()[&Sym::intern("done")],
            Value::Int(1)
        );
        let ft = replay(&sink.events, Detector::fasttrack());
        let bf = replay(&sink.events, Detector::bigfoot(inst.proxies.clone()));
        assert!(!ft.has_races(), "seed {seed}: {:?}", ft.races);
        assert!(!bf.has_races(), "seed {seed}: {:?}", bf.races);
        verify_precise_checks(&sink.events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn wait_without_lock_is_an_error() {
    let p = parse_program("class L { } main { l = new L; wait(l); }").unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .run(&mut bigfoot_bfj::NullSink)
        .unwrap_err();
    assert_eq!(err, bigfoot_bfj::RuntimeError::IllegalRelease);
}

#[test]
fn wait_with_no_notifier_deadlocks() {
    let p = parse_program(
        "class L { }
         main { l = new L; acq(l); wait(l); rel(l); }",
    )
    .unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .run(&mut bigfoot_bfj::NullSink)
        .unwrap_err();
    assert_eq!(err, bigfoot_bfj::RuntimeError::Deadlock);
}

#[test]
fn volatile_name_collision_stays_sound() {
    // Class A declares `v` volatile; class B has a plain field `v`. BFJ
    // resolves volatility by field *name* program-wide (the analysis
    // cannot type designators), so B's `v` is also treated as volatile by
    // both the analysis and the run time — crucially they must agree, or
    // B.v accesses would go unchecked yet still be reported as plain
    // accesses.
    let src = "
        class A { volatile v; }
        class B { field v; field w; }
        main {
            a = new A;
            b = new B;
            a.v = 1;
            b.v = 2;
            b.w = 3;
        }";
    let p = parse_program(src).unwrap();
    let inst = instrument(&p);
    let mut sink = RecordingSink::default();
    Interp::new(&inst.program, SchedPolicy::default())
        .run(&mut sink)
        .unwrap();
    // Both v-writes are volatile events; only b.w is a checked access.
    verify_precise_checks(&sink.events).unwrap();
    let ft = replay(&sink.events, Detector::fasttrack());
    let bf = replay(&sink.events, Detector::bigfoot(inst.proxies.clone()));
    assert_eq!(ft.accesses(), 1, "only b.w is a plain access");
    assert_eq!(bf.checks, 1);
    assert!(!ft.has_races() && !bf.has_races());
}
