//! Differential test: pipelined detection (interpreter producing into the
//! batched SPSC ring, detector consuming on its own thread) must reproduce
//! the serial detector's report **bit-for-bit** — same races in the same
//! order, same counters, same space accounting — for every detector
//! configuration, and the pipelined replay front-end must do the same at
//! every worker count.
//!
//! Coverage: every suite benchmark (small scale) under all five detector
//! configurations (FT/RC/SS/SC/BF), pipelined replay at 1 and 4 workers,
//! sharded multi-worker pipelined detection (including DJIT+) across
//! worker counts, and 60 seeded random programs — racy and race-free —
//! under randomized schedules. Batch and ring sizes are swept so batch
//! boundaries, partial final batches, and producer backpressure all fire.

use bigfoot::instrument;
use bigfoot_bfj::{parse_program, EventSink, Interp, Program, RecordingSink, SchedPolicy};
use bigfoot_detectors::{
    detect_pipelined, djit_sharded, replay_pipelined, replay_sharded, Detector, DjitDetector,
    PipelineConfig, ProxyTable, ReplayConfig, Stats,
};
use bigfoot_workloads::{benchmarks, random_program, RandomConfig, Scale};

/// Runs the program once and returns the recorded event stream, so the
/// serial and pipelined detectors consume the *same* execution.
fn record(program: &Program, policy: SchedPolicy) -> RecordingSink {
    let mut rec = RecordingSink::default();
    Interp::new(program, policy).run(&mut rec).expect("run");
    rec
}

fn serial(rec: &RecordingSink, mut det: Detector) -> Stats {
    for ev in &rec.events {
        det.event(ev);
    }
    det.finish()
}

fn pipelined(rec: &RecordingSink, config: &PipelineConfig, det: Detector) -> Stats {
    let (_, stats) = detect_pipelined(
        config,
        |sink| {
            for ev in &rec.events {
                sink.event(ev);
            }
        },
        det,
    );
    stats
}

#[track_caller]
fn assert_identical(label: &str, pipelined: &Stats, serial: &Stats) {
    assert_eq!(
        pipelined.races, serial.races,
        "{label}: races diverge between pipelined and serial detection"
    );
    assert_eq!(
        pipelined.to_json().to_string_compact(),
        serial.to_json().to_string_compact(),
        "{label}: stats diverge between pipelined and serial detection"
    );
}

/// One odd batch size that never divides the event count, one production
/// default; rings small enough that backpressure fires on real programs.
const SWEEP: [PipelineConfig; 2] = [
    PipelineConfig {
        batch_events: 7,
        ring_slots: 2,
    },
    PipelineConfig {
        batch_events: 4096,
        ring_slots: 8,
    },
];

#[test]
fn suite_benchmarks_pipeline_identically_under_all_configs() {
    for b in benchmarks(Scale::Small) {
        let inst = instrument(&b.program);
        let raw = record(&b.program, SchedPolicy::default());
        let checked = record(&inst.program, SchedPolicy::default());
        // (config name, detector factory, which trace it consumes)
        type ConfigRow<'a> = (&'a str, Box<dyn Fn() -> Detector + 'a>, &'a RecordingSink);
        let configs: [ConfigRow; 5] = [
            ("ft", Box::new(Detector::fasttrack), &raw),
            (
                "rc",
                Box::new(|| Detector::redcard(inst.proxies.clone())),
                &checked,
            ),
            ("ss", Box::new(Detector::slimstate), &raw),
            (
                "sc",
                Box::new(|| Detector::slimcard(inst.proxies.clone())),
                &checked,
            ),
            (
                "bf",
                Box::new(|| Detector::bigfoot(inst.proxies.clone())),
                &checked,
            ),
        ];
        for (name, make, rec) in &configs {
            let reference = serial(rec, make());
            for cfg in &SWEEP {
                let stats = pipelined(rec, cfg, make());
                assert_identical(
                    &format!("{} [{name}] batch {}", b.name, cfg.batch_events),
                    &stats,
                    &reference,
                );
            }
        }
    }
}

#[test]
fn suite_benchmarks_pipeline_replay_identically_at_1_and_4_workers() {
    for b in benchmarks(Scale::Small).into_iter().take(6) {
        let inst = instrument(&b.program);
        let checked = record(&inst.program, SchedPolicy::default());
        let reference = serial(&checked, Detector::bigfoot(inst.proxies.clone()));
        for workers in [1usize, 4] {
            for cfg in &SWEEP {
                let (_, stats) = replay_pipelined(
                    cfg,
                    &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
                    |sink| {
                        for ev in &checked.events {
                            sink.event(ev);
                        }
                    },
                );
                assert_identical(
                    &format!(
                        "{} [bf replay] {workers} worker(s) batch {}",
                        b.name, cfg.batch_events
                    ),
                    &stats,
                    &reference,
                );
            }
        }
    }
}

#[test]
fn random_programs_pipeline_identically() {
    // 60 seeded generator configurations (≥ 50 per the pipelined-mode
    // acceptance bar): alternating racy / race-free, varying thread
    // counts and sizes, under randomized schedules.
    let tiny = PipelineConfig {
        batch_events: 3,
        ring_slots: 2,
    };
    let mut races_seen = 0usize;
    for seed in 0..60u64 {
        let cfg = RandomConfig {
            seed: seed + 1,
            size: 8 + (seed as usize % 9),
            threads: 2 + (seed as usize % 3),
            array_len: 16 + (seed as usize % 17),
            racy: seed % 2 == 0,
            ..RandomConfig::default()
        };
        let src = random_program(&cfg);
        let program = parse_program(&src).expect("generated program parses");
        let policy = SchedPolicy::Random {
            seed: seed * 31 + 7,
            switch_inv: 2,
        };
        let rec = record(&program, policy);
        let reference = serial(&rec, Detector::fasttrack());
        if reference.has_races() {
            races_seen += 1;
        }
        let stats = pipelined(&rec, &tiny, Detector::fasttrack());
        assert_identical(&format!("random seed {seed}"), &stats, &reference);
        // The slim (footprint) engine exercises the commit path on the
        // same events, through the pipelined replay front-end.
        let slim_reference = serial(&rec, Detector::slimstate());
        for workers in [1usize, 4] {
            let (_, stats) = replay_pipelined(&tiny, &ReplayConfig::slimstate(workers), |sink| {
                for ev in &rec.events {
                    sink.event(ev);
                }
            });
            assert_identical(
                &format!("random seed {seed} (slimstate replay, {workers} worker(s))"),
                &stats,
                &slim_reference,
            );
        }
    }
    assert!(
        races_seen > 0,
        "the racy generator configurations should race at least once"
    );
}

#[test]
fn suite_benchmarks_sharded_detection_identical_across_worker_counts() {
    // Sharded multi-worker pipelined detection must be byte-identical to
    // serial at every worker count — the tentpole determinism contract of
    // PR 7 — on real suite benchmarks, with the hostile small-batch
    // geometry so the router→worker rings see backpressure.
    let tiny = PipelineConfig {
        batch_events: 7,
        ring_slots: 2,
    };
    for b in benchmarks(Scale::Small).into_iter().take(6) {
        let inst = instrument(&b.program);
        let raw = record(&b.program, SchedPolicy::default());
        let checked = record(&inst.program, SchedPolicy::default());

        let ft_reference = serial(&raw, Detector::fasttrack());
        let bf_reference = serial(&checked, Detector::bigfoot(inst.proxies.clone()));
        let mut djit = DjitDetector::new();
        for ev in &raw.events {
            djit.event(ev);
        }
        let djit_reference = djit.finish();

        for workers in [1usize, 2, 4] {
            let (_, stats) = replay_sharded(&tiny, &ReplayConfig::fasttrack(workers), |sink| {
                for ev in &raw.events {
                    sink.event(ev);
                }
            });
            assert_identical(
                &format!("{} [ft sharded] {workers} worker(s)", b.name),
                &stats,
                &ft_reference,
            );
            let (_, stats) = replay_sharded(
                &tiny,
                &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
                |sink| {
                    for ev in &checked.events {
                        sink.event(ev);
                    }
                },
            );
            assert_identical(
                &format!("{} [bf sharded] {workers} worker(s)", b.name),
                &stats,
                &bf_reference,
            );
            let (_, stats) = djit_sharded(&tiny, workers, |sink| {
                for ev in &raw.events {
                    sink.event(ev);
                }
            });
            assert_identical(
                &format!("{} [djit sharded] {workers} worker(s)", b.name),
                &stats,
                &djit_reference,
            );
        }
    }
}

#[test]
fn pipeline_default_proxy_table_matches_serial() {
    // Identity proxies under the check-event source (RedCard-like path).
    for b in benchmarks(Scale::Small).into_iter().take(4) {
        let inst = instrument(&b.program);
        let checked = record(&inst.program, SchedPolicy::default());
        let reference = serial(&checked, Detector::redcard(ProxyTable::identity()));
        let stats = pipelined(
            &checked,
            &PipelineConfig::default(),
            Detector::redcard(ProxyTable::identity()),
        );
        assert_identical(b.name, &stats, &reference);
    }
}
