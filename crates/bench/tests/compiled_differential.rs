//! Differential test for the compilation tier: lowering a checked BFJ
//! program to flat register bytecode and running it on [`CompiledVm`]
//! must be *invisible* to everything downstream. The BFTR trace a
//! compiled run emits must be **byte-identical** to the interpreter's
//! under the same scheduler policy, and therefore every detector
//! configuration must produce an identical report over either execution.
//!
//! Coverage: every suite benchmark (small scale — all 19), raw and
//! BigFoot-instrumented, under the default deterministic policy and a
//! randomized policy; the five detector configurations (FT/RC/SS/SC/BF)
//! plus DJIT+ driven off the compiled run's events and compared against
//! the interpreted reference report.

use bigfoot::instrument;
use bigfoot_bfj::{
    compile, CompiledVm, EventSink, Interp, Program, RecordingSink, SchedPolicy, TraceWriter,
};
use bigfoot_detectors::{Detector, DjitDetector, Stats};
use bigfoot_workloads::{benchmarks, Scale};

/// Interpreted run → (BFTR bytes, decoded events).
fn interp_trace(program: &Program, policy: SchedPolicy) -> (Vec<u8>, RecordingSink) {
    let mut w = TraceWriter::new();
    let mut rec = RecordingSink::default();
    Interp::new(program, policy)
        .run(&mut TeeSink(&mut w, &mut rec))
        .expect("interpreted run");
    (w.into_bytes(), rec)
}

/// Compiled run → (BFTR bytes, decoded events).
fn compiled_trace(program: &Program, policy: SchedPolicy) -> (Vec<u8>, RecordingSink) {
    let lowered = compile(program);
    let mut w = TraceWriter::new();
    let mut rec = RecordingSink::default();
    CompiledVm::new(&lowered, policy)
        .run(&mut TeeSink(&mut w, &mut rec))
        .expect("compiled run");
    (w.into_bytes(), rec)
}

/// Feeds one event stream to two sinks so the trace bytes and the decoded
/// events come from the *same* execution.
struct TeeSink<'a>(&'a mut TraceWriter, &'a mut RecordingSink);

impl EventSink for TeeSink<'_> {
    fn event(&mut self, ev: &bigfoot_bfj::Event) {
        self.0.event(ev);
        self.1.event(ev);
    }
}

fn report(rec: &RecordingSink, mut det: Detector) -> Stats {
    for ev in &rec.events {
        det.event(ev);
    }
    det.finish()
}

fn djit_report(rec: &RecordingSink) -> Stats {
    let mut det = DjitDetector::new();
    for ev in &rec.events {
        det.event(ev);
    }
    det.finish()
}

#[track_caller]
fn assert_bytes_identical(label: &str, compiled: &[u8], interp: &[u8]) {
    if compiled != interp {
        let off = compiled
            .iter()
            .zip(interp.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| compiled.len().min(interp.len()));
        panic!(
            "{label}: compiled trace diverges from interpreted at byte {off} \
             (compiled {} bytes, interpreted {} bytes)",
            compiled.len(),
            interp.len()
        );
    }
}

/// One deterministic policy and one randomized preemptive policy — the
/// compiled tier must replicate the Lemire draw sequence, not just the
/// round-robin quantum.
const POLICIES: [SchedPolicy; 2] = [
    SchedPolicy::RoundRobin { quantum: 1 },
    SchedPolicy::Random {
        seed: 0xB16F_00D5,
        switch_inv: 2,
    },
];

#[test]
fn suite_benchmarks_compile_to_byte_identical_traces() {
    for b in benchmarks(Scale::Small) {
        let inst = instrument(&b.program);
        for policy in POLICIES {
            let (ib, _) = interp_trace(&b.program, policy);
            let (cb, _) = compiled_trace(&b.program, policy);
            assert_bytes_identical(&format!("{} [raw] {policy:?}", b.name), &cb, &ib);
            let (ib, _) = interp_trace(&inst.program, policy);
            let (cb, _) = compiled_trace(&inst.program, policy);
            assert_bytes_identical(&format!("{} [checked] {policy:?}", b.name), &cb, &ib);
        }
    }
}

#[test]
fn suite_benchmarks_detect_identically_over_compiled_runs() {
    // The five detector configurations of the paper's evaluation plus
    // DJIT+: each consumes the compiled run's events and must reproduce
    // the interpreted reference report bit-for-bit.
    for b in benchmarks(Scale::Small) {
        let inst = instrument(&b.program);
        let policy = SchedPolicy::default();
        let (_, raw_i) = interp_trace(&b.program, policy);
        let (_, raw_c) = compiled_trace(&b.program, policy);
        let (_, checked_i) = interp_trace(&inst.program, policy);
        let (_, checked_c) = compiled_trace(&inst.program, policy);

        type ConfigRow<'a> = (
            &'a str,
            Box<dyn Fn() -> Detector + 'a>,
            &'a RecordingSink,
            &'a RecordingSink,
        );
        let configs: [ConfigRow; 5] = [
            ("ft", Box::new(Detector::fasttrack), &raw_i, &raw_c),
            (
                "rc",
                Box::new(|| Detector::redcard(inst.proxies.clone())),
                &checked_i,
                &checked_c,
            ),
            ("ss", Box::new(Detector::slimstate), &raw_i, &raw_c),
            (
                "sc",
                Box::new(|| Detector::slimcard(inst.proxies.clone())),
                &checked_i,
                &checked_c,
            ),
            (
                "bf",
                Box::new(|| Detector::bigfoot(inst.proxies.clone())),
                &checked_i,
                &checked_c,
            ),
        ];
        for (name, make, interp_rec, compiled_rec) in &configs {
            let reference = report(interp_rec, make());
            let got = report(compiled_rec, make());
            assert_eq!(
                got.to_json().to_string_compact(),
                reference.to_json().to_string_compact(),
                "{} [{name}]: detector report diverges between compiled and interpreted runs",
                b.name
            );
        }
        assert_eq!(
            djit_report(&raw_c).to_json().to_string_compact(),
            djit_report(&raw_i).to_json().to_string_compact(),
            "{} [djit]: report diverges between compiled and interpreted runs",
            b.name
        );
    }
}

#[test]
fn compiled_outcome_and_final_state_match_the_interpreter() {
    // Beyond the trace: the terminal outcome (steps, exit state) must
    // agree too, so `bfc check --compiled` reports the same run shape.
    for b in benchmarks(Scale::Small).into_iter().take(6) {
        let lowered = compile(&b.program);
        let policy = SchedPolicy::Random {
            seed: 42,
            switch_inv: 3,
        };
        let mut rec_i = RecordingSink::default();
        let out_i = Interp::new(&b.program, policy)
            .run(&mut rec_i)
            .expect("interpreted run");
        let mut rec_c = RecordingSink::default();
        let out_c = CompiledVm::new(&lowered, policy)
            .run(&mut rec_c)
            .expect("compiled run");
        assert_eq!(out_c, out_i, "{}: run outcome diverges", b.name);
        assert_eq!(rec_c.events, rec_i.events, "{}: events diverge", b.name);
    }
}
