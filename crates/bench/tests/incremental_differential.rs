//! Differential test for the incremental static pipeline: warm
//! re-analysis after an edit must be *invisible* in the output. For
//! every suite benchmark and every mutation kind, the warm run's
//! placements must be **byte-identical** to a cold run of the edited
//! program, and the cache must skip everything outside the edit's
//! dependency cone.
//!
//! Coverage: all 19 benchmarks (small scale), every method site in each,
//! under all three mutation kinds — a non-fact-changing arithmetic tweak
//! (must dirty exactly one method) and two fact-changing edits (new
//! field write, new lock region) that may dirty the caller cone. A
//! suite-wide sweep then models the evolving-program scenario the cache
//! exists for: one method edited across a 19-program codebase, with the
//! warm re-analysis skipping >80% of all methods.

use bigfoot::{instrument, instrument_incremental, InstrumentOptions, CACHE_FILE};
use bigfoot_bfj::{mutate, site_count, MutationKind, Program};
use bigfoot_workloads::{benchmarks, Scale};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bigfoot-incdiff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold-analyzes `program` once and returns the serialized cache bytes,
/// so each mutation below can start from an identical warm state.
fn seeded_cache(program: &Program, tag: &str) -> Vec<u8> {
    let dir = tmp_dir(tag);
    let (_, stats) = instrument_incremental(program, InstrumentOptions::default(), &dir);
    assert!(!stats.warm);
    let bytes = std::fs::read(dir.join(CACHE_FILE)).expect("cache written");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Plants pre-recorded cache bytes in a fresh dir.
fn plant(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(CACHE_FILE), bytes).unwrap();
    dir
}

/// Every benchmark, every site, every mutation kind: the warm run over
/// the edited program is byte-identical to a cold run, and a
/// non-fact-changing edit re-analyzes exactly the edited method.
#[test]
fn warm_replay_is_byte_identical_under_every_mutation() {
    for b in benchmarks(Scale::Small) {
        let cache = seeded_cache(&b.program, &format!("seed-{}", b.name));
        let sites = site_count(&b.program);
        assert!(sites >= 2, "{}: degenerate benchmark", b.name);
        for site in 0..sites {
            for kind in MutationKind::ALL {
                let mut edited = b.program.clone();
                let Some(edited_name) = mutate(&mut edited, site, kind, 7 + site as i64) else {
                    continue;
                };
                let tag = format!("{}-{site}-{}", b.name, kind.name());
                let dir = plant(&tag, &cache);
                let cold = instrument(&edited);
                let (warm, stats) =
                    instrument_incremental(&edited, InstrumentOptions::default(), &dir);
                assert!(stats.warm, "{tag}: cache must be usable");
                assert_eq!(
                    stats.hits + stats.misses,
                    sites,
                    "{tag}: every site accounted for"
                );
                assert!(
                    stats.misses >= 1,
                    "{tag}: the edited method ({edited_name}) must re-analyze"
                );
                if !kind.changes_facts() {
                    assert_eq!(
                        stats.misses, 1,
                        "{tag}: an arithmetic tweak must dirty exactly {edited_name}"
                    );
                }
                assert_eq!(
                    cold.program, warm.program,
                    "{tag}: warm placements must be byte-identical to a cold run"
                );
                assert_eq!(
                    cold.stats.checks_inserted, warm.stats.checks_inserted,
                    "{tag}: check accounting must match"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// The evolving-program scenario: a codebase of 19 programs with warm
/// caches, one method edited. Warm re-analysis of the whole suite must
/// skip >80% of all methods, for every choice of edited benchmark and
/// every mutation kind.
#[test]
fn suite_wide_single_edit_skips_over_eighty_percent() {
    let suite = benchmarks(Scale::Small);
    let caches: Vec<Vec<u8>> = suite
        .iter()
        .map(|b| seeded_cache(&b.program, &format!("sw-{}", b.name)))
        .collect();
    for kind in MutationKind::ALL {
        for edited_idx in [0, suite.len() / 2, suite.len() - 1] {
            let (mut hits, mut total) = (0usize, 0usize);
            for (i, b) in suite.iter().enumerate() {
                let mut program = b.program.clone();
                if i == edited_idx {
                    mutate(&mut program, 0, kind, 3).expect("benchmark has a site 0");
                }
                let tag = format!("sw-{}-{}-{}", kind.name(), edited_idx, b.name);
                let dir = plant(&tag, &caches[i]);
                let (warm, stats) =
                    instrument_incremental(&program, InstrumentOptions::default(), &dir);
                assert!(stats.warm, "{tag}");
                assert_eq!(warm.program, instrument(&program).program, "{tag}");
                hits += stats.hits;
                total += stats.hits + stats.misses;
                let _ = std::fs::remove_dir_all(&dir);
            }
            let rate = hits as f64 / total as f64;
            assert!(
                rate > 0.8,
                "suite-wide skip rate after one {} edit in benchmark #{edited_idx}: \
                 {hits}/{total} = {rate:.2}",
                kind.name()
            );
        }
    }
}
