//! Differential test: the sharded parallel replay engine must reproduce
//! the serial detector's report **bit-for-bit** — same races in the same
//! order, same counters, same space accounting — at every worker count.
//!
//! Coverage: every suite benchmark (small scale) under the BigFoot
//! configuration (deferred footprints + adaptive array shadows + field
//! proxies, the hardest case for parallel determinism), plus a population
//! of seeded random programs — racy and race-free — under the raw-access
//! FastTrack configuration.

use bigfoot::instrument;
use bigfoot_bfj::{parse_program, trace::TraceWriter, EventSink, Interp, Program, SchedPolicy};
use bigfoot_detectors::{replay_trace, Detector, ProxyTable, ReplayConfig, Stats, TraceReader};
use bigfoot_workloads::{benchmarks, random_program, RandomConfig, Scale};

fn record(program: &Program, policy: SchedPolicy) -> Vec<u8> {
    let mut w = TraceWriter::new();
    Interp::new(program, policy).run(&mut w).expect("run");
    w.into_bytes()
}

fn serial(bytes: &[u8], mut det: Detector) -> Stats {
    for ev in TraceReader::new(bytes).expect("trace header") {
        det.event(&ev.expect("trace event"));
    }
    det.finish()
}

#[track_caller]
fn assert_identical(label: &str, workers: usize, replay: &Stats, serial: &Stats) {
    assert_eq!(
        replay.races, serial.races,
        "{label}: races diverge at {workers} worker(s)"
    );
    assert_eq!(
        replay.to_json().to_string_compact(),
        serial.to_json().to_string_compact(),
        "{label}: stats diverge at {workers} worker(s)"
    );
}

#[test]
fn suite_benchmarks_replay_identically_under_bigfoot() {
    for b in benchmarks(Scale::Small) {
        let inst = instrument(&b.program);
        let bytes = record(&inst.program, SchedPolicy::default());
        let reference = serial(&bytes, Detector::bigfoot(inst.proxies.clone()));
        for workers in [1usize, 2, 4] {
            let stats = replay_trace(
                &bytes,
                &ReplayConfig::bigfoot(inst.proxies.clone(), workers),
            )
            .expect("replay");
            assert_identical(b.name, workers, &stats, &reference);
        }
    }
}

#[test]
fn suite_benchmarks_replay_identically_under_fasttrack() {
    // Fine-grained arrays + raw accesses: the highest item volume.
    for b in benchmarks(Scale::Small).into_iter().take(6) {
        let bytes = record(&b.program, SchedPolicy::default());
        let reference = serial(&bytes, Detector::fasttrack());
        for workers in [1usize, 4] {
            let stats = replay_trace(&bytes, &ReplayConfig::fasttrack(workers)).expect("replay");
            assert_identical(b.name, workers, &stats, &reference);
        }
    }
}

#[test]
fn random_programs_replay_identically() {
    // 60 seeded generator configurations: alternating racy / race-free,
    // varying thread counts and sizes, under randomized schedules so
    // sync-heavy interleavings are exercised too.
    let mut races_seen = 0usize;
    for seed in 0..60u64 {
        let cfg = RandomConfig {
            seed: seed + 1,
            size: 8 + (seed as usize % 9),
            threads: 2 + (seed as usize % 3),
            array_len: 16 + (seed as usize % 17),
            racy: seed % 2 == 0,
            ..RandomConfig::default()
        };
        let src = random_program(&cfg);
        let program = parse_program(&src).expect("generated program parses");
        let policy = SchedPolicy::Random {
            seed: seed * 31 + 7,
            switch_inv: 2,
        };
        let bytes = record(&program, policy);
        let reference = serial(&bytes, Detector::fasttrack());
        if reference.has_races() {
            races_seen += 1;
        }
        for workers in [1usize, 2, 4] {
            let stats = replay_trace(&bytes, &ReplayConfig::fasttrack(workers)).expect("replay");
            assert_identical(&format!("random seed {seed}"), workers, &stats, &reference);
        }
        // The slim (footprint) engine exercises the commit path on the
        // same trace.
        let slim_reference = serial(&bytes, Detector::slimstate());
        for workers in [1usize, 3] {
            let stats = replay_trace(&bytes, &ReplayConfig::slimstate(workers)).expect("replay");
            assert_identical(
                &format!("random seed {seed} (slimstate)"),
                workers,
                &stats,
                &slim_reference,
            );
        }
    }
    assert!(
        races_seen > 0,
        "the racy generator configurations should race at least once"
    );
}

#[test]
fn replay_default_proxy_table_matches_serial() {
    // Identity proxies under the check-event source (RedCard-like path).
    for b in benchmarks(Scale::Small).into_iter().take(4) {
        let inst = instrument(&b.program);
        let bytes = record(&inst.program, SchedPolicy::default());
        let reference = serial(&bytes, Detector::redcard(ProxyTable::identity()));
        let stats = replay_trace(&bytes, &ReplayConfig::redcard(ProxyTable::identity(), 4))
            .expect("replay");
        assert_identical(b.name, 4, &stats, &reference);
    }
}
