//! Golden tests for the `repro --json` report schema.
//!
//! These drive the real `repro` binary and assert the machine-readable
//! reports parse and respect their documented invariants (see
//! `docs/OBSERVABILITY.md`): stable envelope keys, `checks <= accesses`,
//! check ratios in `[0, 1]`, and non-negative measured times.

use bigfoot_obs::json::{parse, Json};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro")
}

fn parse_stdout(out: &Output) -> Json {
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    parse(&text).unwrap_or_else(|e| panic!("invalid JSON at offset {}: {e:?}\n{text}", e.offset))
}

fn check_envelope(report: &Json, command: &str) {
    assert_eq!(report.get("schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(report.get("tool").and_then(Json::as_str), Some("repro"));
    assert_eq!(report.get("command").and_then(Json::as_str), Some(command));
    assert_eq!(report.get("scale").and_then(Json::as_str), Some("small"));
    assert_eq!(report.get("reps").and_then(Json::as_u64), Some(1));
}

fn check_benchmark_block(b: &Json) {
    for key in ["name", "base_ms", "heap_cells", "static", "detectors"] {
        assert!(b.get(key).is_some(), "missing benchmark key `{key}`");
    }
    let stat = b.get("static").unwrap();
    assert!(stat.get("methods").and_then(Json::as_u64).unwrap() > 0);
    let per_method = stat.get("per_method").unwrap();
    assert!(!per_method.items().is_empty(), "per-method times present");
    for m in per_method.items() {
        assert!(m.get("name").and_then(Json::as_str).is_some());
        assert!(m.get("ms").and_then(Json::as_f64).unwrap() >= 0.0);
    }
    let share = stat.get("entail_share").and_then(Json::as_f64).unwrap();
    assert!(
        (0.0..=1.0).contains(&share),
        "entail share {share} outside [0,1]"
    );
    assert!(stat.get("entail_queries").and_then(Json::as_u64).unwrap() > 0);

    let detectors = b.get("detectors").unwrap();
    for d in ["FT", "RC", "SS", "SC", "BF"] {
        let run = detectors
            .get(d)
            .unwrap_or_else(|| panic!("missing detector {d}"));
        let stats = run.get("stats").unwrap();
        let accesses = stats.get("accesses").and_then(Json::as_u64).unwrap();
        let checks = stats.get("checks").and_then(Json::as_u64).unwrap();
        assert!(
            checks <= accesses,
            "{d}: checks {checks} > accesses {accesses}"
        );
        let cr = stats.get("check_ratio").and_then(Json::as_f64).unwrap();
        assert!(
            (0.0..=1.0).contains(&cr),
            "{d}: check ratio {cr} outside [0,1]"
        );
        assert!(run.get("time_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(run.get("model_cost").and_then(Json::as_f64).unwrap() >= 0.0);
    }
    // BigFoot must not check more often than the detector it improves on.
    let bf = detectors.get("BF").unwrap().get("stats").unwrap();
    let ft = detectors.get("FT").unwrap().get("stats").unwrap();
    assert!(
        bf.get("checks").and_then(Json::as_u64).unwrap()
            <= ft.get("checks").and_then(Json::as_u64).unwrap()
    );
}

#[test]
fn table1_json_schema_and_invariants() {
    let out = repro(&[
        "table1", "--json", "--scale", "small", "--reps", "1", "--bench", "crypt",
    ]);
    let report = parse_stdout(&out);
    check_envelope(&report, "table1");
    let benches = report.get("benchmarks").unwrap().items();
    assert_eq!(benches.len(), 1);
    check_benchmark_block(&benches[0]);
    let summary = report.get("summary").unwrap();
    for key in [
        "mean_check_ratio",
        "overhead_geomean",
        "overhead_vs_ft_geomean",
        "model_cost_vs_ft_geomean",
    ] {
        assert!(summary.get(key).is_some(), "missing summary key `{key}`");
    }
    let cr = summary
        .get("mean_check_ratio")
        .and_then(Json::as_f64)
        .unwrap();
    assert!((0.0..=1.0).contains(&cr));
}

#[test]
fn static_json_reports_entailment_share_from_spans() {
    let out = repro(&[
        "static", "--json", "--scale", "small", "--reps", "1", "--bench", "moldyn",
    ]);
    let report = parse_stdout(&out);
    check_envelope(&report, "static");
    let summary = report.get("summary").unwrap();
    let analysis_ms = summary.get("analysis_ms").and_then(Json::as_f64).unwrap();
    let entail_ms = summary.get("entail_ms").and_then(Json::as_f64).unwrap();
    let share = summary.get("entail_share").and_then(Json::as_f64).unwrap();
    // The obs spans must have actually observed the analysis: a non-zero
    // total, a non-zero solver share within it, and a sane ratio.
    assert!(analysis_ms > 0.0, "static.instrument span not recorded");
    assert!(entail_ms > 0.0, "entail.query span not recorded");
    assert!(
        entail_ms <= analysis_ms,
        "solver time exceeds analysis time"
    );
    assert!((0.0..=1.0).contains(&share));
    assert!(
        summary
            .get("entail_queries")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    // The incremental pipeline's cold/warm wall times and skip rate.
    let cold = summary
        .get("incremental_cold_ms")
        .and_then(Json::as_f64)
        .unwrap();
    let warm = summary
        .get("incremental_warm_ms")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(cold > 0.0, "cold incremental analysis not measured");
    assert!(warm > 0.0, "warm incremental analysis not measured");
    let ratio = summary
        .get("incremental_warm_over_cold")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(ratio > 0.0);
    let skip = summary
        .get("incremental_edit_skip_rate")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        (0.0..1.0).contains(&skip),
        "one edited method must miss, the rest hit: {skip}"
    );
    assert!(skip > 0.0, "unchanged methods must hit the cache");
}

#[test]
fn perf_json_always_carries_the_static_incremental_section() {
    let out = repro(&[
        "perf", "--json", "--scale", "small", "--reps", "1", "--bench", "crypt",
    ]);
    let report = parse_stdout(&out);
    check_envelope(&report, "perf");
    let inc = report
        .get("static_incremental")
        .expect("static_incremental section is always on");
    let benches = inc.get("benchmarks").unwrap().items();
    assert_eq!(benches.len(), 1);
    let b = &benches[0];
    assert_eq!(b.get("name").and_then(Json::as_str), Some("crypt"));
    let sites = b.get("sites").and_then(Json::as_u64).unwrap();
    assert!(sites >= 2);
    assert!(b.get("cold_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(b.get("warm_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(
        b.get("edit_misses").and_then(Json::as_u64),
        Some(1),
        "an arithmetic tweak dirties exactly one method"
    );
    assert_eq!(b.get("edit_hits").and_then(Json::as_u64), Some(sites - 1));
    let summary = inc.get("summary").unwrap();
    for key in [
        "cold_ms",
        "warm_ms",
        "warm_over_cold",
        "edit_warm_ms",
        "edit_skip_rate",
    ] {
        assert!(
            summary.get(key).and_then(Json::as_f64).is_some(),
            "missing static_incremental summary key `{key}`"
        );
    }
}

#[test]
fn races_stable_across_identical_invocations() {
    // Same seed/config twice: the reported race count and check counts
    // must be identical (the pipeline is deterministic end to end).
    let run = || {
        let out = repro(&[
            "table1", "--json", "--scale", "small", "--reps", "1", "--bench", "sor",
        ]);
        let report = parse_stdout(&out);
        let b = &report.get("benchmarks").unwrap().items()[0];
        let stats = b
            .get("detectors")
            .unwrap()
            .get("BF")
            .unwrap()
            .get("stats")
            .unwrap();
        (
            stats.get("races").and_then(Json::as_u64).unwrap(),
            stats.get("checks").and_then(Json::as_u64).unwrap(),
            stats.get("accesses").and_then(Json::as_u64).unwrap(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn out_flag_writes_the_report_to_a_file() {
    let dir = std::env::temp_dir().join("repro-golden-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig2.json");
    let path_str = path.to_string_lossy().into_owned();
    let out = repro(&[
        "fig2", "--json", "--scale", "small", "--reps", "1", "--bench", "crypt", "--out", &path_str,
    ]);
    let on_stdout = parse_stdout(&out);
    let from_file = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(on_stdout.to_string_compact(), from_file.to_string_compact());
    check_envelope(&from_file, "fig2");
}

#[test]
fn scale_flag_requires_its_own_value() {
    // The regression the shared parser fixes: a stray `small` positional
    // must not silently select small scale; and unknown flags must error.
    let out = repro(&["table1", "--wat"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    let out = repro(&["table1", "--scale", "tiny"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));
}
