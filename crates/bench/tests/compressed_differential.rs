//! Differential test: detection over grammar-compressed (`BFTC`) traces
//! must reproduce the raw replay path — and hence the serial detector —
//! **bit-for-bit**: same races in the same order, same counters, same
//! space accounting, at every worker count.
//!
//! Coverage: every suite benchmark (small scale) under all five detector
//! configurations (the instrumented check-event traces for the RedCard/
//! SlimCard/BigFoot family, raw traces for FastTrack/SlimState), the
//! compressed container's byte-exact round trip, and a population of
//! seeded random programs under randomized schedules.

use bigfoot::instrument;
use bigfoot_bfj::trace::compress::{compress, decompress};
use bigfoot_bfj::{parse_program, trace::TraceWriter, EventSink, Interp, Program, SchedPolicy};
use bigfoot_detectors::{replay_compressed, Detector, ReplayConfig, Stats, TraceReader};
use bigfoot_workloads::{benchmarks, random_program, RandomConfig, Scale};

fn record(program: &Program, policy: SchedPolicy) -> Vec<u8> {
    let mut w = TraceWriter::new();
    Interp::new(program, policy).run(&mut w).expect("run");
    w.into_bytes()
}

fn serial(bytes: &[u8], mut det: Detector) -> Stats {
    for ev in TraceReader::new(bytes).expect("trace header") {
        det.event(&ev.expect("trace event"));
    }
    det.finish()
}

#[track_caller]
fn assert_identical(label: &str, workers: usize, compressed: &Stats, serial: &Stats) {
    assert_eq!(
        compressed.races, serial.races,
        "{label}: races diverge at {workers} worker(s)"
    );
    assert_eq!(
        compressed.to_json().to_string_compact(),
        serial.to_json().to_string_compact(),
        "{label}: stats diverge at {workers} worker(s)"
    );
}

/// Compresses, checks the byte-exact round trip, and returns the packed
/// container.
fn pack(label: &str, raw: &[u8]) -> Vec<u8> {
    let packed = compress(raw).expect("compress");
    assert_eq!(
        decompress(&packed).expect("decompress").as_slice(),
        raw,
        "{label}: compressed round trip must be byte-exact"
    );
    packed
}

#[test]
fn suite_benchmarks_detect_identically_on_compressed_traces() {
    for b in benchmarks(Scale::Small) {
        // Instrumented trace: the three check-event configurations.
        let inst = instrument(&b.program);
        let bytes = record(&inst.program, SchedPolicy::default());
        let packed = pack(b.name, &bytes);
        let configs: Vec<(&str, ReplayConfig, Detector)> = vec![
            (
                "redcard",
                ReplayConfig::redcard(inst.proxies.clone(), 1),
                Detector::redcard(inst.proxies.clone()),
            ),
            (
                "slimcard",
                ReplayConfig::slimcard(inst.proxies.clone(), 1),
                Detector::slimcard(inst.proxies.clone()),
            ),
            (
                "bigfoot",
                ReplayConfig::bigfoot(inst.proxies.clone(), 1),
                Detector::bigfoot(inst.proxies.clone()),
            ),
        ];
        for (name, mut config, det) in configs {
            let reference = serial(&bytes, det);
            for workers in [1usize, 4] {
                config.workers = workers;
                let stats = replay_compressed(&packed, &config).expect("compressed replay");
                assert_identical(&format!("{}/{name}", b.name), workers, &stats, &reference);
            }
        }

        // Raw trace: the two raw-access configurations.
        let bytes = record(&b.program, SchedPolicy::default());
        let packed = pack(b.name, &bytes);
        for (name, mut config, det) in [
            (
                "fasttrack",
                ReplayConfig::fasttrack(1),
                Detector::fasttrack(),
            ),
            (
                "slimstate",
                ReplayConfig::slimstate(1),
                Detector::slimstate(),
            ),
        ] {
            let reference = serial(&bytes, det);
            for workers in [1usize, 4] {
                config.workers = workers;
                let stats = replay_compressed(&packed, &config).expect("compressed replay");
                assert_identical(&format!("{}/{name}", b.name), workers, &stats, &reference);
            }
        }
    }
}

#[test]
fn random_programs_detect_identically_on_compressed_traces() {
    let mut races_seen = 0usize;
    for seed in 0..40u64 {
        let cfg = RandomConfig {
            seed: seed + 1,
            size: 8 + (seed as usize % 9),
            threads: 2 + (seed as usize % 3),
            array_len: 16 + (seed as usize % 17),
            racy: seed % 2 == 0,
            ..RandomConfig::default()
        };
        let src = random_program(&cfg);
        let program = parse_program(&src).expect("generated program parses");
        let policy = SchedPolicy::Random {
            seed: seed * 31 + 7,
            switch_inv: 2,
        };
        let bytes = record(&program, policy);
        let packed = pack(&format!("random seed {seed}"), &bytes);
        let reference = serial(&bytes, Detector::fasttrack());
        if reference.has_races() {
            races_seen += 1;
        }
        for workers in [1usize, 2, 4] {
            let stats =
                replay_compressed(&packed, &ReplayConfig::fasttrack(workers)).expect("creplay");
            assert_identical(&format!("random seed {seed}"), workers, &stats, &reference);
        }
        // The footprint engine is where memoized extrapolation actually
        // engages; exercise it on the same traces.
        let slim_reference = serial(&bytes, Detector::slimstate());
        for workers in [1usize, 3] {
            let stats =
                replay_compressed(&packed, &ReplayConfig::slimstate(workers)).expect("creplay");
            assert_identical(
                &format!("random seed {seed} (slimstate)"),
                workers,
                &stats,
                &slim_reference,
            );
        }
    }
    assert!(
        races_seen > 0,
        "the racy generator configurations should race at least once"
    );
}

#[test]
fn compression_pays_on_loop_heavy_benchmarks() {
    // Not a perf gate — a structural sanity check that the grammar layer
    // actually compresses the loop-heavy suite members instead of
    // degenerating to pass-through.
    let mut best = 0.0f64;
    for b in benchmarks(Scale::Small) {
        let bytes = record(&b.program, SchedPolicy::default());
        let packed = pack(b.name, &bytes);
        let ratio = bytes.len() as f64 / packed.len() as f64;
        best = best.max(ratio);
    }
    assert!(
        best >= 4.0,
        "at least one loop-heavy benchmark should compress well, best ratio {best:.2}"
    );
}
