//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! Usage:
//!
//! ```text
//! repro [table1|table2|fig2|fig8|static|ablation|replay|fuzz|perf|all]
//!       [--scale small|full] [--reps N] [--bench NAME]
//!       [--replay-workers N] [--budget SECS]
//!       [--pipeline [--detect-workers N]] [--compiled] [--compressed]
//!       [--json] [--out FILE]
//! ```
//!
//! * `table1` — per-benchmark StaticBF time, check ratio, base time, and
//!   time overheads for FT/RC/SS/SC/BF (wall clock plus the op-count
//!   model).
//! * `table2` — shadow-space overhead relative to FastTrack.
//! * `fig2`   — the headline mean-overhead comparison row.
//! * `fig8`   — per-benchmark check ratios (arrays vs fields) and the
//!   BF/FT overhead ratio.
//! * `static` — the §6.1 static-analysis scaling claim, including the
//!   entailment engine's measured share of analysis time.
//! * `replay` — record each benchmark to an in-memory trace, then compare
//!   serial detection against the sharded parallel replay engine
//!   (`--replay-workers N` pins one worker count; default measures
//!   1, 2, and 4). Errors if any replay's verdicts diverge from serial.
//! * `fuzz`   — run the differential fuzzing campaign (placement,
//!   replay, and trace-codec oracles over seeded random programs and
//!   schedules; `--budget SECS` bounds wall-clock time). Errors if any
//!   oracle diverges.
//! * `perf`   — the tracked performance baseline: record each benchmark
//!   to a trace, stream the pre-decoded events through every detector
//!   configuration (detector-only events/sec), and report static-analysis
//!   wall time, entailment share, and peak shadow space. `--out
//!   BENCH.json` writes the baseline; `--check BENCH.json` re-measures
//!   and fails on a >`--tolerance` (default 0.25) throughput regression
//!   (see `docs/PERFORMANCE.md`). `--pipeline` additionally measures
//!   end-to-end serial vs pipelined (batched-ring) throughput per
//!   detector configuration and adds an additive `pipeline` section to
//!   the JSON report; `--pipeline --detect-workers N` also measures the
//!   sharded multi-worker fan-out (FastTrack and DJIT+, serial vs `N`
//!   detection workers) and adds an additive `pipeline_sharded` section.
//!   `--compiled` measures the bytecode compilation tier against the
//!   tree-walking interpreter (uninstrumented steps/sec and
//!   BigFoot-instrumented end-to-end events/sec) and adds an additive
//!   `compiled` section. `--compressed` records each configuration's
//!   trace, compresses it to the `BFTC` grammar container, and compares
//!   raw-trace replay against detection directly on the compressed form
//!   (per-benchmark compression ratio, replay events/sec both ways,
//!   memoization counts, and verdict equality) in an additive
//!   `compressed` section. An always-on `static_incremental` section
//!   reports the persistent placement cache's cold vs warm analysis
//!   wall time and the post-edit skip rate. The drift gate compares
//!   section *presence* in both directions, so `--check` must run with
//!   the same flags the committed baseline was generated with.
//! * `--json` — emit the machine-readable report (schema in
//!   `docs/OBSERVABILITY.md`) on stdout instead of the human tables;
//!   `--out FILE` writes it to a file as well.

use bigfoot_bench::report;
use bigfoot_bench::{
    geomean, mean, measure, measure_ablation, measure_replay, BenchResult, ReplayResult, ABLATIONS,
    DETECTORS,
};
use bigfoot_obs::cli::CliArgs;
use bigfoot_obs::json::Json;
use bigfoot_workloads::{benchmark, benchmarks, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!();
            eprintln!(
                "usage: repro [table1|table2|fig2|fig8|static|ablation|replay|fuzz|perf|all] \
                 [--scale small|full] [--reps N] [--bench NAME] [--replay-workers N] \
                 [--budget SECS] [--check BENCH.json] [--tolerance FRAC] \
                 [--pipeline [--detect-workers N]] [--compiled] [--compressed] \
                 [--trace-out FILE] [--metrics-out FILE] [--json] [--out FILE]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let args = CliArgs::parse(
        args,
        &[
            "--scale",
            "--reps",
            "--bench",
            "--out",
            "--replay-workers",
            "--detect-workers",
            "--budget",
            "--check",
            "--tolerance",
            "--trace-out",
            "--metrics-out",
        ],
        &["--json", "--pipeline", "--compiled", "--compressed"],
    )?;
    // The flight recorder spans the whole command (`repro perf
    // --pipeline --trace-out t.json` shows the interpreter/detector
    // overlap per rep); the guard's drop path also writes the trace when
    // a command errors out or panics mid-run.
    let trace_guard = args
        .value("--trace-out")
        .map(bigfoot_obs::TraceOutGuard::new);
    let result = run_cmd(&args);
    if result.is_ok() {
        if let Some(path) = args.value("--metrics-out") {
            bigfoot_obs::trace::publish_counters();
            std::fs::write(path, bigfoot_obs::prometheus_text())
                .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        }
    }
    if let Some(guard) = trace_guard {
        let path = guard.path().display().to_string();
        let finished = guard.finish();
        if result.is_ok() {
            finished.map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        }
    }
    result
}

fn run_cmd(args: &CliArgs) -> Result<(), String> {
    let what = args.positional(0).unwrap_or("all").to_owned();
    let scale_name = args.one_of("--scale", &["full", "small"])?;
    let scale = match scale_name {
        "small" => Scale::Small,
        _ => Scale::Full,
    };
    let reps: usize = args.parsed("--reps")?.unwrap_or(3);
    let json = args.has("--json");
    validate_workers(
        args.parsed("--detect-workers")?,
        args.has("--pipeline"),
        args.parsed("--replay-workers")?,
    )?;

    // Collection feeds both the JSON reports (entailment share, §6.1) and
    // the human `static` table, so it is always on in this binary.
    bigfoot_obs::set_enabled(true);

    if what == "ablation" {
        let out = ablation(scale, reps, json);
        return emit(out, args, json);
    }

    if what == "fuzz" {
        // The differential soundness gate: random programs + schedules
        // through the placement, replay, and codec oracles. Scale picks
        // the seed window; the optional budget caps wall-clock time.
        let seeds = match scale {
            Scale::Small => 60,
            Scale::Full => 500,
        };
        let budget_secs: u64 = args.parsed("--budget")?.unwrap_or(0);
        eprintln!("fuzzing {seeds} seeded case(s) through the differential oracles …");
        let report = bigfoot_fuzz::run_campaign(&bigfoot_fuzz::FuzzOptions {
            seed_lo: 1,
            seed_hi: 1 + seeds,
            budget_secs,
            corpus_dir: None,
            ..bigfoot_fuzz::FuzzOptions::default()
        });
        if !report.divergences.is_empty() {
            for d in &report.divergences {
                eprintln!(
                    "DIVERGENCE seed {} [{}] {}",
                    d.seed,
                    d.oracle.name(),
                    d.detail
                );
                eprintln!("{}", d.minimized);
            }
            return Err(format!(
                "{} differential divergence(s) found — placement is unsound",
                report.divergences.len()
            ));
        }
        if json {
            let mut out = Json::object();
            out.set("schema_version", report::SCHEMA_VERSION);
            out.set("tool", "repro");
            out.set("command", "fuzz");
            out.set("report", report.to_json());
            return emit(Some(out), args, true);
        }
        println!(
            "fuzz: {} case(s) over seeds {}..{} in {:.1}s — all oracles agree \
             (roundtrip {}, compiled {}, placement {}, incremental {}, replay {}, \
             compressed {}, pipeline {})",
            report.cases,
            report.seed_lo,
            report.seed_hi,
            report.elapsed.as_secs_f64(),
            report.oracle_runs[0],
            report.oracle_runs[1],
            report.oracle_runs[2],
            report.oracle_runs[3],
            report.oracle_runs[4],
            report.oracle_runs[5],
            report.oracle_runs[6],
        );
        return Ok(());
    }

    let selected: Vec<_> = match args.value("--bench") {
        None => benchmarks(scale),
        Some(name) => {
            vec![benchmark(name, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?]
        }
    };

    if what == "perf" {
        eprintln!(
            "perf-profiling {} benchmark(s) at {scale:?} scale, {reps} reps per detector …",
            selected.len()
        );
        let results: Vec<bigfoot_bench::perf::PerfBench> = selected
            .iter()
            .map(|b| {
                eprintln!("  {}", b.name);
                bigfoot_bench::perf::measure_perf(b.name, &b.program, reps)
            })
            .collect();
        let pipelined = args.has("--pipeline");
        let detect_workers: Option<usize> = args.parsed("--detect-workers")?;
        let pipeline: Option<Vec<bigfoot_bench::perf::PipelineBench>> = pipelined.then(|| {
            eprintln!("pipelined end-to-end throughput (serial vs batched ring hand-off) …");
            selected
                .iter()
                .map(|b| {
                    eprintln!("  {}", b.name);
                    bigfoot_bench::perf::measure_pipeline(b.name, &b.program, reps)
                })
                .collect()
        });
        let sharded: Option<Vec<bigfoot_bench::perf::ShardedBench>> =
            detect_workers.map(|workers| {
                eprintln!(
                    "sharded end-to-end throughput (serial vs {workers} detection worker(s)) …"
                );
                selected
                    .iter()
                    .map(|b| {
                        eprintln!("  {}", b.name);
                        bigfoot_bench::perf::measure_sharded(b.name, &b.program, reps, workers)
                    })
                    .collect()
            });
        let compiled: Option<Vec<bigfoot_bench::perf::CompiledBench>> =
            args.has("--compiled").then(|| {
                eprintln!("compiled tier throughput (bytecode vs tree-walking interpreter) …");
                selected
                    .iter()
                    .map(|b| {
                        eprintln!("  {}", b.name);
                        bigfoot_bench::perf::measure_compiled(b.name, &b.program, reps)
                    })
                    .collect()
            });
        let compressed: Option<Vec<bigfoot_bench::perf::CompressedBench>> =
            args.has("--compressed").then(|| {
                eprintln!("compressed-trace detection (raw replay vs memoized grammar walk) …");
                selected
                    .iter()
                    .map(|b| {
                        eprintln!("  {}", b.name);
                        bigfoot_bench::perf::measure_compressed(b.name, &b.program, reps)
                    })
                    .collect()
            });
        if let Some(compressed) = &compressed {
            for r in compressed {
                for d in &r.detectors {
                    if !d.matches {
                        return Err(format!(
                            "compressed-replay verdicts diverge from raw replay on `{}` ({})",
                            r.name, d.name
                        ));
                    }
                }
            }
        }
        eprintln!("incremental static analysis (cold vs warm placement cache) …");
        let incremental: Vec<bigfoot_bench::perf::StaticIncrementalBench> = selected
            .iter()
            .map(|b| bigfoot_bench::perf::measure_static_incremental(b.name, &b.program, reps))
            .collect();
        let report = bigfoot_bench::perf::perf_json(
            &results,
            &incremental,
            pipeline.as_deref(),
            sharded.as_deref(),
            compiled.as_deref(),
            compressed.as_deref(),
            scale_name,
            reps,
        );
        if let Some(path) = args.value("--check") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let baseline = bigfoot_obs::json::parse(&text)
                .map_err(|e| format!("baseline {path} is not valid JSON: {e}"))?;
            let tolerance: f64 = args.parsed("--tolerance")?.unwrap_or(0.25);
            let lines = bigfoot_bench::perf::check_against_baseline(&report, &baseline, tolerance)?;
            for line in lines {
                eprintln!("  {line}");
            }
            eprintln!("perf within {:.0}% of {path}", tolerance * 100.0);
        }
        if json {
            return emit(Some(report), args, true);
        }
        perf_table(&results);
        incremental_table(&incremental);
        if let Some(pipeline) = &pipeline {
            pipeline_table(pipeline);
        }
        if let Some(sharded) = &sharded {
            sharded_table(sharded);
        }
        if let Some(compiled) = &compiled {
            compiled_table(compiled);
        }
        if let Some(compressed) = &compressed {
            compressed_table(compressed);
        }
        return Ok(());
    }

    if what == "replay" {
        let workers: Vec<usize> = match args.parsed::<usize>("--replay-workers")? {
            Some(n) => vec![n],
            None => vec![1, 2, 4],
        };
        eprintln!(
            "recording and replaying {} benchmark(s) at {scale:?} scale, workers {workers:?} …",
            selected.len()
        );
        let results: Vec<ReplayResult> = selected
            .iter()
            .map(|b| {
                eprintln!("  {}", b.name);
                measure_replay(b.name, &b.program, &workers, reps)
            })
            .collect();
        for r in &results {
            for run in &r.replays {
                if !run.matches_serial {
                    return Err(format!(
                        "replay verdicts diverge from serial detection on `{}` at {} worker(s)",
                        r.name, run.workers
                    ));
                }
            }
        }
        if json {
            return emit(
                Some(report::replay_json(&results, scale_name, reps)),
                args,
                true,
            );
        }
        replay_table(&results);
        return Ok(());
    }
    eprintln!(
        "measuring {} benchmark(s) at {scale:?} scale, {reps} reps per detector …",
        selected.len()
    );
    let results: Vec<BenchResult> = selected
        .iter()
        .map(|b| {
            eprintln!("  {}", b.name);
            measure(b.name, &b.program, reps)
        })
        .collect();
    // The `static` and `all` reports also cover the incremental pipeline
    // (cold vs warm placement-cache wall time and post-edit skip rate).
    let measure_inc = || -> Vec<bigfoot_bench::perf::StaticIncrementalBench> {
        eprintln!("incremental static analysis (cold vs warm placement cache) …");
        selected
            .iter()
            .map(|b| bigfoot_bench::perf::measure_static_incremental(b.name, &b.program, reps))
            .collect()
    };
    if json {
        let report = match what.as_str() {
            "table1" => report::table1_json(&results, scale_name, reps),
            "table2" => report::table2_json(&results, scale_name, reps),
            "fig2" => report::fig2_json(&results, scale_name, reps),
            "fig8" => report::fig8_json(&results, scale_name, reps),
            "static" => report::static_json(&results, &measure_inc(), scale_name, reps),
            "all" => {
                let mut all = report::envelope("all", scale_name, reps);
                all.set("table1", report::table1_json(&results, scale_name, reps));
                all.set("table2", report::table2_json(&results, scale_name, reps));
                all.set("fig2", report::fig2_json(&results, scale_name, reps));
                all.set("fig8", report::fig8_json(&results, scale_name, reps));
                all.set(
                    "static",
                    report::static_json(&results, &measure_inc(), scale_name, reps),
                );
                all
            }
            other => return Err(format!("unknown command `{other}`")),
        };
        return emit(Some(report), args, true);
    }
    match what.as_str() {
        "table1" => table1(&results),
        "table2" => table2(&results),
        "fig2" => fig2(&results),
        "fig8" => fig8(&results),
        "static" => {
            static_stats(&results);
            incremental_table(&measure_inc());
        }
        "all" => {
            table1(&results);
            println!();
            table2(&results);
            println!();
            fig8(&results);
            println!();
            fig2(&results);
            println!();
            static_stats(&results);
            incremental_table(&measure_inc());
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

/// Prints the JSON report to stdout and, with `--out FILE`, writes it to
/// the file too.
fn emit(report: Option<Json>, args: &CliArgs, json: bool) -> Result<(), String> {
    let Some(report) = report else { return Ok(()) };
    if !json {
        return Ok(());
    }
    let text = report.to_string_pretty();
    println!("{text}");
    if let Some(path) = args.value("--out") {
        std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn table1(results: &[BenchResult]) {
    println!("== Table 1: checker performance ==");
    println!(
        "{:<11} {:>7} {:>9} {:>6} {:>9} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>6}",
        "program",
        "methods",
        "s/meth",
        "CR",
        "base(ms)",
        "FT",
        "RC",
        "SS",
        "SC",
        "BF",
        "RC/FT",
        "SS/FT",
        "SC/FT",
        "BF/FT"
    );
    for r in results {
        let base = r.base_time;
        let ft = r.run("FT").overhead(base);
        let rc = r.run("RC").overhead(base);
        let ss = r.run("SS").overhead(base);
        let sc = r.run("SC").overhead(base);
        let bf = r.run("BF").overhead(base);
        let cr = r.run("BF").stats.check_ratio();
        println!(
            "{:<11} {:>7} {:>9.4} {:>6.2} {:>9.2} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} | {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            r.name,
            r.static_stats.methods,
            r.static_stats.time_per_method().as_secs_f64(),
            cr,
            base.as_secs_f64() * 1e3,
            ft,
            rc,
            ss,
            sc,
            bf,
            ratio(rc, ft),
            ratio(ss, ft),
            ratio(sc, ft),
            ratio(bf, ft),
        );
    }
    let mean_cr = mean(results.iter().map(|r| r.run("BF").stats.check_ratio()));
    print!(
        "{:<11} {:>7} {:>9.4} {:>6.2} {:>9} |",
        "Mean",
        results
            .iter()
            .map(|r| r.static_stats.methods)
            .sum::<usize>(),
        mean(
            results
                .iter()
                .map(|r| r.static_stats.time_per_method().as_secs_f64())
        ),
        mean_cr,
        ""
    );
    for d in ["FT", "RC", "SS", "SC", "BF"] {
        print!(
            " {:>7.2}",
            geomean(results.iter().map(|r| r.run(d).overhead(r.base_time)))
        );
    }
    print!(" |");
    for d in ["RC", "SS", "SC", "BF"] {
        print!(
            " {:>6.2}",
            geomean(results.iter().map(|r| ratio(
                r.run(d).overhead(r.base_time),
                r.run("FT").overhead(r.base_time)
            )))
        );
    }
    println!();
    println!();
    println!(
        "-- operation-count cost model (shadow+footprint+check+sync units, relative to FT) --"
    );
    println!(
        "{:<11} {:>10} | {:>6} {:>6} {:>6} {:>6}",
        "program", "FT units", "RC", "SS", "SC", "BF"
    );
    for r in results {
        let ft = r.run("FT").model_cost();
        println!(
            "{:<11} {:>10.0} | {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            r.name,
            ft,
            r.run("RC").model_cost() / ft,
            r.run("SS").model_cost() / ft,
            r.run("SC").model_cost() / ft,
            r.run("BF").model_cost() / ft,
        );
    }
    print!("{:<11} {:>10} |", "GeoMean", "");
    for d in ["RC", "SS", "SC", "BF"] {
        print!(
            " {:>6.2}",
            geomean(
                results
                    .iter()
                    .map(|r| r.run(d).model_cost() / r.run("FT").model_cost())
            )
        );
    }
    println!();
}

fn replay_table(results: &[ReplayResult]) {
    println!("== Trace replay: serial vs sharded parallel detection (BigFoot config) ==");
    println!(
        "{:<11} {:>9} {:>9} {:>10} {:>10} | replay ms (speedup) per workers",
        "program", "trace KB", "events", "record ms", "serial ms"
    );
    for r in results {
        print!(
            "{:<11} {:>9.1} {:>9} {:>10.2} {:>10.2} |",
            r.name,
            r.trace_bytes as f64 / 1024.0,
            r.trace_events,
            r.record_time.as_secs_f64() * 1e3,
            r.serial_time.as_secs_f64() * 1e3,
        );
        for run in &r.replays {
            print!(
                " {}w:{:.2} ({:.2}x)",
                run.workers,
                run.time.as_secs_f64() * 1e3,
                r.serial_time.as_secs_f64() / run.time.as_secs_f64().max(1e-9),
            );
        }
        println!();
    }
    if let Some(first) = results.first() {
        print!("geomean speedup:");
        for run in &first.replays {
            let w = run.workers;
            print!(
                " {}w {:.2}x",
                w,
                geomean(results.iter().map(|r| {
                    let replay = r.replays.iter().find(|x| x.workers == w).expect("worker");
                    r.serial_time.as_secs_f64() / replay.time.as_secs_f64().max(1e-9)
                }))
            );
        }
        println!();
    }
    println!("all replay verdicts matched serial detection bit-for-bit.");
}

fn perf_table(results: &[bigfoot_bench::perf::PerfBench]) {
    println!("== perf baseline: detector event-loop throughput (events/sec) ==");
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>12} {:>12} | {:>11} {:>7}",
        "program", "FT", "RC", "SS", "SC", "BF", "analysis ms", "entail"
    );
    for r in results {
        print!("{:<11}", r.name);
        for d in DETECTORS {
            print!(" {:>12.3e}", r.run(d).events_per_sec);
        }
        println!(
            " | {:>11.2} {:>6.1}%",
            r.static_obs.analysis_ns as f64 / 1e6,
            r.static_obs.entail_share() * 100.0
        );
    }
    print!("{:<11}", "GeoMean");
    for d in DETECTORS {
        print!(
            " {:>12.3e}",
            geomean(results.iter().map(|r| r.run(d).events_per_sec))
        );
    }
    println!(" |");
}

fn incremental_table(results: &[bigfoot_bench::perf::StaticIncrementalBench]) {
    println!();
    println!(
        "== incremental static analysis: cold vs warm placement cache \
         (warm-after-edit = one-method arithmetic tweak) =="
    );
    println!(
        "{:<11} {:>6} {:>10} {:>10} {:>7} | {:>12} {:>5} {:>5} {:>6}",
        "program", "sites", "cold ms", "warm ms", "w/c", "edit-warm ms", "hit", "miss", "skip"
    );
    for r in results {
        println!(
            "{:<11} {:>6} {:>10.3} {:>10.3} {:>6.2} | {:>12.3} {:>5} {:>5} {:>5.0}%",
            r.name,
            r.sites,
            r.cold_ns as f64 / 1e6,
            r.warm_ns as f64 / 1e6,
            r.warm_over_cold(),
            r.edit_warm_ns as f64 / 1e6,
            r.edit_hits,
            r.edit_misses,
            r.edit_skip_rate() * 100.0,
        );
    }
    let cold: u64 = results.iter().map(|r| r.cold_ns).sum();
    let warm: u64 = results.iter().map(|r| r.warm_ns).sum();
    let hits: usize = results.iter().map(|r| r.edit_hits).sum();
    let total: usize = results.iter().map(|r| r.edit_hits + r.edit_misses).sum();
    println!(
        "{:<11} {:>6} {:>10.3} {:>10.3} {:>6.2} | {:>12} {:>5} {:>5} {:>5.0}%",
        "Total",
        total,
        cold as f64 / 1e6,
        warm as f64 / 1e6,
        if cold > 0 {
            warm as f64 / cold as f64
        } else {
            1.0
        },
        "",
        hits,
        total - hits,
        if total > 0 {
            hits as f64 / total as f64 * 100.0
        } else {
            0.0
        },
    );
}

fn pipeline_table(results: &[bigfoot_bench::perf::PipelineBench]) {
    println!();
    println!("== pipelined detection: end-to-end speedup (pipelined / serial events/sec) ==");
    println!(
        "{:<11} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "program", "FT", "RC", "SS", "SC", "BF"
    );
    for r in results {
        print!("{:<11}", r.name);
        for d in DETECTORS {
            print!(" {:>6.2}x", r.run(d).speedup());
        }
        println!();
    }
    print!("{:<11}", "GeoMean");
    for d in DETECTORS {
        print!(
            " {:>6.2}x",
            geomean(results.iter().map(|r| r.run(d).speedup()))
        );
    }
    println!();
}

fn sharded_table(results: &[bigfoot_bench::perf::ShardedBench]) {
    let workers = results.first().map_or(0, |r| r.workers);
    println!();
    println!(
        "== sharded detection: end-to-end speedup at {workers} worker(s) \
         (sharded / serial events/sec) =="
    );
    println!("{:<11} {:>7} {:>7}", "program", "FT", "DJIT");
    for r in results {
        print!("{:<11}", r.name);
        for d in bigfoot_bench::perf::SHARDED_DETECTORS {
            print!(" {:>6.2}x", r.run(d).speedup());
        }
        println!();
    }
    print!("{:<11}", "GeoMean");
    for d in bigfoot_bench::perf::SHARDED_DETECTORS {
        print!(
            " {:>6.2}x",
            geomean(results.iter().map(|r| r.run(d).speedup()))
        );
    }
    println!();
}

fn compiled_table(results: &[bigfoot_bench::perf::CompiledBench]) {
    println!();
    println!("== compiled tier: bytecode vs tree-walking interpreter ==");
    println!(
        "{:<11} {:>12} {:>12} {:>8} | {:>12} {:>12} {:>8}",
        "program", "interp st/s", "compiled", "speedup", "interp ev/s", "compiled", "speedup"
    );
    for r in results {
        println!(
            "{:<11} {:>12.3e} {:>12.3e} {:>7.2}x | {:>12.3e} {:>12.3e} {:>7.2}x",
            r.name,
            r.interp_steps_per_sec,
            r.compiled_steps_per_sec,
            r.uninstrumented_speedup(),
            r.interp_events_per_sec,
            r.compiled_events_per_sec,
            r.instrumented_speedup(),
        );
    }
    println!(
        "{:<11} {:>12.3e} {:>12.3e} {:>7.2}x | {:>12.3e} {:>12.3e} {:>7.2}x",
        "GeoMean",
        geomean(results.iter().map(|r| r.interp_steps_per_sec)),
        geomean(results.iter().map(|r| r.compiled_steps_per_sec)),
        geomean(results.iter().map(|r| r.uninstrumented_speedup())),
        geomean(results.iter().map(|r| r.interp_events_per_sec)),
        geomean(results.iter().map(|r| r.compiled_events_per_sec)),
        geomean(results.iter().map(|r| r.instrumented_speedup())),
    );
}

fn compressed_table(results: &[bigfoot_bench::perf::CompressedBench]) {
    println!();
    println!("== compressed traces: size ratio and replay speedup (BF config sizes; speedup per config) ==");
    println!(
        "{:<11} {:>9} {:>9} {:>7} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "program", "raw KB", "bftc KB", "ratio", "FT", "RC", "SS", "SC", "BF"
    );
    for r in results {
        let bf = r.run("BF");
        print!(
            "{:<11} {:>9.1} {:>9.1} {:>6.1}x |",
            r.name,
            bf.raw_bytes as f64 / 1024.0,
            bf.compressed_bytes as f64 / 1024.0,
            bf.ratio(),
        );
        for d in DETECTORS {
            print!(" {:>6.2}x", r.run(d).speedup());
        }
        println!();
    }
    print!(
        "{:<11} {:>9} {:>9} {:>6.1}x |",
        "GeoMean",
        "",
        "",
        geomean(results.iter().map(|r| r.run("BF").ratio()))
    );
    for d in DETECTORS {
        print!(
            " {:>6.2}x",
            geomean(results.iter().map(|r| r.run(d).speedup()))
        );
    }
    println!();
    println!("all compressed-replay verdicts matched raw replay bit-for-bit.");
}

/// Worker-count flags must make sense before any measurement starts:
/// zero workers is meaningless on both the replay and the sharded
/// detection path, and `--detect-workers` only has a pipeline to shard
/// when `--pipeline` is on. Mirrors `bfc`'s validation so both CLIs
/// reject the same nonsense the same way.
fn validate_workers(
    detect_workers: Option<usize>,
    pipelined: bool,
    replay_workers: Option<usize>,
) -> Result<(), String> {
    if replay_workers == Some(0) {
        return Err("--replay-workers wants at least 1 worker".into());
    }
    match detect_workers {
        None => Ok(()),
        Some(0) => Err("--detect-workers wants at least 1 worker".into()),
        Some(_) if !pipelined => Err("--detect-workers requires --pipeline".into()),
        Some(_) if replay_workers.is_some() => {
            Err("--detect-workers and --replay-workers are mutually exclusive".into())
        }
        Some(_) => Ok(()),
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b <= 1e-9 {
        1.0
    } else {
        a / b
    }
}

fn table2(results: &[BenchResult]) {
    println!("== Table 2: checker space overhead (relative to FastTrack) ==");
    println!(
        "{:<11} {:>10} {:>8} | {:>6} {:>6} {:>6} {:>6}",
        "program", "base cells", "FT/base", "RC/FT", "SS/FT", "SC/FT", "BF/FT"
    );
    for r in results {
        let ft = r.run("FT").stats.shadow_space_peak.max(1) as f64;
        println!(
            "{:<11} {:>10} {:>8.2} | {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            r.name,
            r.heap_cells,
            ft / r.heap_cells.max(1) as f64,
            r.run("RC").stats.shadow_space_peak as f64 / ft,
            r.run("SS").stats.shadow_space_peak as f64 / ft,
            r.run("SC").stats.shadow_space_peak as f64 / ft,
            r.run("BF").stats.shadow_space_peak as f64 / ft,
        );
    }
    print!(
        "{:<11} {:>10} {:>8.2} |",
        "GeoMean",
        "",
        geomean(results.iter().map(|r| {
            r.run("FT").stats.shadow_space_peak.max(1) as f64 / r.heap_cells.max(1) as f64
        }))
    );
    for d in ["RC", "SS", "SC", "BF"] {
        print!(
            " {:>6.2}",
            geomean(results.iter().map(|r| {
                r.run(d).stats.shadow_space_peak as f64
                    / r.run("FT").stats.shadow_space_peak.max(1) as f64
            }))
        );
    }
    println!();
}

fn fig2(results: &[BenchResult]) {
    println!("== Figure 2: detector comparison (geomean run-time overhead) ==");
    println!(
        "{:<10} {:>28} {:>12}",
        "detector", "check motion/compression", "overhead"
    );
    let descr = [
        ("FT", "none"),
        ("RC", "static redundancy elim."),
        ("SS", "dynamic array compression"),
        ("SC", "RC + SS"),
        ("BF", "static motion + coalescing"),
    ];
    for (d, what) in descr {
        let oh = geomean(results.iter().map(|r| r.run(d).overhead(r.base_time)));
        println!("{d:<10} {what:>28} {oh:>11.2}x");
    }
    let bf_over_ft = geomean(results.iter().map(|r| {
        ratio(
            r.run("BF").overhead(r.base_time),
            r.run("FT").overhead(r.base_time),
        )
    }));
    println!(
        "BigFoot incurs {:.0}% of FastTrack's overhead (paper: 39%).",
        bf_over_ft * 100.0
    );
}

fn fig8(results: &[BenchResult]) {
    println!("== Figure 8: check ratios and BF/FT overhead ==");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9}",
        "program", "FT CR", "BF CR", "BF arrays", "BF fields"
    );
    let mut rows: Vec<&BenchResult> = results.iter().collect();
    rows.sort_by(|a, b| {
        a.run("BF")
            .stats
            .check_ratio()
            .partial_cmp(&b.run("BF").stats.check_ratio())
            .unwrap()
    });
    for r in &rows {
        let bf = &r.run("BF").stats;
        let accesses = bf.accesses().max(1) as f64;
        println!(
            "{:<11} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.name,
            1.0,
            bf.check_ratio(),
            bf.array_checks as f64 / accesses,
            bf.field_checks as f64 / accesses,
        );
    }
    println!();
    println!("{:<11} {:>12}", "program", "BF/FT time");
    for r in &rows {
        println!(
            "{:<11} {:>12.2}",
            r.name,
            ratio(
                r.run("BF").overhead(r.base_time),
                r.run("FT").overhead(r.base_time)
            )
        );
    }
}

/// Ablation study: each row disables one ingredient of the analysis on a
/// representative benchmark subset. Returns the JSON report when `json`.
fn ablation(scale: Scale, reps: usize, json: bool) -> Option<Json> {
    let names = ["crypt", "moldyn", "raytracer", "lufact", "sparse", "h2"];
    let mut rows = Vec::new();
    if !json {
        println!("== Ablation: BigFoot minus one ingredient (op-model cost and check ratio) ==");
        println!(
            "{:<14} {:>12} {:>8} {:>12} {:>10}",
            "config", "benchmark", "CR", "model cost", "checks"
        );
    }
    for name in names {
        let b = benchmark(name, scale).expect("benchmark");
        for (label, opts) in ABLATIONS {
            let run = measure_ablation(&b.program, opts, reps);
            if json {
                rows.push(report::ablation_row_json(label, name, &run));
            } else {
                println!(
                    "{:<14} {:>12} {:>8.3} {:>12.0} {:>10}",
                    label,
                    name,
                    run.stats.check_ratio(),
                    run.model_cost(),
                    run.stats.checks,
                );
            }
        }
        if !json {
            println!();
        }
    }
    json.then(|| {
        report::ablation_json(
            rows,
            if scale == Scale::Small {
                "small"
            } else {
                "full"
            },
            reps,
        )
    })
}

fn static_stats(results: &[BenchResult]) {
    println!("== §6.1: StaticBF scaling ==");
    println!(
        "{:<11} {:>8} {:>12} {:>12} {:>9}",
        "program", "methods", "sec/method", "entail(ms)", "share"
    );
    for r in results {
        println!(
            "{:<11} {:>8} {:>12.5} {:>12.3} {:>8.1}%",
            r.name,
            r.static_stats.methods,
            r.static_stats.time_per_method().as_secs_f64(),
            r.static_obs.entail_ns as f64 / 1e6,
            r.static_obs.entail_share() * 100.0,
        );
    }
    let avg = mean(
        results
            .iter()
            .map(|r| r.static_stats.time_per_method().as_secs_f64()),
    );
    let analysis_ns: u64 = results.iter().map(|r| r.static_obs.analysis_ns).sum();
    let entail_ns: u64 = results.iter().map(|r| r.static_obs.entail_ns).sum();
    println!("mean: {avg:.5} s/method (paper: 0.16 s/method on much larger Java methods)");
    if analysis_ns > 0 {
        println!(
            "entailment engine: {:.1}% of analysis wall time ({} queries)",
            entail_ns as f64 / analysis_ns as f64 * 100.0,
            results
                .iter()
                .map(|r| r.static_obs.entail_queries)
                .sum::<u64>(),
        );
    }
    let _ = DETECTORS;
}

#[cfg(test)]
mod tests {
    use super::validate_workers;

    #[test]
    fn zero_workers_is_rejected_on_every_path() {
        assert!(validate_workers(Some(0), true, None)
            .unwrap_err()
            .contains("--detect-workers"));
        assert!(validate_workers(None, false, Some(0))
            .unwrap_err()
            .contains("--replay-workers"));
        // Zero detect workers is nonsense even when the pipeline flag is
        // missing too — the count check fires before the pipeline check.
        assert!(validate_workers(Some(0), false, None)
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn detect_workers_needs_the_pipeline() {
        assert!(validate_workers(Some(4), false, None)
            .unwrap_err()
            .contains("requires --pipeline"));
        assert!(validate_workers(Some(4), true, Some(2))
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn valid_combinations_pass() {
        assert!(validate_workers(None, false, None).is_ok());
        assert!(validate_workers(None, false, Some(4)).is_ok());
        assert!(validate_workers(Some(4), true, None).is_ok());
        assert!(validate_workers(None, true, None).is_ok());
    }
}
