//! Machine-readable reports for the `repro` binary.
//!
//! Every `repro <command> --json` emits one JSON object with a stable
//! schema (see `docs/OBSERVABILITY.md`):
//!
//! ```text
//! {
//!   "schema_version": 2,
//!   "tool": "repro",
//!   "command": "table1",
//!   "scale": "small",
//!   "reps": 3,
//!   "benchmarks": [ { per-benchmark block } ],
//!   "summary":    { command-specific aggregates }
//! }
//! ```
//!
//! The per-benchmark block is shared by every command so downstream
//! tooling can parse all reports with one schema. The golden tests in
//! `crates/bench/tests/golden_json.rs` pin the invariants (keys present,
//! `checks <= accesses`, check ratio in `[0, 1]`, …).

use crate::{geomean, mean, BenchResult, DetectorRun, ReplayResult, DETECTORS};
use bigfoot_detectors::Stats;
use bigfoot_obs::json::Json;

/// Schema version stamped into every report; bump on breaking changes.
/// v2: kept in lockstep with `bfc`'s report schema, whose snapshot
/// timers gained `p50`/`p90`/`p99` percentile fields and a `gauges`
/// section in the same release.
pub const SCHEMA_VERSION: u64 = 2;

/// The common envelope of every `repro` report.
pub fn envelope(command: &str, scale: &str, reps: usize) -> Json {
    let mut out = Json::object();
    out.set("schema_version", SCHEMA_VERSION);
    out.set("tool", "repro");
    out.set("command", command);
    out.set("scale", scale);
    out.set("reps", reps as u64);
    out
}

/// Detector statistics as a JSON object (same schema as `bfc --json`).
pub fn stats_json(s: &Stats) -> Json {
    s.to_json()
}

fn detector_run_json(run: &DetectorRun, base: std::time::Duration) -> Json {
    let mut out = Json::object();
    out.set("time_ms", run.time.as_secs_f64() * 1e3);
    out.set("overhead", run.overhead(base));
    out.set("model_cost", run.model_cost());
    out.set("stats", stats_json(&run.stats));
    out
}

/// The shared per-benchmark block.
pub fn benchmark_json(r: &BenchResult) -> Json {
    let mut out = Json::object();
    out.set("name", r.name);
    out.set("base_ms", r.base_time.as_secs_f64() * 1e3);
    out.set("heap_cells", r.heap_cells);

    let mut stat = Json::object();
    stat.set("methods", r.static_stats.methods as u64);
    stat.set("checks_inserted", r.static_stats.checks_inserted as u64);
    stat.set("total_ms", r.static_stats.total_time.as_secs_f64() * 1e3);
    stat.set(
        "sec_per_method",
        r.static_stats.time_per_method().as_secs_f64(),
    );
    let mut per_method = Json::array();
    for (name, dt) in &r.static_stats.per_method {
        let mut m = Json::object();
        m.set("name", name.as_str());
        m.set("ms", dt.as_secs_f64() * 1e3);
        per_method.push(m);
    }
    stat.set("per_method", per_method);
    stat.set("entail_ms", r.static_obs.entail_ns as f64 / 1e6);
    stat.set("entail_share", r.static_obs.entail_share());
    stat.set("entail_queries", r.static_obs.entail_queries);
    out.set("static", stat);

    let mut detectors = Json::object();
    for d in DETECTORS {
        detectors.set(d, detector_run_json(r.run(d), r.base_time));
    }
    out.set("detectors", detectors);
    out
}

fn with_benchmarks(mut env: Json, results: &[BenchResult]) -> Json {
    let mut arr = Json::array();
    for r in results {
        arr.push(benchmark_json(r));
    }
    env.set("benchmarks", arr);
    env
}

fn overhead_geomeans(results: &[BenchResult]) -> Json {
    let mut out = Json::object();
    for d in DETECTORS {
        out.set(
            d,
            geomean(results.iter().map(|r| r.run(d).overhead(r.base_time))),
        );
    }
    out
}

fn ft_relative(results: &[BenchResult], f: impl Fn(&BenchResult, &str) -> f64) -> Json {
    let mut out = Json::object();
    for d in ["RC", "SS", "SC", "BF"] {
        out.set(d, geomean(results.iter().map(|r| f(r, d))));
    }
    out
}

/// `repro table1 --json`: overheads and the op-count cost model.
pub fn table1_json(results: &[BenchResult], scale: &str, reps: usize) -> Json {
    let env = with_benchmarks(envelope("table1", scale, reps), results);
    let mut summary = Json::object();
    summary.set(
        "mean_check_ratio",
        mean(results.iter().map(|r| r.run("BF").stats.check_ratio())),
    );
    summary.set("overhead_geomean", overhead_geomeans(results));
    summary.set(
        "overhead_vs_ft_geomean",
        ft_relative(results, |r, d| {
            safe_ratio(
                r.run(d).overhead(r.base_time),
                r.run("FT").overhead(r.base_time),
            )
        }),
    );
    summary.set(
        "model_cost_vs_ft_geomean",
        ft_relative(results, |r, d| {
            r.run(d).model_cost() / r.run("FT").model_cost().max(1e-9)
        }),
    );
    finish(env, summary)
}

/// `repro table2 --json`: shadow-space overhead relative to FastTrack.
pub fn table2_json(results: &[BenchResult], scale: &str, reps: usize) -> Json {
    let env = with_benchmarks(envelope("table2", scale, reps), results);
    let mut summary = Json::object();
    summary.set(
        "ft_over_base_geomean",
        geomean(results.iter().map(|r| {
            r.run("FT").stats.shadow_space_peak.max(1) as f64 / r.heap_cells.max(1) as f64
        })),
    );
    summary.set(
        "space_vs_ft_geomean",
        ft_relative(results, |r, d| {
            r.run(d).stats.shadow_space_peak as f64
                / r.run("FT").stats.shadow_space_peak.max(1) as f64
        }),
    );
    finish(env, summary)
}

/// `repro fig2 --json`: the headline geomean-overhead comparison.
pub fn fig2_json(results: &[BenchResult], scale: &str, reps: usize) -> Json {
    let env = with_benchmarks(envelope("fig2", scale, reps), results);
    let mut summary = Json::object();
    summary.set("overhead_geomean", overhead_geomeans(results));
    summary.set("bf_over_ft", bf_over_ft(results));
    finish(env, summary)
}

/// `repro fig8 --json`: check ratios and the BF/FT overhead ratio.
pub fn fig8_json(results: &[BenchResult], scale: &str, reps: usize) -> Json {
    let env = with_benchmarks(envelope("fig8", scale, reps), results);
    let mut summary = Json::object();
    summary.set(
        "mean_check_ratio",
        mean(results.iter().map(|r| r.run("BF").stats.check_ratio())),
    );
    summary.set("bf_over_ft", bf_over_ft(results));
    finish(env, summary)
}

/// `repro static --json`: the §6.1 scaling claim, with per-method wall
/// times, the entailment engine's measured share of analysis time
/// (sourced from `bigfoot-obs` spans), and the incremental pipeline's
/// cold/warm wall times and post-edit skip rate.
pub fn static_json(
    results: &[BenchResult],
    incremental: &[crate::perf::StaticIncrementalBench],
    scale: &str,
    reps: usize,
) -> Json {
    let env = with_benchmarks(envelope("static", scale, reps), results);
    let mut summary = Json::object();
    summary.set(
        "mean_sec_per_method",
        mean(
            results
                .iter()
                .map(|r| r.static_stats.time_per_method().as_secs_f64()),
        ),
    );
    let analysis_ns: u64 = results.iter().map(|r| r.static_obs.analysis_ns).sum();
    let entail_ns: u64 = results.iter().map(|r| r.static_obs.entail_ns).sum();
    summary.set("analysis_ms", analysis_ns as f64 / 1e6);
    summary.set("entail_ms", entail_ns as f64 / 1e6);
    summary.set(
        "entail_share",
        if analysis_ns == 0 {
            0.0
        } else {
            entail_ns as f64 / analysis_ns as f64
        },
    );
    summary.set(
        "entail_queries",
        results
            .iter()
            .map(|r| r.static_obs.entail_queries)
            .sum::<u64>(),
    );
    let cold_ns: u64 = incremental.iter().map(|r| r.cold_ns).sum();
    let warm_ns: u64 = incremental.iter().map(|r| r.warm_ns).sum();
    summary.set("incremental_cold_ms", cold_ns as f64 / 1e6);
    summary.set("incremental_warm_ms", warm_ns as f64 / 1e6);
    summary.set(
        "incremental_warm_over_cold",
        if cold_ns > 0 {
            warm_ns as f64 / cold_ns as f64
        } else {
            1.0
        },
    );
    let hits: usize = incremental.iter().map(|r| r.edit_hits).sum();
    let total: usize = incremental
        .iter()
        .map(|r| r.edit_hits + r.edit_misses)
        .sum();
    summary.set(
        "incremental_edit_skip_rate",
        if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
    );
    finish(env, summary)
}

/// One `repro ablation --json` row.
pub fn ablation_row_json(config: &str, benchmark: &str, run: &DetectorRun) -> Json {
    let mut out = Json::object();
    out.set("config", config);
    out.set("benchmark", benchmark);
    out.set("check_ratio", run.stats.check_ratio());
    out.set("model_cost", run.model_cost());
    out.set("checks", run.stats.checks);
    out.set("races", run.stats.races.len() as u64);
    out
}

/// The `repro ablation --json` envelope around collected rows.
pub fn ablation_json(rows: Vec<Json>, scale: &str, reps: usize) -> Json {
    let mut env = envelope("ablation", scale, reps);
    let mut arr = Json::array();
    for row in rows {
        arr.push(row);
    }
    env.set("rows", arr);
    env
}

/// `repro replay --json`: serial vs sharded-parallel trace replay.
///
/// Deterministic content (trace shape, races, counters, the
/// `serial_matches` verdict) lives under each benchmark's `verdicts`
/// block; wall-clock measurements live under `timing` and the top-level
/// `timing_summary`/`workers` keys. CI compares reports from different
/// `--replay-workers` invocations after stripping exactly those
/// timing-dependent keys.
pub fn replay_json(results: &[ReplayResult], scale: &str, reps: usize) -> Json {
    let mut env = envelope("replay", scale, reps);
    let mut workers = Json::array();
    if let Some(r) = results.first() {
        for run in &r.replays {
            workers.push(run.workers as u64);
        }
    }
    env.set("workers", workers);
    let mut arr = Json::array();
    for r in results {
        let mut b = Json::object();
        b.set("name", r.name);

        let mut verdicts = Json::object();
        verdicts.set("trace_bytes", r.trace_bytes);
        verdicts.set("trace_events", r.trace_events);
        let mut races = Json::array();
        for race in &r.serial_stats.races {
            let mut row = Json::object();
            row.set("target", race.target.to_string());
            row.set("info", race.info.to_string());
            races.push(row);
        }
        verdicts.set("races", races);
        verdicts.set("stats", stats_json(&r.serial_stats));
        verdicts.set("serial_matches", r.all_match());
        b.set("verdicts", verdicts);

        let mut timing = Json::object();
        timing.set("record_ms", r.record_time.as_secs_f64() * 1e3);
        timing.set("serial_ms", r.serial_time.as_secs_f64() * 1e3);
        let mut per = Json::object();
        for run in &r.replays {
            per.set(&run.workers.to_string(), run.time.as_secs_f64() * 1e3);
        }
        timing.set("replay_ms", per);
        b.set("timing", timing);
        arr.push(b);
    }
    env.set("benchmarks", arr);

    let mut summary = Json::object();
    summary.set("all_match", results.iter().all(ReplayResult::all_match));
    env.set("summary", summary);

    let mut timing_summary = Json::object();
    if let Some(r) = results.first() {
        for run in &r.replays {
            let w = run.workers;
            timing_summary.set(
                &format!("speedup_{w}w_geomean"),
                geomean(results.iter().map(|r| {
                    let replay = r
                        .replays
                        .iter()
                        .find(|x| x.workers == w)
                        .expect("worker count measured");
                    r.serial_time.as_secs_f64() / replay.time.as_secs_f64().max(1e-9)
                })),
            );
        }
    }
    env.set("timing_summary", timing_summary);
    env
}

fn bf_over_ft(results: &[BenchResult]) -> f64 {
    geomean(results.iter().map(|r| {
        safe_ratio(
            r.run("BF").overhead(r.base_time),
            r.run("FT").overhead(r.base_time),
        )
    }))
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b <= 1e-9 {
        1.0
    } else {
        a / b
    }
}

fn finish(mut env: Json, summary: Json) -> Json {
    env.set("summary", summary);
    env
}
