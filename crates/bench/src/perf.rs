//! The `repro perf` measurement: detector-only event-loop throughput,
//! static-analysis cost, and peak shadow space — the numbers committed to
//! `BENCH.json` as the tracked performance baseline.
//!
//! Unlike [`crate::measure`], which times interpreter + detector together
//! (the paper's overhead experiment), `perf` records each benchmark to a
//! trace once, decodes it once, and then streams the pre-decoded events
//! through each detector configuration. That isolates the detector event
//! loop, so `events_per_sec` moves when the detector moves and not when
//! the interpreter does — exactly what a perf baseline must track.

use crate::{geomean, StaticObsStats, DETECTORS};
use bigfoot::{instrument, naive_instrument, redcard_instrument, Instrumented};
use bigfoot_bfj::{trace::TraceWriter, Event, EventSink, Interp, Program, SchedPolicy};
use bigfoot_detectors::{Detector, ProxyTable, Stats, TraceReader};
use bigfoot_obs::json::Json;
use std::time::Instant;

/// Each detection run is repeated until it has consumed at least this
/// much wall time, so nanosecond-scale timer noise cannot dominate the
/// per-event quotient on small traces.
const MIN_SAMPLE_NS: u64 = 20_000_000;

/// One detector configuration's throughput on one benchmark.
#[derive(Debug, Clone)]
pub struct DetectorPerf {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Events in the recorded trace for this configuration's program.
    pub events: u64,
    /// Median events/second over the measurement reps.
    pub events_per_sec: f64,
    /// Peak shadow space (space units) observed during detection.
    pub shadow_space_peak: u64,
}

/// All `perf` measurements for one benchmark.
#[derive(Debug)]
pub struct PerfBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Static-analysis wall time and entailment share (obs span deltas).
    pub static_obs: StaticObsStats,
    /// Entailment-cache hits during the analysis (0 when uncached).
    pub entail_cache_hits: u64,
    /// Entailment-cache misses during the analysis.
    pub entail_cache_misses: u64,
    /// Per-detector throughput, in [`DETECTORS`] order.
    pub detectors: Vec<DetectorPerf>,
}

impl PerfBench {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &DetectorPerf {
        self.detectors
            .iter()
            .find(|r| r.name == name)
            .expect("detector")
    }
}

fn record(program: &Program) -> (u64, Vec<Event>) {
    let mut writer = TraceWriter::new();
    Interp::new(program, SchedPolicy::default())
        .run(&mut writer)
        .expect("run");
    let events = writer.events();
    let bytes = writer.into_bytes();
    let decoded: Vec<Event> = TraceReader::new(&bytes)
        .expect("trace header")
        .map(|ev| ev.expect("trace event"))
        .collect();
    (events, decoded)
}

fn drive(events: &[Event], mut det: Detector) -> Stats {
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

/// Median events/sec over `reps` samples, where each sample loops whole
/// detection runs until [`MIN_SAMPLE_NS`] has elapsed.
fn throughput<F: Fn() -> Detector>(events: &[Event], reps: usize, make: F) -> (f64, Stats) {
    // Calibration run: how many whole detections fit one sample?
    let t0 = Instant::now();
    let stats = drive(events, make());
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (MIN_SAMPLE_NS / once).clamp(1, 10_000) as usize;

    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(drive(events, make()));
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-12);
        rates.push(events.len() as f64 * iters as f64 / dt);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (rates[rates.len() / 2], stats)
}

/// Runs the full `perf` measurement for one benchmark.
pub fn measure_perf(name: &'static str, program: &Program, reps: usize) -> PerfBench {
    let snap0 = bigfoot_obs::snapshot();
    let inst: Instrumented = instrument(program);
    let snap1 = bigfoot_obs::snapshot();
    let static_obs = StaticObsStats {
        analysis_ns: snap1.timer_total("static.instrument")
            - snap0.timer_total("static.instrument"),
        entail_ns: snap1.timer_total("entail.query") - snap0.timer_total("entail.query"),
        entail_queries: snap1.counter_total("entail.query.") - snap0.counter_total("entail.query."),
    };
    let entail_cache_hits = snap1.counter("entail.cache.hit") - snap0.counter("entail.cache.hit");
    let entail_cache_misses =
        snap1.counter("entail.cache.miss") - snap0.counter("entail.cache.miss");

    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let naive = naive_instrument(program);
    let (naive_events, naive_trace) = record(&naive);
    let (rc_events, rc_trace) = record(&rc_prog);
    let (bf_events, bf_trace) = record(&inst.program);

    // Metric collection off while timing: the baseline tracks the bare
    // detector loop (obs overhead is bounded separately by its own bench).
    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let mut detectors = Vec::new();
    for d in DETECTORS {
        let (events, trace): (u64, &[Event]) = match d {
            "FT" | "SS" => (naive_events, &naive_trace),
            "RC" | "SC" => (rc_events, &rc_trace),
            _ => (bf_events, &bf_trace),
        };
        let (rate, stats) = throughput(trace, reps, || match d {
            "FT" => Detector::new(
                "FastTrack",
                bigfoot_detectors::CheckSource::CheckEvents,
                bigfoot_detectors::ArrayEngine::Fine,
                ProxyTable::identity(),
            ),
            "RC" => Detector::redcard(rc_proxies.clone()),
            "SS" => Detector::new(
                "SlimState",
                bigfoot_detectors::CheckSource::CheckEvents,
                bigfoot_detectors::ArrayEngine::Footprint,
                ProxyTable::identity(),
            ),
            "SC" => Detector::slimcard(rc_proxies.clone()),
            _ => Detector::bigfoot(inst.proxies.clone()),
        });
        detectors.push(DetectorPerf {
            name: d,
            events,
            events_per_sec: rate,
            shadow_space_peak: stats.shadow_space_peak,
        });
    }
    bigfoot_obs::set_enabled(obs_was_on);

    PerfBench {
        name,
        static_obs,
        entail_cache_hits,
        entail_cache_misses,
        detectors,
    }
}

/// The `repro perf --json` report (the `BENCH.json` schema).
pub fn perf_json(results: &[PerfBench], scale: &str, reps: usize) -> Json {
    let mut env = crate::report::envelope("perf", scale, reps);
    let mut arr = Json::array();
    for r in results {
        let mut b = Json::object();
        b.set("name", r.name);
        let mut stat = Json::object();
        stat.set("analysis_ms", r.static_obs.analysis_ns as f64 / 1e6);
        stat.set("entail_ms", r.static_obs.entail_ns as f64 / 1e6);
        stat.set("entail_share", r.static_obs.entail_share());
        stat.set("entail_queries", r.static_obs.entail_queries);
        stat.set("entail_cache_hits", r.entail_cache_hits);
        stat.set("entail_cache_misses", r.entail_cache_misses);
        b.set("static", stat);
        let mut dets = Json::object();
        for d in &r.detectors {
            let mut o = Json::object();
            o.set("events", d.events);
            o.set("events_per_sec", d.events_per_sec);
            o.set("shadow_space_peak", d.shadow_space_peak);
            dets.set(d.name, o);
        }
        b.set("detectors", dets);
        arr.push(b);
    }
    env.set("benchmarks", arr);

    let mut summary = Json::object();
    let mut rates = Json::object();
    for d in DETECTORS {
        rates.set(d, geomean(results.iter().map(|r| r.run(d).events_per_sec)));
    }
    summary.set("events_per_sec_geomean", rates);
    let analysis_ns: u64 = results.iter().map(|r| r.static_obs.analysis_ns).sum();
    let entail_ns: u64 = results.iter().map(|r| r.static_obs.entail_ns).sum();
    summary.set("static_analysis_ms", analysis_ns as f64 / 1e6);
    summary.set(
        "entail_share",
        if analysis_ns == 0 {
            0.0
        } else {
            entail_ns as f64 / analysis_ns as f64
        },
    );
    let mut space = Json::object();
    for d in DETECTORS {
        space.set(
            d,
            results
                .iter()
                .map(|r| r.run(d).shadow_space_peak)
                .sum::<u64>(),
        );
    }
    summary.set("shadow_space_peak_total", space);
    env.set("summary", summary);
    env
}

/// Compares a fresh `perf` report against a committed baseline: fails if
/// any detector's `events_per_sec_geomean` dropped by more than
/// `tolerance` (a fraction, e.g. `0.25`). Returns human-readable lines on
/// success; `Err` lists the regressions.
pub fn check_against_baseline(
    current: &Json,
    baseline: &Json,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let rate = |j: &Json, d: &str| -> Result<f64, String> {
        j.get("summary")
            .and_then(|s| s.get("events_per_sec_geomean"))
            .and_then(|r| r.get(d))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing summary.events_per_sec_geomean.{d}"))
    };
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for d in DETECTORS {
        let old = rate(baseline, d).map_err(|e| format!("baseline: {e}"))?;
        let new = rate(current, d).map_err(|e| format!("current: {e}"))?;
        let ratio = if old > 0.0 { new / old } else { 1.0 };
        let line = format!(
            "{d}: {:.3e} -> {:.3e} events/sec ({:+.1}%)",
            old,
            new,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            failures.push(line);
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(format!(
            "throughput regressed beyond the {:.0}% tolerance:\n  {}\n\
             (to refresh the baseline intentionally, see docs/PERFORMANCE.md)",
            tolerance * 100.0,
            failures.join("\n  ")
        ))
    }
}
